#!/usr/bin/env python
"""Benchmark harness for the simulation engines (writes ``BENCH_7.json``).

Times representative cells (FCAT-2/3/4 and DFSA at N in {500, 5000, 10000})
through both engines -- the scalar per-slot reference and the
frame-at-once kernels (``src/repro/kernels/``) -- then races the FCAT
sweep three ways: serial (``jobs=1``), parallel (``--jobs``), and
cache-served (cold fill followed by a warm rerun).  The JSON artefact
records wall-clock, speedup and cache-hit statistics so the perf
trajectory of the engines and the executor is pinned across PRs::

    PYTHONPATH=src python scripts/bench.py                  # full grid
    PYTHONPATH=src python scripts/bench.py --smoke          # CI-sized grid
    PYTHONPATH=src python scripts/bench.py --jobs 8 --out BENCH_7.json

Speedup accounting: ``kernel_speedup`` is scalar/kernel per cell, both
engines timed interleaved in one process (best of ``--repeats`` each) so
the pairing is same-machine, same-moment -- CPU frequency drift between
separate runs on shared hardware easily exceeds the effect under
measurement.  ``speedup`` is serial/parallel for the sweep;
``best_speedup`` is serial over the fastest non-serial mode (parallel or
warm cache), which is what a rerun actually experiences.

Schema 4 adds the ``planner`` section: the same protocol/N roster run
paired adaptive-vs-fixed (nominal 100 runs, kernel engine).  Each cell
reports ``run_reduction`` (nominal over adaptively assigned runs) and
``within_ci``.  The adaptive estimate is a *prefix* of the fixed-budget
sample (shared seeds), so the exact sampling SD of the adaptive-minus-
fixed difference is ``s * sqrt(|1/k - 1/R|)`` with ``s`` the fixed
sample std, ``k`` the adaptive run count and ``R`` the nominal budget;
``within_ci`` asserts every reported metric's difference lies inside
the 95% interval that SD implies.  The section also pins
``planner_jobs_invariant``: adaptive results are bit-identical between
``jobs=1`` and ``jobs=4``.

Schema 5 adds the ``service`` section: the sharded inventory service
(``repro.service``) load-driven through its real asyncio HTTP front end
by ``scripts/serve_demo.py``'s driver.  The full grid inventories a
1M-tag facility across 20 zones; the section records request-latency
quantiles from the service's own ``repro.obs`` histograms (the p99 the
acceptance bar quotes), warm-path accounting and the byte-identity
verdict of the cold/warm/concurrent passes.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import Fcat  # noqa: E402
from repro.baselines.dfsa import Dfsa  # noqa: E402
from repro.experiments.executor import (  # noqa: E402
    CellSpec,
    default_jobs,
    execute_run_metrics,
)
from repro.experiments.planner import (  # noqa: E402
    PlannerConfig,
    plan_cells,
)
from repro.experiments.result_cache import ResultCache  # noqa: E402
from repro.experiments.runner import run_cell, sweep  # noqa: E402
from repro.obs.scope import observe  # noqa: E402
from repro.sim.result import aggregate_metrics  # noqa: E402

SCHEMA = "repro-bench/5"
BENCH_NAME = "BENCH_7"

#: AggregateResult column -> the per-run RunMetrics field it averages;
#: the "reported metrics" the planner's within-CI check covers.
REPORTED_METRICS = {
    "throughput_mean": "throughput",
    "empty_mean": "empty_slots",
    "singleton_mean": "singleton_slots",
    "collision_mean": "collision_slots",
    "total_slots_mean": "total_slots",
    "resolved_mean": "resolved_from_collision",
}


def _bench4_reference() -> dict[tuple[str, int, int], float]:
    """BENCH_4's ``serial_s`` per (protocol, N, runs) cell, when present.

    The committed BENCH_4 recorded the scalar engine before the kernels
    existed; ISSUE 8's acceptance bar (>= 10x on the N=10000 FCAT cells)
    is quoted against those fixed numbers, so each cell row carries them
    alongside the fresh same-process pairing.
    """
    path = Path(__file__).resolve().parent.parent / "BENCH_4.json"
    if not path.is_file():
        return {}
    bench4 = json.loads(path.read_text())
    return {(cell["protocol"], cell["n_tags"], cell["runs"]):
            cell["serial_s"] for cell in bench4.get("cells", [])}


def bench_cells(n_values: list[int], runs: int, seed: int,
                repeats: int = 3) -> list[dict]:
    """Paired scalar-vs-kernel wall-clock of each representative cell.

    Engines alternate inside each repeat and the best repeat per engine
    is kept, so ``kernel_speedup`` compares the two engines under the
    same transient machine state.  Results are asserted identical across
    repeats only implicitly (same seed, deterministic engines); the
    statistical equivalence of the two engines is pinned by
    ``tests/kernels/``, not here.
    """
    reference = _bench4_reference()
    rows = []
    for protocol in [Fcat(lam=2), Fcat(lam=3), Fcat(lam=4), Dfsa()]:
        for n_tags in n_values:
            best = {"scalar": float("inf"), "kernel": float("inf")}
            cells = {}
            for _ in range(repeats):
                for engine in ("scalar", "kernel"):
                    started = time.perf_counter()
                    cells[engine] = run_cell(protocol, n_tags, runs, seed,
                                             engine=engine)
                    elapsed = time.perf_counter() - started
                    if elapsed < best[engine]:
                        best[engine] = elapsed
            speedup = best["scalar"] / best["kernel"]
            row = {
                "protocol": protocol.name,
                "n_tags": n_tags,
                "runs": runs,
                "repeats": repeats,
                "serial_s": round(best["scalar"], 4),
                "kernel_s": round(best["kernel"], 4),
                "kernel_speedup": round(speedup, 2),
                "throughput_mean": round(cells["scalar"].throughput_mean, 2),
                "kernel_throughput_mean": round(
                    cells["kernel"].throughput_mean, 2),
            }
            yardstick = reference.get((protocol.name, n_tags, runs))
            vs_bench4 = ""
            if yardstick is not None:
                row["bench4_serial_s"] = yardstick
                row["kernel_speedup_vs_bench4"] = round(
                    yardstick / best["kernel"], 2)
                vs_bench4 = (f", x{row['kernel_speedup_vs_bench4']:.1f} "
                             "vs BENCH_4")
            rows.append(row)
            print(f"  {protocol.name:>7} N={n_tags:<6} "
                  f"scalar {best['scalar']:7.2f}s  "
                  f"kernel {best['kernel']:7.3f}s  "
                  f"(x{speedup:.1f}{vs_bench4})", file=sys.stderr)
    return rows


def bench_observability(n_tags: int, runs: int, seed: int,
                        repeats: int = 3) -> dict:
    """Overhead probe: the same cell with the scope absent vs installed.

    The disabled path is the acceptance-critical number -- instrumented
    code pays one ``is None`` test per hook while no scope is active, so
    it must time indistinguishably from uninstrumented code.  Best-of-N
    wall clock on the FCAT-2 reference cell, both ways.
    """
    protocol = Fcat(lam=2)

    def run_once(enabled: bool) -> float:
        started = time.perf_counter()
        if enabled:
            with observe():
                run_cell(protocol, n_tags, runs, seed)
        else:
            run_cell(protocol, n_tags, runs, seed)
        return time.perf_counter() - started

    run_once(False)  # warm caches/allocators before timing either leg
    disabled_s = min(run_once(False) for _ in range(repeats))
    enabled_s = min(run_once(True) for _ in range(repeats))
    overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s
    print(f"  obs probe FCAT-2 N={n_tags}: disabled {disabled_s:.4f}s, "
          f"enabled {enabled_s:.4f}s ({overhead_pct:+.1f}%)",
          file=sys.stderr)
    stats = {
        "protocol": protocol.name,
        "n_tags": n_tags,
        "runs": runs,
        "repeats": repeats,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_overhead_pct": round(overhead_pct, 2),
    }
    # Pin the disabled path against the pre-observability benchmark: the
    # committed BENCH_3 recorded this exact cell's serial time before any
    # instrumentation existed, so the delta is the disabled-path cost.
    reference = Path(__file__).resolve().parent.parent / "BENCH_3.json"
    if reference.is_file() and n_tags == 10000:
        bench3 = json.loads(reference.read_text())
        match = [cell for cell in bench3.get("cells", [])
                 if cell["protocol"] == protocol.name
                 and cell["n_tags"] == n_tags and cell["runs"] == runs]
        if match:
            baseline_s = match[0]["serial_s"]
            stats["bench3_serial_s"] = baseline_s
            stats["disabled_vs_bench3_pct"] = round(
                100.0 * (disabled_s - baseline_s) / baseline_s, 2)
            print(f"  disabled path vs BENCH_3 baseline {baseline_s:.4f}s: "
                  f"{stats['disabled_vs_bench3_pct']:+.1f}%",
                  file=sys.stderr)
    return stats


def bench_sweep(n_values: list[int], runs: int, seed: int, jobs: int,
                cache_path: Path) -> dict:
    """Race the FCAT sweep: serial vs parallel vs content-addressed cache."""
    protocols = [Fcat(lam=2), Fcat(lam=3), Fcat(lam=4)]

    started = time.perf_counter()
    serial = sweep(protocols, n_values, runs, seed)
    serial_s = time.perf_counter() - started
    print(f"  sweep serial    {serial_s:7.2f}s", file=sys.stderr)

    started = time.perf_counter()
    parallel = sweep(protocols, n_values, runs, seed, jobs=jobs)
    parallel_s = time.perf_counter() - started
    print(f"  sweep jobs={jobs:<4} {parallel_s:7.2f}s", file=sys.stderr)
    if parallel != serial:
        raise AssertionError("parallel sweep diverged from serial sweep")

    # A separate observed parallel leg: worker utilization comes from the
    # executor's chunk_done telemetry (busy worker-seconds over the pool's
    # wall-time capacity), leaving the timing legs above unperturbed.
    with observe() as observation:
        started = time.perf_counter()
        observed = sweep(protocols, n_values, runs, seed, jobs=jobs)
        observed_s = time.perf_counter() - started
    if observed != serial:
        raise AssertionError("observed sweep diverged from serial sweep")
    busy_s = sum(event.fields["duration_s"]
                 for event in observation.events.events
                 if event.name == "chunk_done")
    workers = observation.metrics.snapshot()["gauges"]["executor.workers"]
    utilization = busy_s / (observed_s * workers) if observed_s else 0.0
    print(f"  sweep observed  {observed_s:7.2f}s "
          f"({workers:g} workers, {utilization:.0%} utilized)",
          file=sys.stderr)

    cold_cache = ResultCache(cache_path)
    started = time.perf_counter()
    sweep(protocols, n_values, runs, seed, jobs=jobs, cache=cold_cache)
    cold_s = time.perf_counter() - started
    warm_cache = ResultCache(cache_path)
    started = time.perf_counter()
    warm = sweep(protocols, n_values, runs, seed, jobs=jobs,
                 cache=warm_cache)
    warm_s = time.perf_counter() - started
    print(f"  sweep cold-cache {cold_s:6.2f}s, warm-cache {warm_s:6.4f}s",
          file=sys.stderr)
    if warm != serial:
        raise AssertionError("cache-served sweep diverged from serial sweep")

    return {
        "protocols": [protocol.name for protocol in protocols],
        "n_values": n_values,
        "runs": runs,
        "jobs": jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "cold_cache_s": round(cold_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "warm_fraction": round(warm_s / cold_s, 5),
        "best_speedup": round(serial_s / min(parallel_s, warm_s), 3),
        "cache_hits": warm_cache.hits,
        "cache_misses": warm_cache.misses,
        "observed_parallel_s": round(observed_s, 4),
        "workers": int(workers),
        "worker_busy_s": round(busy_s, 4),
        "worker_utilization": round(utilization, 4),
    }


def bench_planner(n_values: list[int], nominal_runs: int, seed: int,
                  jobs: int, precision: float, min_runs: int,
                  batch_runs: int) -> dict:
    """Paired adaptive-vs-fixed run of the representative roster.

    Both legs use the kernel engine and the same seeds, so the adaptive
    estimate of each cell is a bit-exact prefix of the fixed-budget
    sample.  ``within_ci`` checks every reported metric against the 95%
    interval of the adaptive-minus-fixed difference, whose exact SD is
    ``s * sqrt(|1/k - 1/R|)`` (see the module docstring); a final pair of
    untimed legs pins bit-identity between ``jobs=1`` and ``jobs=4``.
    """
    z95 = 1.959963984540054  # Phi^-1(0.975)
    protocols = [Fcat(lam=2), Fcat(lam=3), Fcat(lam=4), Dfsa()]
    specs = [CellSpec(protocol=protocol, n_tags=n_tags, runs=nominal_runs,
                      seed=seed + 13 * index, engine="kernel")
             for index, (protocol, n_tags) in enumerate(
                 [(protocol, n_tags) for protocol in protocols
                  for n_tags in n_values])]

    started = time.perf_counter()
    fixed_batches = execute_run_metrics(specs, jobs=jobs)
    fixed_s = time.perf_counter() - started
    fixed = [aggregate_metrics(spec.protocol.name, spec.n_tags, batch.values)
             for spec, batch in zip(specs, fixed_batches)]

    def config() -> PlannerConfig:
        return PlannerConfig(precision=precision, min_runs=min_runs,
                             batch_runs=batch_runs)

    planner = config()
    started = time.perf_counter()
    adaptive = plan_cells(specs, planner, jobs=jobs)
    adaptive_s = time.perf_counter() - started

    serial = plan_cells(specs, config(), jobs=1)
    fanned = plan_cells(specs, config(), jobs=4)
    jobs_invariant = serial == fanned == adaptive

    rows = []
    all_within = True
    for spec, fixed_cell, adaptive_cell, batch in zip(specs, fixed, adaptive,
                                                      fixed_batches):
        assigned = adaptive_cell.runs
        within = True
        for column, field in REPORTED_METRICS.items():
            values = [getattr(value, field) for value in batch.values]
            std = statistics.stdev(values)
            half_width = z95 * std * math.sqrt(
                abs(1.0 / assigned - 1.0 / nominal_runs))
            fixed_value = getattr(fixed_cell, column)
            adaptive_value = getattr(adaptive_cell, column)
            epsilon = 1e-9 * max(1.0, abs(fixed_value))
            if abs(adaptive_value - fixed_value) > half_width + epsilon:
                within = False
        all_within = all_within and within
        reduction = nominal_runs / assigned
        rows.append({
            "protocol": spec.protocol.name,
            "n_tags": spec.n_tags,
            "nominal_runs": nominal_runs,
            "adaptive_runs": assigned,
            "run_reduction": round(reduction, 3),
            "within_ci": within,
            "throughput_mean": round(fixed_cell.throughput_mean, 2),
            "adaptive_throughput_mean": round(
                adaptive_cell.throughput_mean, 2),
        })
        print(f"  {spec.protocol.name:>7} N={spec.n_tags:<6} "
              f"{assigned:3d}/{nominal_runs} runs (x{reduction:.2f}) "
              f"within_ci={within}", file=sys.stderr)
    stats = planner.stats
    print(f"  adaptive {adaptive_s:.2f}s vs fixed {fixed_s:.2f}s, "
          f"{stats.summary()}", file=sys.stderr)
    print(f"  jobs-invariance (1 vs 4): {jobs_invariant}", file=sys.stderr)
    return {
        "protocols": [protocol.name for protocol in protocols],
        "n_values": n_values,
        "nominal_runs": nominal_runs,
        "precision": precision,
        "confidence": 0.95,
        "min_runs": min_runs,
        "batch_runs": batch_runs,
        "jobs": jobs,
        "cells": rows,
        "fixed_s": round(fixed_s, 4),
        "adaptive_s": round(adaptive_s, 4),
        "time_speedup": round(fixed_s / adaptive_s, 3)
        if adaptive_s else 0.0,
        "total_nominal_runs": stats.nominal_runs,
        "total_assigned_runs": stats.assigned_runs,
        "run_reduction": round(stats.reduction, 3),
        "within_ci": all_within,
        "planner_jobs_invariant": jobs_invariant,
        "stopped": {"precision": stats.stopped_precision,
                    "max_runs": stats.stopped_max_runs,
                    "budget": stats.stopped_budget},
    }


def bench_service(n_tags: int, zones: int, requests: int, jobs: int,
                  seed: int) -> dict:
    """Load-drive the inventory service through its HTTP front end.

    Delegates to ``scripts/serve_demo.py``'s driver -- the same cold pass,
    warm pass and concurrent duplicate volley, with the same byte-identity
    and warm-accounting assertions -- so the benchmark number and the demo
    measure the identical traffic shape.  Latency quantiles come from the
    service's ``repro.obs`` histograms via ``/stats``.
    """
    import asyncio

    import serve_demo

    args = serve_demo.build_parser().parse_args(
        ["--n-tags", str(n_tags), "--zones", str(zones),
         "--requests", str(requests), "--jobs", str(jobs),
         "--seed", str(seed)])
    report = asyncio.run(serve_demo.serve_and_drive(args))
    report["jobs"] = jobs
    print(f"  service: p99 {report['latency']['p99']:.4f}s over "
          f"{report['requests']} requests "
          f"({report['responses_cached']} cache-served), "
          f"byte-identical={report['byte_identical']}", file=sys.stderr)
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Time the simulation engines and write BENCH_7.json")
    parser.add_argument("--out", type=Path, default=Path("BENCH_7.json"),
                        help="where to write the JSON artefact")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel worker count (0 = all cores)")
    parser.add_argument("--runs", type=int, default=5,
                        help="simulation runs per cell")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved timing repeats per engine")
    parser.add_argument("--seed", type=int, default=20100562)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized grid: tiny N values and runs")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.smoke:
        cell_grid, sweep_grid, runs, obs_n = [200, 500], [200, 500], 3, 500
        planner_knobs = {"nominal_runs": 12, "precision": 0.1,
                         "min_runs": 5, "batch_runs": 5}
        service_knobs = {"n_tags": 20_000, "zones": 16, "requests": 4}
    else:
        cell_grid, sweep_grid, runs, obs_n = [500, 5000, 10000], \
            [500, 5000], args.runs, 10000
        planner_knobs = {"nominal_runs": 100, "precision": 0.01,
                         "min_runs": 25, "batch_runs": 25}
        service_knobs = {"n_tags": 1_048_576, "zones": 20, "requests": 8}
    cache_path = args.out.with_suffix(".cache.json")
    if cache_path.exists():
        cache_path.unlink()  # the cold leg must actually be cold
    print(f"[{BENCH_NAME}] cells (scalar vs kernel, runs={runs}, "
          f"best of {args.repeats})", file=sys.stderr)
    cells = bench_cells(cell_grid, runs, args.seed, repeats=args.repeats)
    print(f"[{BENCH_NAME}] observability overhead probe", file=sys.stderr)
    observability = bench_observability(obs_n, runs, args.seed)
    print(f"[{BENCH_NAME}] FCAT sweep (N={sweep_grid}, jobs={jobs})",
          file=sys.stderr)
    sweep_stats = bench_sweep(sweep_grid, runs, args.seed + 1, jobs,
                              cache_path)
    if cache_path.exists():
        cache_path.unlink()
    print(f"[{BENCH_NAME}] adaptive planner vs fixed budget "
          f"(R={planner_knobs['nominal_runs']}, "
          f"precision={planner_knobs['precision']})", file=sys.stderr)
    planner_stats = bench_planner(cell_grid, seed=args.seed + 1, jobs=jobs,
                                  **planner_knobs)
    print(f"[{BENCH_NAME}] inventory service "
          f"({service_knobs['n_tags']} tags / {service_knobs['zones']} "
          f"zones, {service_knobs['requests']} requests)", file=sys.stderr)
    service_stats = bench_service(jobs=jobs, seed=args.seed + 2,
                                  **service_knobs)
    payload = {
        "schema": SCHEMA,
        "bench": BENCH_NAME,
        "smoke": args.smoke,
        "machine": {
            "cpu_count": default_jobs(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "cells": cells,
        "observability": observability,
        "sweep": sweep_stats,
        "planner": planner_stats,
        "service": service_stats,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    kernel_speedups = ", ".join(
        f"{cell['protocol']}/N={cell['n_tags']} x{cell['kernel_speedup']}"
        for cell in cells if cell["n_tags"] == max(cell_grid))
    print(f"[{BENCH_NAME}] kernel speedups: {kernel_speedups}",
          file=sys.stderr)
    print(f"[{BENCH_NAME}] sweep speedup x{sweep_stats['speedup']}, "
          f"warm cache {sweep_stats['warm_fraction']:.1%} of cold, "
          f"utilization {sweep_stats['worker_utilization']:.0%}, "
          f"obs overhead {observability['enabled_overhead_pct']:+.1f}%, "
          f"planner x{planner_stats['run_reduction']} runs "
          f"(within_ci={planner_stats['within_ci']}, "
          f"jobs-invariant={planner_stats['planner_jobs_invariant']}), "
          f"service p99 {service_stats['latency']['p99']:.4f}s "
          f"({service_stats['n_tags']} tags / "
          f"{service_stats['zones']} zones), "
          f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
