#!/usr/bin/env python
"""Benchmark harness for the sweep executor (writes ``BENCH_3.json``).

Times representative cells (FCAT-2/3/4 and DFSA at N in {500, 5000, 10000}),
then races the FCAT sweep three ways: serial (``jobs=1``), parallel
(``--jobs``), and cache-served (cold fill followed by a warm rerun).  The
JSON artefact records wall-clock, speedup and cache-hit statistics so the
perf trajectory of the executor is pinned across PRs::

    PYTHONPATH=src python scripts/bench.py                  # full grid
    PYTHONPATH=src python scripts/bench.py --smoke          # CI-sized grid
    PYTHONPATH=src python scripts/bench.py --jobs 8 --out BENCH_3.json

Speedup accounting: ``speedup`` is serial/parallel for the sweep;
``best_speedup`` is serial over the fastest non-serial mode (parallel or
warm cache), which is what a rerun actually experiences.  On a single-core
machine the parallel leg cannot win, but the warm-cache leg still must.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import Fcat  # noqa: E402
from repro.baselines.dfsa import Dfsa  # noqa: E402
from repro.experiments.executor import default_jobs  # noqa: E402
from repro.experiments.result_cache import ResultCache  # noqa: E402
from repro.experiments.runner import run_cell, sweep  # noqa: E402

SCHEMA = "repro-bench/1"
BENCH_NAME = "BENCH_3"


def bench_cells(n_values: list[int], runs: int, seed: int) -> list[dict]:
    """Serial wall-clock of each representative (protocol, N) cell."""
    rows = []
    for protocol in [Fcat(lam=2), Fcat(lam=3), Fcat(lam=4), Dfsa()]:
        for n_tags in n_values:
            started = time.perf_counter()
            cell = run_cell(protocol, n_tags, runs, seed)
            elapsed = time.perf_counter() - started
            rows.append({
                "protocol": protocol.name,
                "n_tags": n_tags,
                "runs": runs,
                "serial_s": round(elapsed, 4),
                "throughput_mean": round(cell.throughput_mean, 2),
            })
            print(f"  {protocol.name:>7} N={n_tags:<6} {elapsed:7.2f}s "
                  f"({cell.throughput_mean:.1f} tags/s)", file=sys.stderr)
    return rows


def bench_sweep(n_values: list[int], runs: int, seed: int, jobs: int,
                cache_path: Path) -> dict:
    """Race the FCAT sweep: serial vs parallel vs content-addressed cache."""
    protocols = [Fcat(lam=2), Fcat(lam=3), Fcat(lam=4)]

    started = time.perf_counter()
    serial = sweep(protocols, n_values, runs, seed)
    serial_s = time.perf_counter() - started
    print(f"  sweep serial    {serial_s:7.2f}s", file=sys.stderr)

    started = time.perf_counter()
    parallel = sweep(protocols, n_values, runs, seed, jobs=jobs)
    parallel_s = time.perf_counter() - started
    print(f"  sweep jobs={jobs:<4} {parallel_s:7.2f}s", file=sys.stderr)
    if parallel != serial:
        raise AssertionError("parallel sweep diverged from serial sweep")

    cold_cache = ResultCache(cache_path)
    started = time.perf_counter()
    sweep(protocols, n_values, runs, seed, jobs=jobs, cache=cold_cache)
    cold_s = time.perf_counter() - started
    warm_cache = ResultCache(cache_path)
    started = time.perf_counter()
    warm = sweep(protocols, n_values, runs, seed, jobs=jobs,
                 cache=warm_cache)
    warm_s = time.perf_counter() - started
    print(f"  sweep cold-cache {cold_s:6.2f}s, warm-cache {warm_s:6.4f}s",
          file=sys.stderr)
    if warm != serial:
        raise AssertionError("cache-served sweep diverged from serial sweep")

    return {
        "protocols": [protocol.name for protocol in protocols],
        "n_values": n_values,
        "runs": runs,
        "jobs": jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "cold_cache_s": round(cold_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "warm_fraction": round(warm_s / cold_s, 5),
        "best_speedup": round(serial_s / min(parallel_s, warm_s), 3),
        "cache_hits": warm_cache.hits,
        "cache_misses": warm_cache.misses,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Time the sweep executor and write BENCH_3.json")
    parser.add_argument("--out", type=Path, default=Path("BENCH_3.json"),
                        help="where to write the JSON artefact")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel worker count (0 = all cores)")
    parser.add_argument("--runs", type=int, default=5,
                        help="simulation runs per cell")
    parser.add_argument("--seed", type=int, default=20100562)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized grid: tiny N values and runs")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.smoke:
        cell_grid, sweep_grid, runs = [200, 500], [200, 500], 3
    else:
        cell_grid, sweep_grid, runs = [500, 5000, 10000], [500, 5000], \
            args.runs
    cache_path = args.out.with_suffix(".cache.json")
    if cache_path.exists():
        cache_path.unlink()  # the cold leg must actually be cold
    print(f"[{BENCH_NAME}] cells (serial, runs={runs})", file=sys.stderr)
    cells = bench_cells(cell_grid, runs, args.seed)
    print(f"[{BENCH_NAME}] FCAT sweep (N={sweep_grid}, jobs={jobs})",
          file=sys.stderr)
    sweep_stats = bench_sweep(sweep_grid, runs, args.seed + 1, jobs,
                              cache_path)
    if cache_path.exists():
        cache_path.unlink()
    payload = {
        "schema": SCHEMA,
        "bench": BENCH_NAME,
        "smoke": args.smoke,
        "machine": {
            "cpu_count": default_jobs(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "cells": cells,
        "sweep": sweep_stats,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[{BENCH_NAME}] sweep speedup x{sweep_stats['speedup']}, "
          f"warm cache {sweep_stats['warm_fraction']:.1%} of cold, "
          f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
