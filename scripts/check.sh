#!/usr/bin/env bash
# One-shot local CI: static analysis + the tier-1 test suite.
#
#   scripts/check.sh            # lint src/, then run pytest
#   scripts/check.sh --lint     # lint only
#
# Exits non-zero on the first failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro-lint src =="
python -m repro.devtools src

if [[ "${1:-}" == "--lint" ]]; then
    exit 0
fi

echo "== tier-1 pytest =="
python -m pytest -x -q
