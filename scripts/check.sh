#!/usr/bin/env bash
# One-shot local CI: static analysis + the tier-1 test suite.
#
#   scripts/check.sh            # lint src/ + tests/ + scripts/, then pytest
#   scripts/check.sh --lint     # lint stages only
#   scripts/check.sh --changed  # lint only files changed vs HEAD, no pytest
#
# --changed diffs against HEAD by default; set CHANGED_BASE to diff against
# another ref (CI's PR quick gate uses CHANGED_BASE=origin/<base branch>).
#
# src/ findings block; tests/ and scripts/ run a reduced hygiene rule set
# in warn-only mode (test code may poke at internals, but stray
# `import random` or mutable defaults are still worth seeing).
#
# Exits non-zero on the first failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Hygiene subset applied to non-src trees (advisory only).
ADVISORY_RULES="no-import-random,no-global-np-random,mutable-default,float-equality"
# Per-file rule families for --changed: the whole-program rules
# (rng-reachability, units-call, ...) need the full tree and would
# false-positive on a file subset.
CHANGED_RULES="no-import-random,no-global-np-random,rng-construction,rng-annotation,float-equality,mutable-default,units-arithmetic,probability-domain,rng-order"

if [[ "${1:-}" == "--changed" ]]; then
    base="${CHANGED_BASE:-HEAD}"
    mapfile -t changed < <(git diff --name-only "$base" -- '*.py' \
        | while read -r f; do [[ -f "$f" ]] && echo "$f"; done)
    if [[ ${#changed[@]} -eq 0 ]]; then
        echo "== repro-lint --changed: no Python files changed vs $base =="
        exit 0
    fi
    echo "== repro-lint --changed (${#changed[@]} files vs $base) =="
    # A change to the analyzer itself invalidates the per-file shortcut:
    # any rule's behaviour may have shifted, so lint the whole src tree.
    for f in "${changed[@]}"; do
        if [[ "$f" == src/repro/devtools/* ]]; then
            echo "== devtools changed: full src lint =="
            python -m repro.devtools src
            exit $?
        fi
    done
    src_files=() other_files=()
    for f in "${changed[@]}"; do
        if [[ "$f" == src/* ]]; then src_files+=("$f");
        else other_files+=("$f"); fi
    done
    status=0
    if [[ ${#src_files[@]} -gt 0 ]]; then
        python -m repro.devtools --no-cache --rules "$CHANGED_RULES" \
            "${src_files[@]}" || status=$?
    fi
    if [[ ${#other_files[@]} -gt 0 ]]; then
        python -m repro.devtools --no-cache --warn-only --rules "$ADVISORY_RULES" \
            "${other_files[@]}"
    fi
    exit "$status"
fi

echo "== repro-lint src =="
python -m repro.devtools src

echo "== repro-lint tests/ scripts/ (advisory) =="
python -m repro.devtools --no-cache --warn-only --rules "$ADVISORY_RULES" tests scripts

if [[ "${1:-}" == "--lint" ]]; then
    exit 0
fi

echo "== tier-1 pytest =="
python -m pytest -x -q
