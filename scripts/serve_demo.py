#!/usr/bin/env python
"""Load-drive the inventory service over a facility-scale population.

Boots the asyncio front end in-process on a free port, sustains a burst of
inventory requests against it (cold pass over distinct facilities, then a
warm pass re-issuing every one, plus a concurrent duplicate volley), and
reports request latency quantiles from the service's own ``repro.obs``
histograms -- the p99 the ISSUE's acceptance bar asks for comes off the
``/stats`` endpoint, not from client-side stopwatches.

The driver also *checks* while it drives:

* byte-identity: the warm pass must return exactly the cold pass's bytes
  for every request, and the concurrent volley one single distinct
  response -- the determinism contract, observed over the real socket;
* warm accounting: re-issued requests must be served from the response
  store (``responses_cached`` on ``/stats``), never re-simulated;
* artefact coherence: with ``--metrics-out``/``--manifest-out`` the event
  stream and manifest are fetched (in that order) from the live endpoints
  and must cross-check clean under ``repro.obs.report``.

Default scale is the ISSUE's facility: 1M+ tags over 20 zones.  ``--smoke``
shrinks everything to CI size.

    PYTHONPATH=src python scripts/serve_demo.py --smoke
    PYTHONPATH=src python scripts/serve_demo.py --n-tags 1000000 --zones 20
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.executor import default_jobs  # noqa: E402
from repro.obs.events import read_jsonl  # noqa: E402
from repro.obs.manifest import read_manifest  # noqa: E402
from repro.obs.report import cross_check_manifest  # noqa: E402
from repro.service.client import http_get, post_inventory  # noqa: E402
from repro.service.core import InventoryService, ServiceConfig  # noqa: E402
from repro.service.frontend import ServiceFrontend  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="drive request traffic against the inventory service")
    parser.add_argument("--n-tags", type=int, default=1_048_576,
                        help="facility tag population (default 1048576)")
    parser.add_argument("--zones", type=int, default=20,
                        help="reader zones the population shards across "
                             "(default 20)")
    parser.add_argument("--requests", type=int, default=8,
                        help="distinct facility requests in the burst "
                             "(default 8; seeds count up from --seed)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="in-flight requests during each pass")
    parser.add_argument("--duplicates", type=int, default=6,
                        help="concurrent duplicate volley size for the "
                             "byte-identity check")
    parser.add_argument("--jobs", type=int, default=0,
                        help="executor workers per request (0 = all cores)")
    parser.add_argument("--seed", type=int, default=20100562)
    parser.add_argument("--overlap", type=float, default=0.15)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small facility, short burst")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="write the load-report JSON here")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="dump GET /metrics.jsonl to this file")
    parser.add_argument("--manifest-out", type=Path, default=None,
                        help="dump the GET /healthz manifest to this file")
    return parser


def _request_body(args: argparse.Namespace, seed: int) -> dict:
    return {"n_tags": args.n_tags, "zones": args.zones, "seed": seed,
            "overlap": args.overlap}


async def _bounded_gather(limit: int, coroutines: list) -> list:
    semaphore = asyncio.Semaphore(limit)

    async def bounded(coroutine):
        async with semaphore:
            return await coroutine

    return await asyncio.gather(*[bounded(c) for c in coroutines])


async def drive(frontend: ServiceFrontend,
                args: argparse.Namespace) -> dict:
    host, port = frontend.host, frontend.port
    bodies = [_request_body(args, args.seed + index)
              for index in range(args.requests)]

    started = time.perf_counter()
    cold = await _bounded_gather(args.concurrency, [
        post_inventory(host, port, body) for body in bodies])
    cold_s = time.perf_counter() - started
    for status, _ in cold:
        assert status == 200, f"cold request failed with {status}"
    print(f"  cold pass: {len(bodies)} requests in {cold_s:.2f}s",
          file=sys.stderr)

    started = time.perf_counter()
    warm = await _bounded_gather(args.concurrency, [
        post_inventory(host, port, body) for body in bodies])
    warm_s = time.perf_counter() - started
    byte_identical = all(w == c for (_, c), (_, w) in zip(cold, warm))
    assert byte_identical, "warm responses diverged from cold responses"
    print(f"  warm pass: {len(bodies)} requests in {warm_s:.2f}s, "
          f"byte-identical to cold", file=sys.stderr)

    volley = await asyncio.gather(*[
        post_inventory(host, port, bodies[0])
        for _ in range(args.duplicates)])
    distinct = {body for _, body in volley}
    assert len(distinct) == 1, "concurrent duplicates diverged"
    assert distinct == {cold[0][1]}, "volley diverged from cold response"
    print(f"  concurrent volley: {args.duplicates} duplicates, "
          "1 distinct response", file=sys.stderr)

    _, stats_body = await http_get(host, port, "/stats")
    stats = json.loads(stats_body)
    expected_warm = len(bodies) + args.duplicates
    assert stats["responses_cached"] == expected_warm, \
        (f"expected {expected_warm} cache-served responses, "
         f"stats says {stats['responses_cached']}")

    latency = stats["metrics"]["histograms"]["request.latency_s"]
    cold_hist = stats["metrics"]["histograms"]["request.cold_latency_s"]
    facility = json.loads(cold[0][1])["facility"]
    report = {
        "n_tags": args.n_tags,
        "zones": args.zones,
        "requests": stats["requests_served"],
        "responses_cached": stats["responses_cached"],
        "cold_pass_s": round(cold_s, 4),
        "warm_pass_s": round(warm_s, 4),
        "byte_identical": byte_identical,
        "latency": {key: round(latency[key], 6)
                    for key in ("count", "mean", "p50", "p90", "p99")},
        "cold_latency": {key: round(cold_hist[key], 6)
                         for key in ("count", "mean", "p50", "p90", "p99")},
        "facility_read_time_s": round(facility["read_time_s"], 2),
        "facility_throughput": round(facility["throughput"], 1),
    }

    if args.metrics_out or args.manifest_out:
        # Order matters: the metrics dump closes with a snapshot the
        # manifest must count for repro.obs.report to cross-check clean.
        _, metrics_body = await http_get(host, port, "/metrics.jsonl")
        _, health_body = await http_get(host, port, "/healthz")
        if args.metrics_out:
            args.metrics_out.write_bytes(metrics_body)
        if args.manifest_out:
            manifest = json.loads(health_body)["manifest"]
            args.manifest_out.write_text(
                json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        if args.metrics_out and args.manifest_out:
            problems = cross_check_manifest(
                read_jsonl(args.metrics_out),
                read_manifest(args.manifest_out))
            assert not problems, f"artefact cross-check: {problems}"
            print(f"  artefacts cross-check clean: {args.metrics_out}, "
                  f"{args.manifest_out}", file=sys.stderr)
    return report


async def serve_and_drive(args: argparse.Namespace) -> dict:
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    service = InventoryService(ServiceConfig(jobs=jobs))
    frontend = ServiceFrontend(service, port=0,
                               workers=max(args.concurrency, 2))
    await frontend.start()
    print(f"  service on http://{frontend.host}:{frontend.port} "
          f"(jobs={jobs})", file=sys.stderr)
    try:
        return await drive(frontend, args)
    finally:
        await frontend.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.n_tags = min(args.n_tags, 20_000)
        args.zones = min(args.zones, 16)
        args.requests = min(args.requests, 4)
        args.duplicates = min(args.duplicates, 4)
    if args.n_tags < args.zones:
        raise SystemExit("--n-tags must be >= --zones")
    print(f"[serve_demo] facility: {args.n_tags} tags, {args.zones} zones, "
          f"{args.requests} distinct requests", file=sys.stderr)
    report = asyncio.run(serve_and_drive(args))
    if args.json_out:
        args.json_out.write_text(json.dumps(report, indent=2) + "\n",
                                 encoding="utf-8")
    print(f"[serve_demo] p99 latency {report['latency']['p99']:.4f}s "
          f"(cold p99 {report['cold_latency']['p99']:.4f}s) over "
          f"{report['requests']} requests, "
          f"{report['responses_cached']} cache-served; facility read "
          f"{report['facility_read_time_s']}s at "
          f"{report['facility_throughput']} tags/s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
