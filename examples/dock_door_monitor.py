#!/usr/bin/env python3
"""Continuous monitoring at a dock door: tags stream past the reader.

The paper's protocols assume a static population per reading round (section
IV-E).  Real dock doors are the opposite: pallets roll through and each tag
is in range only for its dwell time.  This demo runs the continuous FCAT
monitor (same collision records, cascade and embedded estimator as the
batch protocol) against increasingly fast traffic and reports:

* the detection fraction (tags read before they left),
* the detection latency distribution,
* stale reads -- IDs recovered from old collision records *after* the tag
  departed, the curious flip side of "learn new tag IDs after some time".

Run:  python examples/dock_door_monitor.py [duration_s]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import TagPopulation
from repro.dynamics import ChurnModel, FcatMonitor, MonitoringConfig
from repro.report.tables import MarkdownTable


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 45.0
    initial = TagPopulation.random(300, np.random.default_rng(10))
    monitor = FcatMonitor(MonitoringConfig(duration_s=duration))

    table = MarkdownTable(
        title=f"dock-door monitoring, {duration:.0f}s budget, "
              "8 arrivals/s",
        headers=["mean dwell (s)", "appeared", "read", "detection",
                 "latency mean (s)", "latency p95 (s)", "stale reads"])
    for dwell in (None, 60.0, 20.0, 6.0, 3.0):
        churn = ChurnModel(arrival_rate=8.0, mean_dwell_s=dwell)
        result = monitor.run(initial, churn, np.random.default_rng(4))
        mean_latency, p95 = result.latency_stats()
        table.add_row("static" if dwell is None else f"{dwell:g}",
                      result.tags_appeared, result.tags_read,
                      f"{result.detection_fraction:.1%}",
                      round(mean_latency, 2), round(p95, 2),
                      result.stale_reads)
    table.add_note("the reader keeps up while dwell times dwarf the per-tag "
                   "latency (~1s here) and starts missing pallets as they "
                   "approach it -- section IV-E's caveat, quantified")
    print(table.render())

    # Show the estimator tracking the churning backlog mid-session.
    churn = ChurnModel(arrival_rate=8.0, mean_dwell_s=20.0)
    result = monitor.run(initial, churn, np.random.default_rng(4))
    mid = len(result.tracking_trace) // 2
    estimate, truth = result.tracking_trace[mid]
    print(f"\nmid-session backlog: estimator says {estimate:.0f}, "
          f"truth is {truth} -- the embedded estimator tracks churn too.")


if __name__ == "__main__":
    main()
