#!/usr/bin/env python3
"""Tournament: every protocol in the library on the same workloads.

Runs FCAT-2/3/4, SCAT-2, the four paper baselines (DFSA, EDFSA, ABS, AQS),
plus slotted ALOHA, BFSA and CRDSA across population sizes, prints a
throughput table and an ASCII chart, and checks the ordering the paper's
analysis predicts (tree < ALOHA < CRDSA/FCAT, diminishing lambda returns).

Run:  python examples/protocol_tournament.py [runs]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    Crdsa,
    Dfsa,
    Edfsa,
    Fcat,
    FramedSlottedAloha,
    Gen2Q,
    Scat,
    SlottedAloha,
)
from repro.analysis.bounds import aloha_throughput_bound, tree_throughput_bound
from repro.experiments.runner import run_cell
from repro.report.ascii_chart import AsciiChart
from repro.report.tables import MarkdownTable

N_VALUES = [500, 2000, 8000]


def roster():
    return [
        Fcat(lam=2), Fcat(lam=3), Fcat(lam=4), Scat(lam=2),
        Dfsa(), Edfsa(), AdaptiveBinarySplitting(), AdaptiveQuerySplitting(),
        SlottedAloha(), FramedSlottedAloha(frame_size=512), Gen2Q(), Crdsa(),
    ]


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    protocols = roster()
    table = MarkdownTable(
        title="Protocol tournament -- throughput (tags/second)",
        headers=["protocol"] + [f"N={n}" for n in N_VALUES])
    chart = AsciiChart("throughput vs N", width=64, height=16,
                       x_label="tags")
    curves = {}
    for index, protocol in enumerate(protocols):
        row = []
        for n in N_VALUES:
            cell = run_cell(protocol, n, runs=runs, seed=1000 + index)
            row.append(cell.throughput_mean)
        curves[protocol.name] = row
        table.add_row(protocol.name, *row)
        if protocol.name in ("FCAT-2", "DFSA", "ABS", "CRDSA"):
            chart.add_series(protocol.name, np.asarray(N_VALUES, float),
                             np.asarray(row))
    table.add_note(f"bounds: ALOHA 1/(eT) = {aloha_throughput_bound():.1f}, "
                   f"tree 1/(2.88T) = {tree_throughput_bound():.1f} tags/s")
    print(table.render())
    print(chart.render())

    big = max(N_VALUES)
    at_big = {name: row[-1] for name, row in curves.items()}
    print("\nChecks at N =", big)
    print(f"  FCAT-2 > DFSA by "
          f"{at_big['FCAT-2'] / at_big['DFSA'] - 1:+.0%} (paper: +51..56%)")
    print(f"  FCAT lambda ordering: "
          f"{at_big['FCAT-2']:.0f} < {at_big['FCAT-3']:.0f} < "
          f"{at_big['FCAT-4']:.0f}")
    print(f"  FCAT-2 > SCAT-2 (framing pays): "
          f"{at_big['FCAT-2']:.0f} vs {at_big['SCAT-2']:.0f}")


if __name__ == "__main__":
    main()
