#!/usr/bin/env python3
"""Watch FCAT's embedded estimator track a shrinking population.

Section V-C's estimator reads nothing but the per-frame collision count, yet
it bootstraps from a blind guess of 64 to a 10 000-tag population within a
dozen frames and then tracks the survivors all the way down.  The demo plots
estimate-vs-truth over the session and reports the bootstrap cost with and
without the early-abort shortcut.

Run:  python examples/estimator_tracking.py [n_tags]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Fcat, TagPopulation
from repro.core import fcat as fcat_module
from repro.report.ascii_chart import AsciiChart


def traced_run(protocol: Fcat, population: TagPopulation, seed: int):
    """Run a session while recording (true active, estimated remaining)."""
    truth: list[int] = []
    original = fcat_module._FcatSession._run_frame

    def spy(session):
        truth.append(len(session.active))
        return original(session)

    fcat_module._FcatSession._run_frame = spy
    try:
        result = protocol.read_all(population, np.random.default_rng(seed))
    finally:
        fcat_module._FcatSession._run_frame = original
    return result, truth


def main() -> None:
    n_tags = int(sys.argv[1]) if len(sys.argv) > 1 else 10000
    population = TagPopulation.random(n_tags, np.random.default_rng(3))

    protocol = Fcat(lam=2)  # blind bootstrap from the default guess of 64
    result, truth = traced_run(protocol, population, seed=11)
    estimates = result.estimate_trace

    chart = AsciiChart(f"estimator vs truth over {result.frames} frames "
                       f"(N = {n_tags})", width=68, height=16,
                       x_label="frame")
    frames = np.arange(len(truth), dtype=float)
    chart.add_series("true active", frames, np.asarray(truth, dtype=float))
    chart.add_series("estimate", frames, np.asarray(estimates, dtype=float))
    print(chart.render())

    settled = next(i for i, est in enumerate(estimates)
                   if abs(est - truth[i]) / n_tags < 0.1)
    print(f"\nestimator within 10% of truth from frame {settled} "
          f"(~{settled * protocol.config.frame_size} slots)")
    mid = len(truth) // 2
    print(f"mid-session: true {truth[mid]}, estimated {estimates[mid]:.0f} "
          f"({abs(estimates[mid] - truth[mid]) / max(truth[mid], 1):.1%} off)")

    fast = Fcat(lam=2, bootstrap_abort_after=8)
    fast_result, _ = traced_run(fast, population, seed=11)
    print(f"\nbootstrap cost: {result.total_slots} slots blind vs "
          f"{fast_result.total_slots} with early-abort "
          f"(saves {result.total_slots - fast_result.total_slots})")

    # A compact per-slot view of a (smaller) session, via SessionTrace.
    from repro.report import render_session
    from repro.sim import SessionTrace

    small = TagPopulation.random(min(n_tags, 300), np.random.default_rng(8))
    trace = SessionTrace()
    Fcat(lam=2).read_all(small, np.random.default_rng(9), trace=trace)
    print("\nper-slot timeline of a small session:")
    print(render_session(trace))


if __name__ == "__main__":
    main()
