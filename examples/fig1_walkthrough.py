#!/usr/bin/env python3
"""The paper's Fig. 1, replayed at both abstraction levels.

Fig. 1 contrasts a contention-based reading of four tags (11 slots) with a
collision-resolution reading (6 slots): the reader records the mixed signal
of slot 1 (t1 + t4) and slot 4 (t2 + t3); hearing t1 alone in slot 3
recovers t4 from the first record, hearing t3 alone in slot 6 recovers t2
from the second.

The demo replays exactly that slot sequence twice:

1. through the abstract :class:`~repro.core.collision.RecordStore` (what the
   large-scale simulator uses), and
2. through real MSK waveforms and genuine signal subtraction
   (:mod:`repro.phy`),

and checks both reach the same four IDs in six slots.

Run:  python examples/fig1_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.air.ids import bits_to_int, generate_tag_ids, id_to_bits
from repro.core.collision import RecordStore
from repro.phy import awgn, mix_signals, msk_modulate, random_channel, resolve_collision


def abstract_level(t1: int, t2: int, t3: int, t4: int) -> list[int]:
    print("--- abstract level (RecordStore) ---")
    store = RecordStore(lam=2)
    learned: list[int] = []
    store.add_record(1, {t1, t4})
    print("slot 1: t1 + t4 collide -> mixed signal recorded")
    learned.append(t2)
    store.learn(t2)
    print("slot 2: singleton t2 -> read directly")
    learned.append(t1)
    resolved = store.learn(t1)
    print("slot 3: singleton t1 -> read directly")
    for tag, slot in resolved:
        learned.append(tag)
        print(f"        ... and record from slot {slot} resolves -> "
              "t4 recovered")
    _, resolved = store.add_record(4, {t2, t3})
    print("slot 4: t2 + t3 collide -> mixed signal recorded")
    for tag, _slot in resolved:
        learned.append(tag)
        print("        ... t2 already known, record resolves on the spot -> "
              "t3 recovered")
    print("slot 5: (empty)")
    print("slot 6: (six slots total, all four IDs known)\n")
    return learned


def signal_level(t1: int, t2: int, t3: int, t4: int,
                 rng: np.random.Generator) -> list[int]:
    print("--- signal level (MSK waveforms + subtraction) ---")
    channels = {tag: random_channel(rng) for tag in (t1, t2, t3, t4)}

    def wave(tag: int) -> np.ndarray:
        return channels[tag].apply(msk_modulate(id_to_bits(tag)))

    snr = 25.0
    slot1 = awgn(mix_signals([wave(t1), wave(t4)]), snr, rng)
    print("slot 1: reader stores", slot1.size, "complex samples of t1 + t4")
    learned = [t2]
    print("slot 2: singleton t2 decodes (CRC ok)")
    learned.append(t1)
    residual_id = resolve_collision(slot1, [wave(t1)])
    assert residual_id is not None
    learned.append(bits_to_int(residual_id))
    print("slot 3: singleton t1 decodes; subtracting its waveform from the "
          "slot-1 mix leaves a residual whose CRC verifies -> t4")
    slot4 = awgn(mix_signals([wave(t2), wave(t3)]), snr, rng)
    residual_id = resolve_collision(slot4, [wave(t2)])
    assert residual_id is not None
    learned.append(bits_to_int(residual_id))
    print("slot 4: t2 + t3 collide; t2's waveform is already on file, the "
          "residual CRC-verifies -> t3\n")
    return learned


def main() -> None:
    rng = np.random.default_rng(547)
    t1, t2, t3, t4 = generate_tag_ids(4, rng)
    a = abstract_level(t1, t2, t3, t4)
    s = signal_level(t1, t2, t3, t4, rng)
    assert set(a) == set(s) == {t1, t2, t3, t4}
    print("both levels learned the same four IDs in six slots; the "
          "contention-based baseline of Fig. 1(a) needs eleven.")


if __name__ == "__main__":
    main()
