#!/usr/bin/env python3
"""The paper's motivating scenario: periodic warehouse inventory.

A warehouse holds thousands of active tags across an area larger than one
reader position's range.  The reader visits several locations (overlapping
coverage), merges the reads, discards duplicates, and reconciles against the
bookkeeping manifest to catch administration errors, vendor fraud and
employee theft (paper section I).

The demo runs the same inventory round with FCAT-2 and with DFSA and shows
the wall-clock an operator saves per round, then injects a discrepancy
(stolen + unregistered items) and shows the reconciliation catching it.

Run:  python examples/warehouse_inventory.py [n_tags] [n_locations]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Dfsa, Fcat, TagPopulation
from repro.inventory import Warehouse, reconcile, run_inventory_round


def main() -> None:
    n_tags = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    n_locations = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    rng = np.random.default_rng(42)

    print(f"Stocking the warehouse: {n_tags} tagged items, read from "
          f"{n_locations} locations with overlapping coverage ...")
    population = TagPopulation.random(n_tags, rng)
    manifest = frozenset(population.ids)
    warehouse = Warehouse.random_layout(population, n_locations, rng,
                                        overlap=0.2)
    print(f"  {warehouse.uncovered_overlap_fraction:.0%} of tags are heard "
          "from more than one location")

    for protocol in (Fcat(lam=2), Dfsa()):
        round_result = run_inventory_round(warehouse, protocol,
                                           np.random.default_rng(7))
        print(f"\n[{protocol.name}] {round_result.summary()}")
        report = reconcile(manifest, round_result)
        print(f"[{protocol.name}] {report.summary()}")

    print("\nNow simulating shrinkage: 25 items walk out the door and 10 "
          "unregistered items appear ...")
    missing = set(list(manifest)[:25])
    extra = TagPopulation.random(10, np.random.default_rng(99))
    tampered_ids = (manifest - missing) | set(extra.ids)
    tampered_population = TagPopulation(sorted(tampered_ids), validate=False)
    tampered = Warehouse.random_layout(tampered_population, n_locations,
                                       np.random.default_rng(1), overlap=0.2)
    round_result = run_inventory_round(tampered, Fcat(lam=2),
                                       np.random.default_rng(7))
    report = reconcile(manifest, round_result)
    print(f"[FCAT-2] {report.summary()}")
    assert len(report.missing) == 25 and len(report.unexpected) == 10
    print("Reconciliation caught every discrepancy.")


if __name__ == "__main__":
    main()
