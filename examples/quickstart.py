#!/usr/bin/env python3
"""Quickstart: read a tag population with FCAT and compare against DFSA.

This is the 60-second tour of the library:

1. deploy a population of 96-bit tags,
2. run the paper's FCAT-2 protocol (ANC-assisted collision resolution),
3. run the best conventional baseline (DFSA) on the same population,
4. compare throughput -- expect the ~50% gain of the paper's Table I.

Run:  python examples/quickstart.py [n_tags]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Dfsa, Fcat, TagPopulation
from repro.analysis.bounds import aloha_throughput_bound


def main() -> None:
    n_tags = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    rng = np.random.default_rng(2010)

    print(f"Deploying {n_tags} tags with random EPC-style IDs ...")
    population = TagPopulation.random(n_tags, rng)

    print("Reading with FCAT-2 (collision-aware, lambda = 2) ...")
    fcat = Fcat(lam=2).read_all(population, np.random.default_rng(1))
    print(" ", fcat.summary())
    print(f"  {fcat.resolved_from_collision} IDs "
          f"({fcat.resolved_from_collision / n_tags:.0%}) were recovered "
          "from collision slots that every other protocol discards")

    print("Reading with DFSA (dynamic framed slotted ALOHA) ...")
    dfsa = Dfsa().read_all(population, np.random.default_rng(1))
    print(" ", dfsa.summary())

    gain = fcat.throughput / dfsa.throughput - 1
    print(f"\nFCAT-2 throughput gain over DFSA: {gain:+.1%} "
          "(paper Table I: +51% .. +56%)")
    print(f"ALOHA-family ceiling 1/(eT): {aloha_throughput_bound():.1f} "
          f"tags/s -- FCAT-2 reads {fcat.throughput:.1f} tags/s, "
          "breaking the limit the paper sets out to break.")


if __name__ == "__main__":
    main()
