#!/usr/bin/env python3
"""Signal-level tour of analog network coding (paper section II-B).

Three demonstrations on real MSK waveforms:

1. **Alice-Bob relay exchange** (Fig. 2): two messages cross an
   amplify-and-forward router in two slots; each side estimates the
   amplitude and phase of its own contribution from the energy statistics,
   subtracts it, and demodulates the peer's bits.
2. **RFID collision resolution** (Fig. 1): a reader records the mixed
   signal of a 2-collision slot, later hears one constituent alone, and
   recovers the other tag's ID by subtraction -- the primitive FCAT
   optimizes around.
3. **Resolvability vs SNR**: where the `k <= lambda` rule comes from.

Run:  python examples/anc_signal_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.air.ids import bits_to_int, generate_tag_ids, id_to_bits
from repro.experiments.ablations import resolvability_rate
from repro.phy import (
    alice_bob_exchange,
    awgn,
    estimate_amplitudes,
    mix_signals,
    msk_modulate,
    random_channel,
    resolve_collision,
)
from repro.report.ascii_chart import AsciiChart


def demo_alice_bob(rng: np.random.Generator) -> None:
    print("=" * 64)
    print("1. Alice-Bob exchange through an amplify-and-forward relay")
    print("=" * 64)
    alice_bits = rng.integers(0, 2, 64).astype(np.uint8)
    bob_bits = rng.integers(0, 2, 64).astype(np.uint8)
    result = alice_bob_exchange(alice_bits, bob_bits, rng, snr_db=30.0)
    print(f"  Alice decoded Bob's 64 bits correctly: {result.alice_ok}")
    print(f"  Bob decoded Alice's 64 bits correctly: {result.bob_ok}")
    print("  Two slots used instead of four -- the ANC speed-up.\n")


def demo_rfid_resolution(rng: np.random.Generator) -> None:
    print("=" * 64)
    print("2. RFID 2-collision resolution (the Fig. 1 primitive)")
    print("=" * 64)
    tag_a, tag_b = generate_tag_ids(2, rng)
    channel_a, channel_b = random_channel(rng), random_channel(rng)
    wave_a = channel_a.apply(msk_modulate(id_to_bits(tag_a)))
    wave_b = channel_b.apply(msk_modulate(id_to_bits(tag_b)))
    mixed = awgn(mix_signals([wave_a, wave_b]), snr_db=25.0, rng=rng)
    estimate = estimate_amplitudes(mixed)
    print(f"  collision slot recorded; energy statistics see amplitudes "
          f"~({estimate.a:.2f}, {estimate.b:.2f})")
    print(f"  true channel attenuations: ({channel_a.attenuation:.2f}, "
          f"{channel_b.attenuation:.2f})")
    recovered = resolve_collision(mixed, [wave_a])
    assert recovered is not None
    print("  tag A later heard alone -> subtract its signal from the mix")
    print(f"  residual demodulates + CRC-verifies to tag B's ID: "
          f"{bits_to_int(recovered) == tag_b}\n")


def demo_snr_sweep(rng: np.random.Generator) -> None:
    print("=" * 64)
    print("3. Resolvability vs SNR (why lambda stays small)")
    print("=" * 64)
    snrs = [0.0, 4.0, 8.0, 12.0, 16.0, 20.0]
    chart = AsciiChart("cancellation success rate vs SNR", width=60,
                       height=12, x_label="SNR (dB)")
    for k in (2, 3, 4):
        curve = [resolvability_rate(k, snr, trials=20, samples_per_bit=4,
                                    rng=rng) for snr in snrs]
        chart.add_series(f"k={k}", np.asarray(snrs), np.asarray(curve))
    print(chart.render())
    print()


def main() -> None:
    rng = np.random.default_rng(547)
    demo_alice_bob(rng)
    demo_rfid_resolution(rng)
    demo_snr_sweep(rng)


if __name__ == "__main__":
    main()
