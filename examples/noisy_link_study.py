#!/usr/bin/env python3
"""From radio SNR to protocol throughput, end to end.

Section IV-E of the paper says FCAT suits environments where "most
2-collision slots are resolvable" and advises a plain contention protocol
otherwise -- but leaves "how noisy is too noisy" open.  This demo answers it
with the library's own physics:

1. measure the MSK demodulator's bit error rate at each SNR,
2. convert to the 96-bit CRC failure rate and the measured 2-collision
   resolvability (gain re-estimation decoder),
3. feed the resulting ChannelModel into FCAT-2 and DFSA,
4. find the crossover SNR below which the paper's advice kicks in.

Run:  python examples/noisy_link_study.py
"""

from __future__ import annotations

import numpy as np

from repro import Dfsa, Fcat, TagPopulation
from repro.analysis.link_budget import channel_model_from_snr, simulated_ber
from repro.report.tables import MarkdownTable

SNRS_DB = [2.0, 4.0, 6.0, 8.0, 12.0, 16.0]
N_TAGS = 1500


def main() -> None:
    rng = np.random.default_rng(2010)
    population = TagPopulation.random(N_TAGS, np.random.default_rng(1))
    table = MarkdownTable(
        title=f"link quality -> protocol choice (N = {N_TAGS})",
        headers=["SNR (dB)", "BER", "P(ID corrupt)", "P(record unusable)",
                 "FCAT-2 tags/s", "DFSA tags/s", "winner"])
    crossover = None
    for snr_db in SNRS_DB:
        ber = simulated_ber(snr_db, rng, n_bits=8000, samples_per_bit=4)
        channel = channel_model_from_snr(snr_db, rng, ber_bits=8000,
                                         resolve_trials=25)
        if channel.singleton_corrupt_prob > 0.5:
            # Nearly every 96-bit ID fails its CRC: *no* anti-collision
            # protocol can operate on this link; don't pretend otherwise.
            table.add_row(snr_db, f"{ber:.4f}",
                          f"{channel.singleton_corrupt_prob:.3f}",
                          f"{channel.collision_unusable_prob:.3f}",
                          "-", "-", "link unusable")
            continue
        fcat = Fcat(lam=2).read_all(population, np.random.default_rng(7),
                                    channel=channel)
        dfsa = Dfsa().read_all(population, np.random.default_rng(7),
                               channel=channel)
        winner = "FCAT-2" if fcat.throughput > dfsa.throughput else "DFSA"
        if winner == "FCAT-2" and crossover is None:
            crossover = snr_db
        table.add_row(snr_db, f"{ber:.4f}",
                      f"{channel.singleton_corrupt_prob:.3f}",
                      f"{channel.collision_unusable_prob:.3f}",
                      round(fcat.throughput, 1), round(dfsa.throughput, 1),
                      winner)
    table.add_note("on a pure-AWGN link, singleton decoding and record "
                   "resolvability degrade *together*, so there is no SNR "
                   "where DFSA beats FCAT: either both work (FCAT wins) or "
                   "neither decodes anything.  The regime the paper's "
                   "section IV-E fallback advice targets -- clean singletons "
                   "but unresolvable records -- arises from channel "
                   "*dynamics* (fading, tag motion between slots), modeled "
                   "by collision_unusable_prob alone in the A2 ablation")
    print(table.render())
    if crossover is not None:
        print(f"\nFCAT-2 operates from roughly {crossover:g} dB sample SNR "
              "upward on this link model; below that, no protocol can.")


if __name__ == "__main__":
    main()
