"""repro -- reproduction of "Using Analog Network Coding to Improve the RFID
Reading Throughput" (Zhang, Li, Chen & Li, ICDCS 2010).

The package implements the paper's collision-aware tag identification
protocols (SCAT and FCAT) on top of a complete simulated RFID substrate --
MSK waveforms and the ANC decoder, CRC-protected 96-bit IDs, the I-Code slot
timing model, a slot-level simulation engine -- plus every baseline the paper
evaluates against (DFSA, EDFSA, ABS, AQS and friends) and runners for each of
its tables and figures.

Quickstart::

    import numpy as np
    from repro import Fcat, Dfsa, TagPopulation

    rng = np.random.default_rng(7)
    population = TagPopulation.random(2000, rng)
    fcat = Fcat(lam=2).read_all(population, np.random.default_rng(1))
    dfsa = Dfsa().read_all(population, np.random.default_rng(1))
    print(fcat.summary())
    print(dfsa.summary())
    print(f"gain: {fcat.throughput / dfsa.throughput - 1:.0%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-
measured numbers.
"""

from repro.air import ICODE_TIMING, TimingModel, generate_tag_ids
from repro.baselines import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    BinaryTree,
    Crdsa,
    Dfsa,
    Edfsa,
    FramedSlottedAloha,
    Gen2Q,
    QueryTree,
    SlottedAloha,
)
from repro.core import (
    EmbeddedEstimator,
    Fcat,
    FcatConfig,
    RecordStore,
    Scat,
    ScatConfig,
    optimal_omega,
    optimal_report_probability,
    useful_slot_probability,
)
from repro.sim import (
    ActiveSet,
    AggregateResult,
    ChannelModel,
    PERFECT_CHANNEL,
    ReadingResult,
    TagPopulation,
    TagReadingProtocol,
    aggregate,
    run_many,
)

__version__ = "1.0.0"

__all__ = [
    "ICODE_TIMING",
    "TimingModel",
    "generate_tag_ids",
    "AdaptiveBinarySplitting",
    "AdaptiveQuerySplitting",
    "BinaryTree",
    "Crdsa",
    "Dfsa",
    "Edfsa",
    "FramedSlottedAloha",
    "Gen2Q",
    "QueryTree",
    "SlottedAloha",
    "EmbeddedEstimator",
    "Fcat",
    "FcatConfig",
    "RecordStore",
    "Scat",
    "ScatConfig",
    "optimal_omega",
    "optimal_report_probability",
    "useful_slot_probability",
    "ActiveSet",
    "AggregateResult",
    "ChannelModel",
    "PERFECT_CHANNEL",
    "ReadingResult",
    "TagPopulation",
    "TagReadingProtocol",
    "aggregate",
    "run_many",
    "__version__",
]
