"""Reader locations and coverage (paper section II-A, first paragraph).

A warehouse deploys tags across an area larger than one reader position's
range, so the reader (or several) performs the reading process at multiple
locations; coverage regions overlap, and tags in the overlap are read twice
(the duplicates are discarded when merging).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.population import TagPopulation


@dataclass(frozen=True)
class ReaderLocation:
    """One position the reader reads from, and the tags it can hear."""

    name: str
    covered_ids: frozenset[int]

    def population(self) -> TagPopulation:
        return TagPopulation(sorted(self.covered_ids), validate=False)

    def __len__(self) -> int:
        return len(self.covered_ids)


class Warehouse:
    """A deployment of tags partitioned into overlapping reader locations."""

    def __init__(self, locations: list[ReaderLocation]) -> None:
        if not locations:
            raise ValueError("a warehouse needs at least one reader location")
        names = [location.name for location in locations]
        if len(set(names)) != len(names):
            raise ValueError("reader location names must be distinct")
        self.locations = list(locations)

    @property
    def all_ids(self) -> frozenset[int]:
        ids: set[int] = set()
        for location in self.locations:
            ids |= location.covered_ids
        return frozenset(ids)

    @property
    def uncovered_overlap_fraction(self) -> float:
        """Fraction of tags heard from more than one location."""
        total = self.all_ids
        if not total:
            return 0.0
        seen_once: set[int] = set()
        seen_twice: set[int] = set()
        for location in self.locations:
            seen_twice |= location.covered_ids & seen_once
            seen_once |= location.covered_ids
        return len(seen_twice) / len(total)

    @classmethod
    def random_layout(cls, population: TagPopulation, n_locations: int,
                      rng: np.random.Generator,
                      overlap: float = 0.15) -> "Warehouse":
        """Split a population into ``n_locations`` contiguous zones.

        Each zone additionally hears ``overlap`` of its neighbours' tags
        (readers at zone boundaries pick up both sides) so the merge step
        has real duplicates to discard.
        """
        if n_locations < 1:
            raise ValueError("n_locations must be >= 1")
        if not 0.0 <= overlap < 1.0:
            raise ValueError("overlap must be in [0, 1)")
        ids = list(population.ids)
        rng.shuffle(ids)
        chunks = np.array_split(np.arange(len(ids)), n_locations)
        locations = []
        for index, chunk in enumerate(chunks):
            covered = {ids[i] for i in chunk}
            if overlap and index + 1 < n_locations:
                neighbour = chunks[index + 1]
                borrow = neighbour[: max(int(len(neighbour) * overlap), 0)]
                covered |= {ids[i] for i in borrow}
            locations.append(ReaderLocation(name=f"location-{index}",
                                            covered_ids=frozenset(covered)))
        return cls(locations)
