"""Reader locations and coverage (paper section II-A, first paragraph).

A warehouse deploys tags across an area larger than one reader position's
range, so the reader (or several) performs the reading process at multiple
locations; coverage regions overlap, and tags in the overlap are read twice
(the duplicates are discarded when merging).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.population import TagPopulation


@dataclass(frozen=True)
class ReaderLocation:
    """One position the reader reads from, and the tags it can hear."""

    name: str
    covered_ids: frozenset[int]

    def population(self) -> TagPopulation:
        return TagPopulation(sorted(self.covered_ids), validate=False)

    def __len__(self) -> int:
        return len(self.covered_ids)


class Warehouse:
    """A deployment of tags partitioned into overlapping reader locations."""

    def __init__(self, locations: list[ReaderLocation]) -> None:
        if not locations:
            raise ValueError("a warehouse needs at least one reader location")
        names = [location.name for location in locations]
        if len(set(names)) != len(names):
            raise ValueError("reader location names must be distinct")
        self.locations = list(locations)

    @property
    def all_ids(self) -> frozenset[int]:
        ids: set[int] = set()
        for location in self.locations:
            ids |= location.covered_ids
        return frozenset(ids)

    @property
    def uncovered_overlap_fraction(self) -> float:
        """Fraction of tags heard from more than one location."""
        total = self.all_ids
        if not total:
            return 0.0
        seen_once: set[int] = set()
        seen_twice: set[int] = set()
        for location in self.locations:
            seen_twice |= location.covered_ids & seen_once
            seen_once |= location.covered_ids
        return len(seen_twice) / len(total)

    def coverage_counts(self) -> dict[int, int]:
        """How many locations hear each tag (1 = exclusive, 2+ = overlap)."""
        counts: dict[int, int] = {}
        for location in self.locations:
            for tag_id in location.covered_ids:
                counts[tag_id] = counts.get(tag_id, 0) + 1
        return counts

    def overlap_pairs(self) -> dict[tuple[str, str], int]:
        """Shared-tag counts per interfering location pair.

        Keys are ``(name_a, name_b)`` in roster order; only pairs whose
        coverage actually intersects appear, so the keys are exactly the
        edges of :func:`repro.inventory.scheduling.interference_graph` and
        the values are the edge weights an interference model needs.
        """
        pairs: dict[tuple[str, str], int] = {}
        for i, first in enumerate(self.locations):
            for second in self.locations[i + 1:]:
                shared = len(first.covered_ids & second.covered_ids)
                if shared:
                    pairs[(first.name, second.name)] = shared
        return pairs

    def overlap_fraction_between(self, name_a: str, name_b: str) -> float:
        """Shared tags of the pair over the first location's coverage.

        The asymmetric load ``|A ∩ B| / |A|``: the fraction of ``name_a``'s
        interrogation zone garbled when ``name_b`` reads concurrently.
        """
        by_name = {location.name: location for location in self.locations}
        try:
            first, second = by_name[name_a], by_name[name_b]
        except KeyError as error:
            raise KeyError(f"unknown reader location {error.args[0]!r}")
        if not first.covered_ids:
            return 0.0
        return len(first.covered_ids & second.covered_ids) \
            / len(first.covered_ids)

    @classmethod
    def random_layout(cls, population: TagPopulation, n_locations: int,
                      rng: np.random.Generator,
                      overlap: float = 0.15,
                      wrap: bool = False) -> "Warehouse":
        """Split a population into ``n_locations`` contiguous zones.

        Each zone additionally hears ``overlap`` of its successor's tags
        (readers at zone boundaries pick up both sides) so the merge step
        has real duplicates to discard.  With ``wrap=True`` the layout is a
        closed ring -- the last zone also hears the head of the first --
        which makes every zone overlap a neighbour and gives the
        interference graph a cycle instead of a path (the aisle-loop
        deployments the multi-reader scheduler shards).

        The seed code assumed an open chain, so the final location could
        never share coverage; the ring form is what
        :mod:`repro.service.sharding` mirrors at facility scale.
        """
        if n_locations < 1:
            raise ValueError("n_locations must be >= 1")
        if not 0.0 <= overlap < 1.0:
            raise ValueError("overlap must be in [0, 1)")
        ids = list(population.ids)
        rng.shuffle(ids)
        chunks = np.array_split(np.arange(len(ids)), n_locations)
        locations = []
        for index, chunk in enumerate(chunks):
            covered = {ids[i] for i in chunk}
            successor = index + 1
            if wrap and n_locations > 1:
                successor %= n_locations
            if overlap and successor != index and successor < n_locations:
                neighbour = chunks[successor]
                borrow = neighbour[: max(int(len(neighbour) * overlap), 0)]
                covered |= {ids[i] for i in borrow}
            locations.append(ReaderLocation(name=f"location-{index}",
                                            covered_ids=frozenset(covered)))
        return cls(locations)
