"""Warehouse inventory management on top of the reading protocols.

The paper's introduction motivates everything with periodic inventory reads
"to guard against administration error, vendor fraud and employee theft",
noting that a single reader position may not cover the whole deployment: the
reader visits several locations and duplicate IDs are removed.  This package
implements that application layer:

* :mod:`repro.inventory.zones` -- reader positions and which tags each one
  covers.
* :mod:`repro.inventory.manager` -- run a multi-location inventory round
  with any :class:`~repro.sim.base.TagReadingProtocol`, merge and
  de-duplicate, and reconcile the result against a manifest.
"""

from repro.inventory.manager import (
    InventoryReport,
    InventoryRound,
    reconcile,
    run_inventory_round,
)
from repro.inventory.scheduling import (
    ParallelRound,
    ParallelSchedule,
    interference_graph,
    plan_parallel_round,
    run_parallel_round,
)
from repro.inventory.zones import ReaderLocation, Warehouse

__all__ = [
    "InventoryReport",
    "InventoryRound",
    "reconcile",
    "run_inventory_round",
    "ParallelRound",
    "ParallelSchedule",
    "interference_graph",
    "plan_parallel_round",
    "run_parallel_round",
    "ReaderLocation",
    "Warehouse",
]
