"""Multi-reader scheduling: reading overlapping locations in parallel.

The paper's introduction offers two ways to cover a large area: move one
reader between locations (what :func:`~repro.inventory.manager.run_inventory_round`
models, with the location times summing), or "deploy numerous readers, each
covering a small area".  Simultaneous readers whose coverage overlaps
interfere -- a tag in the overlap hears two advertisements and garbles both
sessions -- so interfering readers must not operate at the same time.

That is a graph coloring problem: vertices are reader locations, edges join
locations with overlapping coverage, and a proper coloring partitions the
locations into interference-free *phases* that can run concurrently.  The
round's wall-clock is then the sum over phases of the slowest location in
each phase, instead of the sum over all locations.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.inventory.manager import InventoryRound
from repro.inventory.zones import ReaderLocation, Warehouse
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import ReadingResult


def interference_graph(warehouse: Warehouse) -> nx.Graph:
    """Build the reader-interference graph (edge = overlapping coverage)."""
    graph = nx.Graph()
    graph.add_nodes_from(location.name for location in warehouse.locations)
    locations = warehouse.locations
    for i, first in enumerate(locations):
        for second in locations[i + 1:]:
            if first.covered_ids & second.covered_ids:
                graph.add_edge(first.name, second.name)
    return graph


@dataclass
class ParallelSchedule:
    """Interference-free phases of reader locations."""

    phases: list[list[ReaderLocation]]

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def validate(self, warehouse: Warehouse) -> None:
        """Raise if any phase contains two interfering locations."""
        for phase in self.phases:
            for i, first in enumerate(phase):
                for second in phase[i + 1:]:
                    if first.covered_ids & second.covered_ids:
                        raise ValueError(
                            f"{first.name} and {second.name} interfere but "
                            "share a phase")
        scheduled = {location.name for phase in self.phases
                     for location in phase}
        expected = {location.name for location in warehouse.locations}
        if scheduled != expected:
            raise ValueError("schedule does not cover every location")


def plan_parallel_round(warehouse: Warehouse,
                        strategy: str = "DSATUR") -> ParallelSchedule:
    """Color the interference graph into concurrent phases.

    ``strategy`` is any networkx ``greedy_color`` strategy; DSATUR gives
    optimal colorings on the interval-like graphs typical of aisle layouts.
    """
    graph = interference_graph(warehouse)
    coloring = nx.coloring.greedy_color(graph, strategy=strategy)
    by_name = {location.name: location for location in warehouse.locations}
    n_phases = max(coloring.values(), default=-1) + 1
    phases = [[] for _ in range(max(n_phases, 1))]
    for name, color in coloring.items():
        phases[color].append(by_name[name])
    schedule = ParallelSchedule(phases=[phase for phase in phases if phase])
    schedule.validate(warehouse)
    return schedule


@dataclass
class ParallelRound(InventoryRound):
    """An inventory round executed phase by phase with concurrent readers."""

    schedule: ParallelSchedule = None  # type: ignore[assignment]
    phase_durations: list[float] = None  # type: ignore[assignment]

    @property
    def total_duration_s(self) -> float:
        """Wall-clock: phases run sequentially, locations within in parallel."""
        return sum(self.phase_durations)


def run_parallel_round(warehouse: Warehouse, protocol: TagReadingProtocol,
                       rng: np.random.Generator,
                       channel: ChannelModel = PERFECT_CHANNEL,
                       timing: TimingModel = ICODE_TIMING,
                       strategy: str = "DSATUR") -> ParallelRound:
    """Read the warehouse with one reader per location, phase-scheduled."""
    schedule = plan_parallel_round(warehouse, strategy=strategy)
    results: list[ReadingResult] = []
    observed: set[int] = set()
    duplicates = 0
    phase_durations: list[float] = []
    for phase in schedule.phases:
        slowest = 0.0
        for location in phase:
            result = protocol.read_all(location.population(), rng,
                                       channel=channel, timing=timing)
            if not result.complete:
                raise RuntimeError(
                    f"{protocol.name} left tags unread at {location.name}")
            results.append(result)
            slowest = max(slowest, result.duration_s)
            duplicates += len(location.covered_ids & observed)
            observed |= location.covered_ids
        phase_durations.append(slowest)
    return ParallelRound(warehouse=warehouse, results=results,
                         observed_ids=frozenset(observed),
                         duplicates_discarded=duplicates,
                         schedule=schedule, phase_durations=phase_durations)
