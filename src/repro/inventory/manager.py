"""Multi-location inventory rounds and manifest reconciliation.

An :class:`InventoryRound` reads every location of a
:class:`~repro.inventory.zones.Warehouse` with a chosen protocol, merges the
collected IDs (dropping the duplicates that overlapping coverage produces),
and reports the total reading time.  :func:`reconcile` then diffs the round
against a manifest -- the administration-error / theft check the paper's
introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.inventory.zones import Warehouse
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import ReadingResult


@dataclass
class InventoryRound:
    """The outcome of reading every location once."""

    warehouse: Warehouse
    results: list[ReadingResult]
    observed_ids: frozenset[int]
    duplicates_discarded: int

    @property
    def total_duration_s(self) -> float:
        return sum(result.duration_s for result in self.results)

    @property
    def throughput(self) -> float:
        """Unique IDs per second across the whole round."""
        duration = self.total_duration_s
        if duration <= 0:
            raise ValueError("round has zero duration")
        return len(self.observed_ids) / duration

    def summary(self) -> str:
        return (f"inventory round: {len(self.observed_ids)} unique tags from "
                f"{len(self.results)} locations in "
                f"{self.total_duration_s:.1f}s "
                f"({self.duplicates_discarded} duplicates discarded)")


def run_inventory_round(warehouse: Warehouse, protocol: TagReadingProtocol,
                        rng: np.random.Generator,
                        channel: ChannelModel = PERFECT_CHANNEL,
                        timing: TimingModel = ICODE_TIMING) -> InventoryRound:
    """Read all locations in sequence with ``protocol`` and merge."""
    results: list[ReadingResult] = []
    observed: set[int] = set()
    duplicates = 0
    for location in warehouse.locations:
        result = protocol.read_all(location.population(), rng,
                                   channel=channel, timing=timing)
        if not result.complete:
            raise RuntimeError(
                f"{protocol.name} left {result.n_tags - result.n_read} tags "
                f"unread at {location.name}; inventory rounds require "
                "complete reads")
        results.append(result)
        duplicates += len(location.covered_ids & observed)
        observed |= location.covered_ids
    return InventoryRound(warehouse=warehouse, results=results,
                          observed_ids=frozenset(observed),
                          duplicates_discarded=duplicates)


@dataclass
class InventoryReport:
    """Manifest reconciliation: what the paper's use case is really after."""

    expected: frozenset[int]
    observed: frozenset[int]
    missing: frozenset[int] = field(init=False)
    unexpected: frozenset[int] = field(init=False)

    def __post_init__(self) -> None:
        self.missing = frozenset(self.expected - self.observed)
        self.unexpected = frozenset(self.observed - self.expected)

    @property
    def clean(self) -> bool:
        return not self.missing and not self.unexpected

    def summary(self) -> str:
        if self.clean:
            return "inventory reconciles: no discrepancies"
        return (f"inventory discrepancies: {len(self.missing)} missing "
                f"(possible theft/misplacement), {len(self.unexpected)} "
                "unexpected (possible administration error)")


def reconcile(manifest_ids: frozenset[int] | set[int],
              inventory: InventoryRound) -> InventoryReport:
    """Diff an inventory round against the bookkeeping manifest."""
    return InventoryReport(expected=frozenset(manifest_ids),
                           observed=inventory.observed_ids)
