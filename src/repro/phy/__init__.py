"""Physical-layer substrate: MSK modem, channel model and the ANC decoder.

The paper's protocols treat "a k-collision slot with k <= lambda is resolvable"
as a primitive supplied by Analog Network Coding (Katti et al., SIGCOMM 2007).
This package implements that primitive at the waveform level:

* :mod:`repro.phy.msk` -- Minimum Shift Keying modulation/demodulation over
  complex baseband samples (the modulation ANC is built on, paper section II-B).
* :mod:`repro.phy.channel` -- per-tag complex channel gains, AWGN, and the
  superposition of simultaneous transmissions.
* :mod:`repro.phy.anc` -- the analog-network-coding operations: amplitude
  estimation from the energy statistics, known-signal subtraction, residual
  demodulation, and the Alice-Bob relay exchange of the paper's Fig. 2.
"""

from repro.phy.channel import ChannelGain, awgn, mix_signals, random_channel
from repro.phy.msk import (
    SAMPLES_PER_BIT,
    msk_demodulate,
    msk_demodulate_correlator,
    msk_modulate,
    msk_phase_trajectory,
)
from repro.phy.signal_reader import SignalLevelFcat, SignalSessionResult
from repro.phy.anc import (
    AmplitudeEstimate,
    alice_bob_exchange,
    decode_residual,
    estimate_amplitudes,
    estimate_phase_offset,
    least_squares_cancel,
    resolve_collision,
    subtract_known,
)

__all__ = [
    "ChannelGain",
    "awgn",
    "mix_signals",
    "random_channel",
    "SAMPLES_PER_BIT",
    "msk_demodulate",
    "msk_demodulate_correlator",
    "msk_modulate",
    "msk_phase_trajectory",
    "AmplitudeEstimate",
    "alice_bob_exchange",
    "decode_residual",
    "estimate_amplitudes",
    "estimate_phase_offset",
    "least_squares_cancel",
    "resolve_collision",
    "subtract_known",
    "SignalLevelFcat",
    "SignalSessionResult",
]
