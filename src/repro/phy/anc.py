"""Analog Network Coding operations (paper section II-B).

Implements the signal arithmetic the paper borrows from Katti et al.:

* :func:`estimate_amplitudes` -- recover the two constituent amplitudes of a
  mixed signal ``y[n] = A e^{i theta[n]} + B e^{i phi[n]}`` from the energy
  statistics ``mu = E[|y|^2] = A^2 + B^2`` and
  ``sigma = (2/W) * sum_{|y|^2 > mu} |y|^2 = A^2 + B^2 + 4AB/pi``
  (Hamkins' co-channel FM separation).
* :func:`subtract_known` / :func:`resolve_collision` -- the RFID reader's
  operation: remove the signals of already-identified tags from a recorded
  collision and demodulate what is left.  Because tags are static, the signal
  observed in a singleton slot is *identical* (same channel) to that tag's
  contribution in any collision slot, so no channel estimation is needed.
* :func:`alice_bob_exchange` -- the Fig. 2 two-slot relay exchange, where each
  endpoint only knows its *transmitted* signal and must estimate the amplitude
  and phase its own signal acquired on the way to the router before it can
  subtract it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.air.crc import verify_crc_bits
from repro.phy.channel import ChannelGain, awgn, mix_signals
from repro.phy.msk import SAMPLES_PER_BIT, msk_demodulate, msk_modulate


@dataclass(frozen=True)
class AmplitudeEstimate:
    """Constituent amplitudes recovered from a two-signal mix (``a >= b``)."""

    a: float
    b: float
    mu: float
    sigma: float


# repro: pure
def estimate_amplitudes(mixed: np.ndarray) -> AmplitudeEstimate:
    """Estimate the amplitudes of the two constituents of a mixed signal.

    Uses the two energy equations of paper section II-B.  Noise can push the
    implied ``AB`` product slightly out of range; the solver clamps the
    discriminant at zero (equal amplitudes) in that case.
    """
    mixed = np.asarray(mixed, dtype=np.complex128)
    if mixed.size == 0:
        raise ValueError("mixed signal is empty")
    power = np.abs(mixed) ** 2  # repro: shape(any) dtype=float64
    mu = float(power.mean())
    above = power[power > mu]
    sigma = float(2.0 * above.sum() / power.size)
    product = np.pi * (sigma - mu) / 4.0  # = A*B in expectation
    product = max(product, 0.0)
    discriminant = max(mu * mu - 4.0 * product * product, 0.0)
    root = np.sqrt(discriminant)
    a_sq = (mu + root) / 2.0
    b_sq = max((mu - root) / 2.0, 0.0)
    return AmplitudeEstimate(a=float(np.sqrt(a_sq)), b=float(np.sqrt(b_sq)),
                             mu=mu, sigma=sigma)


# repro: pure
def subtract_known(
    mixed: np.ndarray,  # repro: shape(w) dtype=complex128
    known: np.ndarray,  # repro: shape(w) dtype=complex128
) -> np.ndarray:
    """Remove a known constituent signal from a recorded mixed signal."""
    mixed = np.asarray(mixed, dtype=np.complex128)
    known = np.asarray(known, dtype=np.complex128)
    if mixed.shape != known.shape:
        raise ValueError(
            f"shape mismatch: mixed {mixed.shape} vs known {known.shape}")
    return mixed - known


# repro: pure
def decode_residual(residual: np.ndarray,
                    samples_per_bit: int = SAMPLES_PER_BIT) -> np.ndarray:
    """Demodulate a residual signal into bits (MSK decision on phase slope)."""
    return msk_demodulate(residual, samples_per_bit)


# repro: pure
def resolve_collision(mixed: np.ndarray, known_signals: list[np.ndarray],
                      samples_per_bit: int = SAMPLES_PER_BIT) -> np.ndarray | None:
    """The RFID reader's collision-record resolution primitive.

    Subtracts every known constituent from ``mixed``, demodulates the residual
    and validates its CRC.  Returns the recovered bit frame (payload + CRC) on
    success, or ``None`` when the CRC rejects the residual -- which is what
    happens when more than one unknown constituent remains, or when noise has
    accumulated beyond what the demodulator tolerates.
    """
    residual = np.asarray(mixed, dtype=np.complex128)  # repro: shape(any) dtype=complex128
    for known in known_signals:
        residual = subtract_known(residual, known)
    bits = decode_residual(residual, samples_per_bit)
    if bits.size and verify_crc_bits(bits):
        return bits
    return None


# repro: pure
def least_squares_cancel(mixed: np.ndarray, known_bits: list[np.ndarray],
                         samples_per_bit: int = SAMPLES_PER_BIT) -> np.ndarray | None:
    """Cancel known constituents when their *waveforms* are not directly known.

    If the tag oscillators are not phase-locked between slots, the signal a tag
    contributed to an old collision record differs from its singleton-slot
    signal by an unknown complex factor.  The reader still knows the tag's
    *bits*, so it can regenerate each known constituent up to a complex gain
    and solve for all gains jointly by least squares (distinct random MSK
    waveforms are nearly orthogonal over a 96-bit ID).  Returns the recovered
    bit frame of the remaining constituent, or ``None`` if the CRC rejects it.
    """
    mixed = np.asarray(mixed, dtype=np.complex128)  # repro: shape(w) dtype=complex128
    if not known_bits:
        raise ValueError("need at least one known constituent")
    basis = np.column_stack([
        msk_modulate(bits, samples_per_bit=samples_per_bit)
        for bits in known_bits
    ])
    if basis.shape[0] != mixed.size:
        raise ValueError("known constituents do not match the mix length")
    gains, *_ = np.linalg.lstsq(basis, mixed, rcond=None)
    residual = mixed - basis @ gains  # repro: shape(w) dtype=complex128
    bits = decode_residual(residual, samples_per_bit)
    if bits.size and verify_crc_bits(bits):
        return bits
    return None


# repro: pure
def estimate_phase_offset(received: np.ndarray, own_bits: np.ndarray,
                          own_amplitude: float,
                          samples_per_bit: int = SAMPLES_PER_BIT,
                          grid_points: int = 256) -> float:
    """Estimate the phase rotation a node's own signal acquired in a mix.

    Given the received mix ``r`` and the node's transmitted bit string, searches
    phase offsets ``gamma`` for the one minimizing the envelope variance of
    ``r - A * e^{i(theta_s + gamma)}``: after a correct subtraction the residual
    is (close to) a constant-envelope MSK signal, so envelope variance is a
    natural goodness-of-fit measure.
    """
    received = np.asarray(received, dtype=np.complex128)  # repro: shape(any) dtype=complex128
    base = msk_modulate(own_bits, amplitude=own_amplitude,
                        samples_per_bit=samples_per_bit)
    if base.shape != received.shape:
        raise ValueError("own signal and received mix have different lengths")
    gammas = np.linspace(0.0, 2 * np.pi, grid_points, endpoint=False)
    best_gamma, best_score = 0.0, np.inf
    for gamma in gammas:
        residual = received - base * np.exp(1j * gamma)
        envelope = np.abs(residual)
        score = float(envelope.var())
        if score < best_score:
            best_gamma, best_score = float(gamma), score
    return best_gamma


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome of one Alice-Bob ANC exchange (paper Fig. 2)."""

    bits_decoded_by_alice: np.ndarray
    bits_decoded_by_bob: np.ndarray
    alice_ok: bool
    bob_ok: bool


# repro: pure
def _decode_peer(received: np.ndarray, own_bits: np.ndarray,
                 samples_per_bit: int) -> np.ndarray:
    """Subtract the node's own contribution from a mix and decode the peer's.

    The energy statistics yield two amplitude candidates but not which one
    belongs to whom, so both are tried; the subtraction leaving the residual
    with the flatter envelope (closer to constant-modulus MSK) wins.
    """
    estimate = estimate_amplitudes(received)
    best_residual, best_score = None, np.inf
    for amplitude in {estimate.a, estimate.b}:
        if amplitude <= 0:
            continue
        gamma = estimate_phase_offset(received, own_bits, amplitude,
                                      samples_per_bit=samples_per_bit)
        own = msk_modulate(own_bits, amplitude=amplitude,
                           samples_per_bit=samples_per_bit) * np.exp(1j * gamma)
        residual = subtract_known(received, own)
        score = float(np.abs(residual).var())
        if score < best_score:
            best_residual, best_score = residual, score
    if best_residual is None:
        raise ValueError("could not attribute an amplitude to the own signal")
    return decode_residual(best_residual, samples_per_bit)


# repro: effects(reads-rng)
def alice_bob_exchange(alice_bits: np.ndarray, bob_bits: np.ndarray,
                       rng: np.random.Generator, snr_db: float = 30.0,
                       alice_channel: ChannelGain | None = None,
                       bob_channel: ChannelGain | None = None,
                       samples_per_bit: int = SAMPLES_PER_BIT) -> ExchangeResult:
    """Run the two-slot Alice-Bob exchange through an amplify-and-forward relay.

    Both endpoints transmit simultaneously; the router broadcasts the mix; each
    endpoint estimates the amplitude/phase of its own contribution, subtracts
    it and demodulates the peer's bits.  The subtraction here is *harder* than
    the RFID case (the paper's point): the endpoints never observe their own
    signal as received, so they must estimate amplitude and phase first.
    """
    alice_bits = np.asarray(alice_bits, dtype=np.uint8)
    bob_bits = np.asarray(bob_bits, dtype=np.uint8)
    if alice_bits.size != bob_bits.size:
        raise ValueError("Alice and Bob must exchange equal-length messages")
    # Alice's signal should dominate at the relay so the amplitude solver can
    # attribute the larger root to her; mirrored for Bob by symmetry of use.
    alice_channel = alice_channel or ChannelGain(1.0, 0.7)
    bob_channel = bob_channel or ChannelGain(0.6, 2.1)
    at_router = mix_signals([
        alice_channel.apply(msk_modulate(alice_bits,
                                         samples_per_bit=samples_per_bit)),
        bob_channel.apply(msk_modulate(bob_bits,
                                       samples_per_bit=samples_per_bit)),
    ])
    at_router = awgn(at_router, snr_db, rng)
    # Amplify-and-forward: both endpoints hear the same broadcast (unit
    # downlink channel keeps the demo focused on the subtraction step).
    broadcast = at_router
    alice_decoded = _decode_peer(broadcast, alice_bits, samples_per_bit)
    bob_decoded = _decode_peer(broadcast, bob_bits, samples_per_bit)
    return ExchangeResult(
        bits_decoded_by_alice=alice_decoded,
        bits_decoded_by_bob=bob_decoded,
        alice_ok=bool(np.array_equal(alice_decoded, bob_bits)),
        bob_ok=bool(np.array_equal(bob_decoded, alice_bits)),
    )
