"""Minimum Shift Keying (MSK) over complex baseband samples.

MSK is continuous-phase FSK with modulation index 1/2: a '1' bit advances the
carrier phase by +pi/2 over one bit interval, a '0' bit retards it by pi/2
(paper section II-B, citing Pasupathy).  We represent a transmission as the
complex baseband sequence ``s[n] = A * exp(i * theta[n])`` sampled
``SAMPLES_PER_BIT`` times per bit, with one extra leading sample so that every
bit interval has a well-defined start and end phase (fence-post convention).

Demodulation integrates per-sample phase increments across each bit interval --
``angle(y[n+1] * conj(y[n]))`` is robust to phase wrapping -- and decides the
bit by the sign of the accumulated phase change.  This is exactly the decision
rule the ANC decoder applies to a residual signal after subtraction.
"""

from __future__ import annotations

import numpy as np

#: Default oversampling factor. Higher is more faithful but slower.
SAMPLES_PER_BIT = 8


def msk_phase_trajectory(bits: np.ndarray, samples_per_bit: int = SAMPLES_PER_BIT,
                         initial_phase: float = 0.0) -> np.ndarray:
    """Return the phase sequence ``theta[n]`` for a bit string.

    The result has ``len(bits) * samples_per_bit + 1`` entries; entry 0 is
    ``initial_phase`` and each bit contributes ``samples_per_bit`` increments of
    ``+-pi / (2 * samples_per_bit)``.
    """
    bits = np.asarray(bits, dtype=np.int8)
    if bits.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if samples_per_bit < 1:
        raise ValueError("samples_per_bit must be >= 1")
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ValueError("bits must contain only 0 and 1")
    step = np.pi / (2 * samples_per_bit)
    increments = np.where(bits == 1, step, -step)
    per_sample = np.repeat(increments, samples_per_bit)
    theta = np.empty(per_sample.size + 1, dtype=np.float64)
    theta[0] = initial_phase
    np.cumsum(per_sample, out=theta[1:])
    theta[1:] += initial_phase
    return theta


def msk_modulate(bits: np.ndarray, amplitude: float = 1.0,
                 samples_per_bit: int = SAMPLES_PER_BIT,
                 initial_phase: float = 0.0) -> np.ndarray:
    """Modulate ``bits`` into a complex baseband MSK waveform."""
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    theta = msk_phase_trajectory(bits, samples_per_bit, initial_phase)
    return amplitude * np.exp(1j * theta)


def msk_demodulate(samples: np.ndarray,
                   samples_per_bit: int = SAMPLES_PER_BIT) -> np.ndarray:
    """Demodulate a complex baseband MSK waveform into bits.

    ``samples`` must have ``n_bits * samples_per_bit + 1`` entries (the
    fence-post convention of :func:`msk_modulate`).  Each bit is decided by the
    sign of the phase accumulated over its interval.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.ndim != 1:
        raise ValueError("samples must be a 1-D array")
    if (samples.size - 1) % samples_per_bit:
        raise ValueError(
            f"sample count {samples.size} does not cover whole bits at "
            f"{samples_per_bit} samples/bit")
    n_bits = (samples.size - 1) // samples_per_bit
    if n_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    # Per-sample phase increments, wrap-free.
    deltas = np.angle(samples[1:] * np.conj(samples[:-1]))
    per_bit = deltas.reshape(n_bits, samples_per_bit).sum(axis=1)
    return (per_bit > 0).astype(np.uint8)


def msk_demodulate_correlator(samples: np.ndarray,
                              samples_per_bit: int = SAMPLES_PER_BIT
                              ) -> np.ndarray:
    """Noncoherent per-bit correlator detection of MSK.

    For each bit interval, correlate against the two frequency hypotheses
    (phase ramps of ``+-pi/2`` across the interval) and pick the larger
    correlation magnitude.  A textbook caveat applies: MSK's tone spacing of
    ``1/(2T)`` is only *coherently* orthogonal, so noncoherent correlation
    measures essentially the same BER as the phase-difference detector of
    :func:`msk_demodulate` (both a few dB inside the noncoherent-FSK curve;
    closing the gap to the coherent bound would need phase tracking or a
    CPM Viterbi receiver).  Kept as the alternative detector because its
    failure statistics differ -- errors cluster differently under burst
    noise -- and because the equivalence is worth pinning in a test.
    Same fence-post sample convention as :func:`msk_demodulate`.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.ndim != 1:
        raise ValueError("samples must be a 1-D array")
    if (samples.size - 1) % samples_per_bit:
        raise ValueError(
            f"sample count {samples.size} does not cover whole bits at "
            f"{samples_per_bit} samples/bit")
    n_bits = (samples.size - 1) // samples_per_bit
    if n_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    ramp = (np.arange(1, samples_per_bit + 1)
            * (np.pi / (2 * samples_per_bit)))
    up = np.exp(-1j * ramp)
    down = np.exp(1j * ramp)
    intervals = samples[1:].reshape(n_bits, samples_per_bit)
    score_up = np.abs(intervals @ up)
    score_down = np.abs(intervals @ down)
    return (score_up > score_down).astype(np.uint8)
