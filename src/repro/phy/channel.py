"""Channel model: per-tag complex gains, superposition and AWGN.

A tag's transmission reaches the reader attenuated and phase-shifted
(``h * exp(i*gamma)`` in the paper's Eq. 1).  Tags are static during a reading
session (section IV-E), so the reader observes the *same* channel for a tag in
every slot -- which is precisely why subtracting a signal received in a
singleton slot from an earlier mixed signal works without the channel
estimation the Alice-Bob setting needs (section II-B, last two paragraphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChannelGain:
    """A static complex channel between one tag and the reader.

    ``freq_offset`` models the residual carrier frequency offset of the tag's
    free-running oscillator, in radians per sample.  Independent oscillators
    are what make the *relative* phase of two colliding signals slide across a
    slot -- the assumption behind the energy-statistics amplitude estimator.
    It defaults to zero (perfectly locked carriers).
    """

    attenuation: float
    phase_shift: float
    freq_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.attenuation <= 0:
            raise ValueError("attenuation must be positive")

    @property
    def complex_gain(self) -> complex:
        return self.attenuation * np.exp(1j * self.phase_shift)

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Return the transmitted waveform as observed at the reader."""
        samples = np.asarray(samples, dtype=np.complex128)
        rotated = samples * self.complex_gain
        if self.freq_offset:
            drift = np.exp(1j * self.freq_offset * np.arange(samples.size))
            rotated = rotated * drift
        return rotated


def random_channel(rng: np.random.Generator,
                   attenuation_range: tuple[float, float] = (0.4, 1.0),
                   max_freq_offset: float = 0.0) -> ChannelGain:
    """Draw a random static channel (uniform attenuation, uniform phase).

    ``max_freq_offset`` (radians/sample) bounds a uniform carrier offset; zero
    keeps the carriers locked, which is what the collision-resolution path of
    the paper assumes.
    """
    low, high = attenuation_range
    if not 0 < low <= high:
        raise ValueError("attenuation_range must satisfy 0 < low <= high")
    if max_freq_offset < 0:
        raise ValueError("max_freq_offset must be non-negative")
    offset = float(rng.uniform(-max_freq_offset, max_freq_offset)) \
        if max_freq_offset else 0.0
    return ChannelGain(attenuation=float(rng.uniform(low, high)),
                       phase_shift=float(rng.uniform(0.0, 2 * np.pi)),
                       freq_offset=offset)


def mix_signals(signals: list[np.ndarray]) -> np.ndarray:
    """Superpose simultaneous transmissions (what a collision slot records)."""
    if not signals:
        raise ValueError("need at least one signal to mix")
    lengths = {len(s) for s in signals}
    if len(lengths) != 1:
        raise ValueError(f"signals must share a length, got {sorted(lengths)}")
    total = np.zeros(lengths.pop(), dtype=np.complex128)
    for signal in signals:
        total += np.asarray(signal, dtype=np.complex128)
    return total


def awgn(samples: np.ndarray, snr_db: float,
         rng: np.random.Generator, signal_power: float = 1.0) -> np.ndarray:
    """Add complex white Gaussian noise at the given SNR.

    ``snr_db`` is measured against ``signal_power`` (default: a unit-amplitude
    tag signal), so the noise floor is the same whether one or several tags
    transmit -- matching how a receiver's noise is independent of the traffic.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    noise_power = signal_power / (10 ** (snr_db / 10))
    sigma = np.sqrt(noise_power / 2)
    noise = rng.normal(0.0, sigma, samples.shape) + 1j * rng.normal(
        0.0, sigma, samples.shape)
    return samples + noise
