"""FCAT executed entirely at the waveform level.

The protocol-level simulator (:mod:`repro.core.fcat`) models slot outcomes
combinatorially.  This module closes the loop: a small population of
:class:`SignalTag` objects with static channels actually *transmits MSK
waveforms*; the reader demodulates every report segment, CRC-classifies it,
stores the raw mixed samples of collision slots, and resolves records by
genuine signal subtraction (:func:`repro.phy.anc.resolve_collision`).  No
hidden participant sets anywhere -- if the subtraction or the CRC fails, the
record stays unresolved, exactly like hardware would behave.

It is quadratic-ish in population size (every stored mixed signal is
re-examined whenever an ID is learned), so it is meant for populations of
tens to a few hundred tags: enough to validate that the abstract simulator's
resolvability rule matches the physics (see
``tests/phy/test_signal_reader.py`` and the A1 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.air.crc import verify_crc_bits
from repro.air.hashing import DEFAULT_HASH_BITS, report_threshold, tag_transmits
from repro.air.ids import ID_BITS, bits_to_int, id_to_bits
from repro.core.optimal import optimal_omega
from repro.phy.anc import decode_residual, subtract_known
from repro.phy.channel import ChannelGain, awgn, random_channel
from repro.phy.msk import msk_modulate
from repro.sim.population import TagPopulation


@dataclass
class SignalTag:
    """A tag with its ID, static channel, and cached as-received waveform."""

    tag_id: int
    channel: ChannelGain
    samples_per_bit: int
    active: bool = True
    _waveform: np.ndarray | None = None

    def waveform(self) -> np.ndarray:
        """The tag's ID transmission as observed at the reader.

        Static channel + phase-locked carrier (the paper's assumption), so
        the same waveform appears in every slot the tag transmits in.
        """
        if self._waveform is None:
            self._waveform = self.channel.apply(
                msk_modulate(id_to_bits(self.tag_id),
                             samples_per_bit=self.samples_per_bit))
        return self._waveform


@dataclass
class SignalRecord:
    """A stored collision slot: slot index, threshold and raw samples."""

    slot_index: int
    threshold: int
    mixed: np.ndarray
    #: Known constituent waveforms already credited to this record.
    known_waveforms: list[np.ndarray] = field(default_factory=list)
    known_ids: set[int] = field(default_factory=set)
    retired: bool = False


@dataclass
class SignalSessionResult:
    """Outcome of a waveform-level FCAT session."""

    n_tags: int
    read_ids: set[int]
    empty_slots: int = 0
    singleton_slots: int = 0
    collision_slots: int = 0
    resolved_from_collision: int = 0
    total_slots: int = 0
    unresolved_records: int = 0

    @property
    def complete(self) -> bool:
        return len(self.read_ids) == self.n_tags


class SignalLevelFcat:
    """A waveform-faithful FCAT reader for small populations."""

    def __init__(self, lam: int = 2, snr_db: float = 25.0,
                 samples_per_bit: int = 4,
                 max_report_probability: float = 0.5,
                 empty_streak_for_probe: int = 10,
                 max_slots: int = 20_000) -> None:
        if lam < 2:
            raise ValueError("lam must be >= 2")
        self.lam = lam
        self.snr_db = snr_db
        self.samples_per_bit = samples_per_bit
        self.max_report_probability = max_report_probability
        self.empty_streak_for_probe = empty_streak_for_probe
        self.max_slots = max_slots

    def read_all(self, population: TagPopulation,
                 rng: np.random.Generator) -> SignalSessionResult:
        tags = [SignalTag(tag_id=tag, channel=random_channel(rng),
                          samples_per_bit=self.samples_per_bit)
                for tag in population.ids]
        result = SignalSessionResult(n_tags=len(tags), read_ids=set())
        records: list[SignalRecord] = []
        known_waveforms: dict[int, np.ndarray] = {}
        omega = optimal_omega(self.lam)
        slot = 0
        empty_streak = 0
        n_samples = ID_BITS * self.samples_per_bit + 1
        while slot < self.max_slots:
            probing = empty_streak >= self.empty_streak_for_probe
            remaining = max(len(tags) - len(result.read_ids), 1)
            p = 1.0 if probing else min(omega / remaining,
                                        self.max_report_probability)
            threshold = report_threshold(p, DEFAULT_HASH_BITS)
            transmitters = [tag for tag in tags if tag.active
                            and tag_transmits(tag.tag_id, slot, threshold)]
            result.total_slots += 1
            if not transmitters:
                result.empty_slots += 1
                if probing:
                    break
                empty_streak += 1
                slot += 1
                continue
            empty_streak = 0
            received = awgn(
                np.sum([tag.waveform() for tag in transmitters], axis=0)
                if len(transmitters) > 1 else transmitters[0].waveform(),
                self.snr_db, rng)
            assert received.size == n_samples
            decoded = self._try_decode(received)
            if decoded is not None:
                result.singleton_slots += 1
                self._learn(decoded, received, tags, result, records,
                            known_waveforms)
            else:
                result.collision_slots += 1
                records.append(SignalRecord(slot_index=slot,
                                            threshold=threshold,
                                            mixed=received))
            slot += 1
        result.unresolved_records = sum(1 for record in records
                                        if not record.retired)
        return result

    # -- reader internals ---------------------------------------------------

    def _try_decode(self, samples: np.ndarray) -> int | None:
        """Demodulate and CRC-check; None when the slot does not decode."""
        bits = decode_residual(samples, self.samples_per_bit)
        if bits.size and verify_crc_bits(bits):
            return bits_to_int(bits)
        return None

    def _learn(self, tag_id: int, observed: np.ndarray,
               tags: list[SignalTag], result: SignalSessionResult,
               records: list[SignalRecord],
               known_waveforms: dict[int, np.ndarray]) -> None:
        """Register a learned ID and run the resolution cascade on records."""
        queue = [(tag_id, observed)]
        while queue:
            current, waveform = queue.pop()
            if current in result.read_ids:
                continue
            result.read_ids.add(current)
            known_waveforms[current] = waveform
            # Acknowledge: the tag stops participating.
            for tag in tags:
                if tag.tag_id == current:
                    tag.active = False
            # Replay the hash test over every stored record (what a real
            # reader does: H(ID|j) <= threshold_j) and try the subtraction.
            for record in records:
                if record.retired:
                    continue
                if current in record.known_ids:
                    continue
                if not tag_transmits(current, record.slot_index,
                                     record.threshold):
                    continue
                record.known_ids.add(current)
                record.known_waveforms.append(waveform)
                if len(record.known_waveforms) > self.lam - 1:
                    # More constituents than the decoder can peel: spent.
                    record.retired = True
                    continue
                residual = record.mixed
                for known in record.known_waveforms:
                    residual = subtract_known(residual, known)
                recovered_bits = decode_residual(residual,
                                                 self.samples_per_bit)
                if recovered_bits.size and verify_crc_bits(recovered_bits):
                    recovered = bits_to_int(recovered_bits)
                    record.retired = True
                    if recovered not in result.read_ids:
                        result.resolved_from_collision += 1
                        queue.append((recovered, residual))
        return
