"""A small ASCII line-chart renderer for the figure experiments.

Plots one or more named series on a shared character grid with y-axis labels
and per-series glyphs -- enough to eyeball the unimodal omega curve of
Fig. 5, the plateau of Fig. 6 or the crossing expectations of Fig. 4 in a
terminal or a markdown code block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_GLYPHS = "*o+x#@%&"


@dataclass
class AsciiChart:
    """Accumulates (x, y) series and renders them on a character grid."""

    title: str
    width: int = 72
    height: int = 18
    x_label: str = "x"
    y_label: str = "y"
    series: list[tuple[str, np.ndarray, np.ndarray]] = field(
        default_factory=list)

    def add_series(self, name: str, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        if x.size == 0:
            raise ValueError("series must contain at least one point")
        if len(self.series) >= len(_GLYPHS):
            raise ValueError(f"at most {len(_GLYPHS)} series supported")
        self.series.append((name, x, y))

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series to plot")
        x_min = min(float(x.min()) for _, x, _ in self.series)
        x_max = max(float(x.max()) for _, x, _ in self.series)
        y_min = min(float(y.min()) for _, _, y in self.series)
        y_max = max(float(y.max()) for _, _, y in self.series)
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0
        grid = [[" "] * self.width for _ in range(self.height)]
        for index, (_, xs, ys) in enumerate(self.series):
            glyph = _GLYPHS[index]
            for x, y in zip(xs, ys):
                col = int(round((x - x_min) / (x_max - x_min)
                                * (self.width - 1)))
                row = int(round((y - y_min) / (y_max - y_min)
                                * (self.height - 1)))
                grid[self.height - 1 - row][col] = glyph
        lines = [self.title]
        legend = "   ".join(f"{_GLYPHS[i]} {name}"
                            for i, (name, _, _) in enumerate(self.series))
        lines.append(legend)
        top_label = f"{y_max:.6g}"
        bottom_label = f"{y_min:.6g}"
        label_width = max(len(top_label), len(bottom_label))
        for row_index, row in enumerate(grid):
            if row_index == 0:
                label = top_label.rjust(label_width)
            elif row_index == self.height - 1:
                label = bottom_label.rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}")
        axis = " " * label_width + " +" + "-" * self.width
        lines.append(axis)
        footer = (f"{' ' * label_width}  {x_min:.6g}"
                  f"{' ' * max(self.width - 24, 1)}{x_max:.6g}  ({self.x_label})")
        lines.append(footer)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
