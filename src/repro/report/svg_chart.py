"""Dependency-free SVG line charts.

The offline environment has no plotting library, so figure experiments can
also emit standalone ``.svg`` files: axes with tick labels, one polyline +
markers per series, a legend, and a title.  The drawing model mirrors
:class:`~repro.report.ascii_chart.AsciiChart`; :func:`svg_from_ascii_chart`
converts one directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.report.ascii_chart import AsciiChart

_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
            "#8c564b", "#17becf", "#7f7f7f")


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2g}"


@dataclass
class SvgChart:
    """Accumulates (x, y) series and renders a standalone SVG document."""

    title: str
    width: int = 640
    height: int = 400
    x_label: str = "x"
    y_label: str = "y"
    series: list[tuple[str, np.ndarray, np.ndarray]] = field(
        default_factory=list)

    #: Plot-area margins: left, top, right, bottom.
    _margins: tuple[int, int, int, int] = (64, 48, 16, 48)

    def add_series(self, name: str, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1 or x.size == 0:
            raise ValueError("x and y must be equal-length non-empty 1-D")
        if len(self.series) >= len(_PALETTE):
            raise ValueError(f"at most {len(_PALETTE)} series supported")
        self.series.append((name, x, y))

    def _bounds(self) -> tuple[float, float, float, float]:
        x_min = min(float(x.min()) for _, x, _ in self.series)
        x_max = max(float(x.max()) for _, x, _ in self.series)
        y_min = min(float(y.min()) for _, _, y in self.series)
        y_max = max(float(y.max()) for _, _, y in self.series)
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0
        pad = 0.04 * (y_max - y_min)
        return x_min, x_max, y_min - pad, y_max + pad

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series to plot")
        left, top, right, bottom = self._margins
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom
        x_min, x_max, y_min, y_max = self._bounds()

        def sx(x: float) -> float:
            return left + (x - x_min) / (x_max - x_min) * plot_w

        def sy(y: float) -> float:
            return top + plot_h - (y - y_min) / (y_max - y_min) * plot_h

        parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} '
            f'{self.height}" font-family="sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" '
            'fill="white"/>',
            f'<text x="{self.width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(self.title)}</text>',
        ]
        # Gridlines + ticks.
        for i in range(5):
            y_value = y_min + (y_max - y_min) * i / 4
            y_pixel = sy(y_value)
            parts.append(f'<line x1="{left}" y1="{y_pixel:.1f}" '
                         f'x2="{left + plot_w}" y2="{y_pixel:.1f}" '
                         'stroke="#dddddd" stroke-width="1"/>')
            parts.append(f'<text x="{left - 6}" y="{y_pixel + 4:.1f}" '
                         'text-anchor="end" font-size="10">'
                         f'{_format_tick(y_value)}</text>')
        for i in range(5):
            x_value = x_min + (x_max - x_min) * i / 4
            x_pixel = sx(x_value)
            parts.append(f'<text x="{x_pixel:.1f}" '
                         f'y="{top + plot_h + 16}" text-anchor="middle" '
                         f'font-size="10">{_format_tick(x_value)}</text>')
        # Axes.
        parts.append(f'<rect x="{left}" y="{top}" width="{plot_w}" '
                     f'height="{plot_h}" fill="none" stroke="#444444"/>')
        parts.append(f'<text x="{left + plot_w / 2:.0f}" '
                     f'y="{self.height - 10}" text-anchor="middle" '
                     f'font-size="11">{_escape(self.x_label)}</text>')
        parts.append(f'<text x="16" y="{top + plot_h / 2:.0f}" '
                     f'font-size="11" text-anchor="middle" transform='
                     f'"rotate(-90 16 {top + plot_h / 2:.0f})">'
                     f'{_escape(self.y_label)}</text>')
        # Series.
        for index, (name, xs, ys) in enumerate(self.series):
            color = _PALETTE[index]
            order = np.argsort(xs)
            points = " ".join(f"{sx(float(xs[j])):.1f},"
                              f"{sy(float(ys[j])):.1f}" for j in order)
            parts.append(f'<polyline points="{points}" fill="none" '
                         f'stroke="{color}" stroke-width="2"/>')
            for j in order:
                parts.append(f'<circle cx="{sx(float(xs[j])):.1f}" '
                             f'cy="{sy(float(ys[j])):.1f}" r="3" '
                             f'fill="{color}"/>')
            legend_y = top + 14 + 16 * index
            parts.append(f'<rect x="{left + plot_w - 130}" '
                         f'y="{legend_y - 9}" width="10" height="10" '
                         f'fill="{color}"/>')
            parts.append(f'<text x="{left + plot_w - 116}" y="{legend_y}" '
                         f'font-size="11">{_escape(name)}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def svg_from_ascii_chart(chart: AsciiChart, width: int = 640,
                         height: int = 400) -> SvgChart:
    """Build an :class:`SvgChart` from an existing ASCII chart's series."""
    svg = SvgChart(title=chart.title, width=width, height=height,
                   x_label=chart.x_label, y_label=chart.y_label)
    for name, x, y in chart.series:
        svg.add_series(name, x, y)
    return svg
