"""Dependency-free reporting: ASCII line charts and markdown tables.

The offline environment has no plotting library, so the figure experiments
render their curves as character grids (good enough to see shapes, peaks and
crossovers) and every table experiment renders GitHub-flavoured markdown.
"""

from repro.report.ascii_chart import AsciiChart
from repro.report.session_plot import (
    estimate_sparkline,
    render_session,
    slot_strip,
)
from repro.report.svg_chart import SvgChart, svg_from_ascii_chart
from repro.report.tables import MarkdownTable, format_number

__all__ = ["AsciiChart", "SvgChart", "svg_from_ascii_chart",
           "MarkdownTable", "format_number",
           "estimate_sparkline", "render_session", "slot_strip"]
