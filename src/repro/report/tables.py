"""Markdown table rendering for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def format_number(value: Any, digits: int = 1) -> str:
    """Human-friendly cell formatting: ints stay ints, floats get ``digits``."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
            return str(int(round(value)))
        return f"{value:.{digits}f}"
    return str(value)


@dataclass
class MarkdownTable:
    """A titled markdown table accumulated row by row."""

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} "
                "columns")
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self, digits: int = 1) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(format_number(cell, digits) for cell in row)
                + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"> {note}")
        lines.append("")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
