"""Render a :class:`~repro.sim.trace.SessionTrace` as an ASCII timeline.

One character per slot, wrapped into rows:

* ``.`` empty slot
* ``s`` singleton slot
* ``x`` collision slot (mixed signal recorded)
* ``R`` a slot in which at least one ID was *resolved* from a stored record
  (the ANC payoff -- these are collisions or singletons whose cascade fired)
* ``!`` a termination probe

Below the strip, a sparkline of the estimator's remaining-count trace shows
the bootstrap doubling, the tracking phase and the drain to zero.  Everything
is plain text so a session can be eyeballed in a terminal or pasted into an
issue.
"""

from __future__ import annotations

from repro.sim.trace import SessionTrace, SlotKind

_SPARK = " .:-=+*#%@"


def slot_strip(trace: SessionTrace, width: int = 72) -> str:
    """The per-slot character strip, wrapped at ``width`` columns."""
    if width < 1:
        raise ValueError("width must be >= 1")
    characters = []
    for event in trace.events:
        if event.probe:
            characters.append("!")
        elif event.learned and event.kind is not SlotKind.SINGLETON:
            characters.append("R")
        elif event.kind is SlotKind.EMPTY:
            characters.append(".")
        elif event.kind is SlotKind.SINGLETON:
            characters.append("R" if len(event.learned) > 1 else "s")
        else:
            characters.append("x")
    strip = "".join(characters)
    lines = [strip[start:start + width]
             for start in range(0, len(strip), width)]
    return "\n".join(lines)


def estimate_sparkline(trace: SessionTrace, width: int = 72) -> str:
    """The estimator's remaining-count trace as a one-line sparkline."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if not trace.estimates:
        return "(no estimator samples)"
    values = [value for _, value in trace.estimates]
    # Downsample/interpolate to the requested width.
    if len(values) > width:
        step = len(values) / width
        values = [values[int(index * step)] for index in range(width)]
    peak = max(values)
    if peak <= 0:
        return _SPARK[1] * len(values)
    levels = len(_SPARK) - 1
    return "".join(_SPARK[max(1, round(value / peak * levels))]
                   for value in values)


def render_session(trace: SessionTrace, width: int = 72) -> str:
    """Full session view: legend, slot strip, estimate sparkline."""
    lines = [
        trace.summary(),
        "legend: . empty   s singleton   x collision   "
        "R resolution fired   ! probe",
        slot_strip(trace, width),
        "",
        "estimator remaining-count trace (peak-normalized):",
        estimate_sparkline(trace, width),
    ]
    return "\n".join(lines)
