"""Vectorized frame-at-once simulation kernels (ROADMAP batching item).

Drop-in batched engines for the hot protocols -- FCAT, SCAT and the
DFSA baseline -- that replace per-slot Python iteration with bulk RNG
draws and array classification, plus the lockstep ``run_batch`` entry
point the experiment executor dispatches to under ``engine="kernel"``.
Scalar implementations in :mod:`repro.core` / :mod:`repro.baselines`
remain the reference; every kernel registers its scalar counterpart and
an equivalence test via the ``# repro: kernel`` contract (lint rule
R15).  Seed semantics, the batching model and the measured speedups are
documented in ``docs/performance.md``.
"""

from repro.kernels.dfsa import batched_dfsa_sessions
from repro.kernels.engine import (ENGINES, batch_read_all, kernel_supported,
                                  run_batch, validate_engine)
from repro.kernels.fcat import batched_fcat_sessions
from repro.kernels.frame import (RankSource, draw_slot_counts,
                                 resample_duplicate_slots)
from repro.kernels.records import KernelRecordStore
from repro.kernels.scat import batched_scat_sessions

__all__ = [
    "ENGINES",
    "KernelRecordStore",
    "batch_read_all",
    "batched_dfsa_sessions",
    "batched_fcat_sessions",
    "RankSource",
    "batched_scat_sessions",
    "draw_slot_counts",
    "kernel_supported",
    "resample_duplicate_slots",
    "run_batch",
    "validate_engine",
]
