"""Engine selection and the batched Monte-Carlo entry point.

The experiment stack asks for an *engine* -- ``"scalar"`` (the per-slot
reference implementations, the default everywhere) or ``"kernel"`` (the
frame-at-once sessions in this package).  This module owns the mapping
from (protocol, channel) to a kernel and the one entry point the
runners call:

* :func:`kernel_supported` -- whether a batched kernel implements this
  exact configuration;
* :func:`batch_read_all` -- the lockstep kernel sessions for a
  supported configuration (``None`` otherwise), for callers that manage
  their own generators;
* :func:`run_batch` -- the executor-facing unit: one chunk of per-run
  child seeds in, one :class:`~repro.sim.result.ReadingResult` per child
  out.  Unsupported configurations fall back to
  :func:`repro.experiments.runner.run_single` per child, which is
  *bit-for-bit* the scalar chunk -- requesting ``engine="kernel"`` never
  changes what an unsupported cell computes.

The kernel path deliberately skips :class:`~repro.sim.population`
materialization: slot outcomes are independent of tag ID bit patterns
(see :mod:`repro.kernels.records`), so minting 10 000 CRC-checked EPC
IDs per run would be pure overhead.  This is part of kernel-v2 seed
semantics (``docs/performance.md``): the scalar path consumes its
generator on population + per-slot draws, the kernel path on
frame-at-once draws, and the two are statistically -- not bitwise --
equivalent (except DFSA, whose kernel is bitwise equal on draw-free
channels).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.baselines.dfsa import Dfsa
from repro.core.fcat import Fcat
from repro.core.scat import Scat
from repro.kernels.dfsa import batched_dfsa_sessions
from repro.kernels.fcat import _draw_free, batched_fcat_sessions
from repro.kernels.scat import batched_scat_sessions
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import ReadingResult

#: The engines the experiment stack accepts.
ENGINES = ("scalar", "kernel")


def validate_engine(engine: str) -> str:
    """Reject unknown engine names early, at the API boundary."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of "
                         f"{', '.join(ENGINES)}")
    return engine


def kernel_supported(protocol: TagReadingProtocol,
                     channel: ChannelModel = PERFECT_CHANNEL) -> bool:
    """Whether a batched kernel implements this exact configuration.

    FCAT: everything except ZigZag decoding (the kernel's exact replay
    body handles channel impairments).  SCAT: draw-free channels without
    the Kodialam pre-estimation step.  DFSA: draw-free channels.
    Everything else -- including every other baseline protocol -- runs
    scalar.
    """
    if isinstance(protocol, Fcat):
        return not protocol.config.zigzag
    if isinstance(protocol, Scat):
        return _draw_free(channel) and protocol.config.pre_estimate_cv is None
    if isinstance(protocol, Dfsa):
        return _draw_free(channel)
    return False


def batch_read_all(protocol: TagReadingProtocol, n_tags: int,
                   rngs: list[np.random.Generator],
                   channel: ChannelModel = PERFECT_CHANNEL,
                   timing: TimingModel = ICODE_TIMING
                   ) -> list[ReadingResult] | None:
    """Lockstep kernel sessions for a supported configuration, else None.

    One session per generator, results in input order.  The caller owns
    generator minting and per-result bookkeeping (completeness check,
    ``observe_session``); :func:`run_batch` wraps all of that for the
    executor.
    """
    if not kernel_supported(protocol, channel):
        return None
    if isinstance(protocol, Fcat):
        return batched_fcat_sessions(protocol, n_tags, rngs,
                                     channel=channel, timing=timing)
    if isinstance(protocol, Scat):
        return batched_scat_sessions(protocol, n_tags, rngs,
                                     channel=channel, timing=timing)
    assert isinstance(protocol, Dfsa)
    return batched_dfsa_sessions(protocol, n_tags, rngs,
                                 channel=channel, timing=timing)


# repro: kernel scalar=repro.sim.base:run_many test=tests/kernels/test_engine.py
def run_batch(protocol: TagReadingProtocol, n_tags: int,
              children: Sequence[np.random.SeedSequence],
              channel: ChannelModel = PERFECT_CHANNEL,
              timing: TimingModel = ICODE_TIMING) -> list[ReadingResult]:
    """Run one chunk of independent sessions, kernel-batched where possible.

    The kernel-engine counterpart of the executor's ``run_single`` loop:
    child seed ``i`` drives run ``i`` whoever computes it, results come
    back in child order, and every result passes the same completeness
    check and ``observe_session`` hook the scalar path applies.
    Unsupported (protocol, channel) configurations fall back to the
    scalar ``run_single`` per child -- bit-identical to ``engine="scalar"``.
    """
    from repro.experiments.runner import rng_from_seed, run_single
    results = batch_read_all(
        protocol, n_tags, [rng_from_seed(child) for child in children],
        channel=channel, timing=timing)
    if results is None:
        return [run_single(protocol, n_tags, child, channel=channel,
                           timing=timing) for child in children]
    for result in results:
        if not result.complete and channel is PERFECT_CHANNEL:
            raise RuntimeError(
                f"{protocol.name} read {result.n_read}/{result.n_tags} "
                "tags on a perfect channel")
        protocol.observe_session(result)
    return results
