"""Count-only DFSA kernel.

The scalar :class:`repro.baselines.dfsa.Dfsa` already simulates each
frame with one ``rng.integers`` call and a ``bincount`` -- its remaining
per-slot cost is the Python loop over singleton members that applies the
channel's per-tag error draws.  On a *draw-free* channel that loop is
pure bookkeeping: every singleton decodes, every ack lands, no capture
happens, so tag identities never matter and the whole session reduces to
its active **count**:

* ``choices ~ Uniform(frame_size)^n_active`` -- the very same RNG call
  the scalar engine makes;
* ``occupancy = bincount(choices)`` classifies all slots at once;
* ``n_active -= #singleton slots`` -- which tags left is irrelevant,
  the survivors' next-frame choices are i.i.d. uniform either way.

Because the per-frame generator consumption is *identical* to the
scalar engine's (the channel helpers short-circuit without drawing when
their probabilities are zero), the kernel is **bit-for-bit identical**
to ``Dfsa.read_all`` given the same generator state -- stronger than
the kernel-v2 statistical contract the FCAT/SCAT kernels carry, and
pinned as such by ``tests/kernels/test_dfsa_kernel.py``.

Channels with any non-zero error knob need per-tag draws in scalar
order; the engine routes those configs to the scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.baselines.dfsa import CHA_KIM_COEFFICIENT, Dfsa
from repro.kernels.fcat import _draw_free
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import ReadingResult


class _DfsaKernelSession:
    """One DFSA session advanced frame by frame over an active count."""

    def __init__(self, name: str, protocol: Dfsa, n_tags: int,
                 rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> None:
        if not _draw_free(channel):
            raise ValueError("the DFSA kernel requires a draw-free channel; "
                             "use the scalar engine")
        self.rng = rng
        self.result = ReadingResult(protocol=name, n_tags=n_tags,
                                    n_read=0, timing=timing)
        self.n_active = n_tags
        if protocol.initial_frame_size is not None:
            self.frame_size = protocol.initial_frame_size
        else:
            self.frame_size = max(n_tags, 1)
        self.frames_left = protocol.max_frames

    def step(self) -> bool:
        """Advance one frame; True when the session terminated."""
        if self.frames_left <= 0:
            raise RuntimeError("DFSA exceeded max_frames without finishing")
        self.frames_left -= 1
        result = self.result
        result.frames += 1
        result.advertisements += 1  # frame-size announcement
        frame_size = max(int(self.frame_size), 1)
        choices = self.rng.integers(0, frame_size, size=self.n_active)
        result.tag_transmissions += self.n_active
        occupancy = np.bincount(choices, minlength=frame_size)
        empties = int((occupancy == 0).sum())
        singles = int((occupancy == 1).sum())
        collisions = frame_size - empties - singles
        result.empty_slots += empties
        result.singleton_slots += singles
        result.collision_slots += collisions
        # Draw-free channel: every singleton decodes and is acked, and a
        # tag reads at most once, so the reader's dedup set is vacuous.
        result.n_read += singles
        self.n_active -= singles
        if empties == frame_size:
            return True  # a fully silent frame: nobody transmits anymore
        if collisions == 0:
            # Collision-free but not silent: one-slot confirmation frame
            # (scalar mirror; see ``Dfsa.read_all``).
            self.frame_size = 1
        elif empties == 0 and singles == 0:
            self.frame_size = frame_size * 2  # blind start: double up
        else:
            self.frame_size = max(
                int(round(CHA_KIM_COEFFICIENT * collisions)), 1)
        return False


# repro: kernel scalar=repro.baselines.dfsa:Dfsa.read_all test=tests/kernels/test_dfsa_kernel.py
def batched_dfsa_sessions(protocol: Dfsa, n_tags: int,
                          rngs: list[np.random.Generator],
                          channel: ChannelModel = PERFECT_CHANNEL,
                          timing: TimingModel = ICODE_TIMING
                          ) -> list[ReadingResult]:
    """Advance a batch of independent DFSA sessions in lockstep.

    Same contract as :func:`repro.kernels.fcat.batched_fcat_sessions`:
    one session per generator, results in input order, sessions drop out
    of the sweep as they terminate.
    """
    sessions = [_DfsaKernelSession(protocol.name, protocol, n_tags, rng,
                                   channel=channel, timing=timing)
                for rng in rngs]
    alive = list(range(len(sessions)))
    # Lockstep driver: frames within a session are serially dependent
    # (the next frame size is a function of this frame's occupancy).
    # repro: allow-vectorization-antipattern -- lockstep session driver
    while alive:
        alive = [i for i in alive if not sessions[i].step()]
    return [session.result for session in sessions]
