"""Frame-at-once FCAT kernel.

One :class:`_FcatKernelSession` replays the exact FCAT Markov process of
:class:`repro.core.fcat._FcatSession`, but instead of flipping one
``Binomial(n, p)`` coin per slot it pre-draws the whole frame's
transmission field in two RNG calls
(:func:`repro.kernels.frame.draw_slot_counts`: per-slot binomial counts;
:class:`repro.kernels.frame.RankSource`: one uniform tag rank per
transmission, sliced from an amortized pre-drawn uniform block) and
then walks the tiny count vector, doing O(1) work per
silent slot and O(k) per eventful one.  Frames that provably cannot
learn a tag (no singleton slot on a draw-free channel) skip the rank
draw for their unresolvable ``k > lam`` slots entirely -- their
transmitter identities are unobservable, so under kernel-v2 semantics
the generator is simply not consumed for them.
Per-frame cost drops from ``O(frame_size)`` RNG calls with per-slot
array allocation to two bulk draws plus ``O(transmissions)`` bookkeeping.

The replay is exact: slots are processed in order and a removed tag
(acked singleton, cascade resolution) has its pre-drawn transmissions in
later slots cancelled -- distributionally identical to the scalar engine
never drawing them, every Bernoulli cell being independent.  Two replay
bodies implement the same process:

* ``_replay_exact`` -- handles every configuration (channel impairments,
  bootstrap-abort, observability) with the scalar engine's slot logic;
* ``_replay_lean`` -- the measured hot path for the perfect channel with
  observability disabled, where three invariants license shortcuts: no
  channel draw ever happens, an identified tag is always acked (so a
  transmitting tag is never already learned and records never resolve
  eagerly at creation), and mid-frame cancellations only arise from
  learning a tag with a pre-drawn transmission later in the same frame
  (tracked with a per-frame last-event map built only when some rank
  actually repeats, instead of filtering every slot).

Both bodies consume the generator identically (only the frame draw uses
it on a perfect channel), so they are bit-for-bit interchangeable where
the lean preconditions hold -- pinned by ``tests/kernels``.

Seed semantics are **kernel-v2** (``docs/performance.md``): each session
owns an independent per-run generator minted from the same spawned child
seed the scalar path uses, but consumes it in frame-at-once order, so
kernel results differ bit-wise from scalar results while following the
identical process law.  Equivalence is pinned by the paired statistical
tests in ``tests/kernels/``.

Known coarsening vs the scalar engine: the ``max_slots`` runaway guard is
checked at frame granularity (a stuck session raises at the first frame
*starting* past the limit, up to ``frame_size - 1`` slots later than the
scalar per-slot check), and per-slot ``SessionTrace`` logging is not
offered -- trace requests route to the scalar engine.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.estimator import EmbeddedEstimator
from repro.core.fcat import Fcat
from repro.kernels.frame import (RankSource, draw_slot_counts,
                                 resample_duplicate_slots)
from repro.kernels.records import KernelRecordStore
from repro.obs import scope
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import ReadingResult


def _draw_free(channel: ChannelModel) -> bool:
    """True when the channel never consumes the generator (all probs 0)."""
    return (channel.singleton_corrupt_prob == 0.0
            and channel.ack_loss_prob == 0.0
            and channel.collision_unusable_prob == 0.0
            and channel.capture_prob == 0.0)


class _FcatKernelSession:
    """One FCAT session advanced frame by frame over dense tag indices."""

    def __init__(self, name: str, protocol: Fcat, n_tags: int,
                 rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> None:
        config = protocol.config
        if config.zigzag:
            raise ValueError("the FCAT kernel does not implement ZigZag; "
                             "use the scalar engine")
        self.config = config
        self.rng = rng
        self.ranks = RankSource(rng)
        self.channel = channel
        self.omega = config.effective_omega
        # Dense roster: `items` holds the active tag indices, `pos[tag]`
        # its position in `items` (-1 once removed).  Swap-remove keeps
        # both O(1); removals are deferred to frame end so the frame's
        # rank -> tag map stays stable during the replay.
        self.items = list(range(n_tags))
        self.pos = list(range(n_tags))
        self.store = KernelRecordStore(config.lam, n_tags)
        self.estimator = EmbeddedEstimator(
            omega=self.omega, frame_size=config.frame_size,
            initial_guess=config.initial_estimate,
            method=config.estimator_method,
            mode=config.estimator_mode,
            source=config.estimator_source,
            ewma_weight=config.estimator_ewma_weight)
        self.result = ReadingResult(protocol=name, n_tags=n_tags,
                                    n_read=0, timing=timing)
        self.slot_index = 0
        self.max_slots = int(config.max_slots_factor * max(n_tags, 1) + 1000)
        # Hot-loop invariants, hoisted once: `_run_frame` runs hundreds of
        # times per session and each dotted config read costs two lookups.
        self.frame_size = config.frame_size
        self.abort_after = config.bootstrap_abort_after
        self.max_p = config.max_report_probability
        self.obs = scope.active()
        self.name = name
        # `draw_free` licenses the uninformative-frame fast path (no
        # channel draw can ever flip a slot's class); `lean` additionally
        # requires observability off for the shortcut replay body.
        self.draw_free = _draw_free(channel)
        self.lean = self.obs is None and self.draw_free

    def step(self) -> bool:
        """Advance one frame (plus termination probe); True when done."""
        if self._run_frame() == self.frame_size:
            return self._termination_probe()
        return False

    # -- frame mechanics ---------------------------------------------------

    def _run_frame(self) -> int:
        """Replay one pre-drawn frame; returns its empty-slot count."""
        result = self.result
        store = self.store
        estimator = self.estimator
        frame_size = self.frame_size
        identified_at_start = store._learned_count
        remaining = estimator._remaining  # inlined estimator.remaining()
        if remaining < 1.0:
            remaining = 1.0
        p = self.omega / remaining
        if p > self.max_p:
            p = self.max_p
        result.advertisements += 1  # pre-frame advertisement
        result.frames += 1
        if self.slot_index >= self.max_slots:
            raise RuntimeError(
                f"FCAT session exceeded {self.max_slots} slots -- "
                "estimator or termination logic is stuck")
        base = self.slot_index
        abort_after = self.abort_after
        bootstrapping = abort_after is not None and not estimator.samples
        n_active = len(self.items)
        counts, total = draw_slot_counts(self.rng, n_active, frame_size, p)
        if total == 0:
            # Silent frame: account every slot in one step.
            self.slot_index = base + frame_size
            result.empty_slots += frame_size
            estimator.update(0, p, identified_at_start,
                             identified_at_start, n_empty=frame_size)
            remaining = estimator._remaining
            result.estimate_trace.append(
                remaining if remaining > 1.0 else 1.0)
            if self.obs is not None:
                self._observe_frame(p, frame_size, frame_size, 0)
            return frame_size
        lam = store.lam
        if self.draw_free and not bootstrapping and 1 not in counts:
            # No singleton slot on a draw-free channel: nothing can be
            # learned this frame, so no cancellation can arise and every
            # k > lam slot is an unresolvable collision whose transmitter
            # identities are unobservable -- their draw is skipped
            # outright (kernel-v2 consumption).  Covers the bootstrap
            # ramp, the estimate-transition frames and the saturated
            # endgame, where totals are largest.
            record_total = sum(k for k in counts if k <= lam)
            n_empty = counts.count(0)
            if record_total:
                # Only the 2 <= k <= lam slots are observable (they store
                # records): draw and repair just those segments.  Their
                # conditional law -- independent uniform distinct
                # k-tuples per slot -- is the scalar one; a tag appearing
                # in two different slots is legitimate and kept.
                ranks = self.ranks.draw(n_active, record_total)
                record_counts = [k for k in counts if 2 <= k <= lam]
                resample_duplicate_slots(self.rng, n_active,
                                         record_counts, ranks)
                self._store_frame_records(counts, ranks, lam)
            self.slot_index = base + frame_size
            result.tag_transmissions += total
            result.empty_slots += n_empty
            result.collision_slots += frame_size - n_empty
            estimator.update(frame_size - n_empty, p,
                             identified_at_start, identified_at_start,
                             n_empty=n_empty)
            remaining = estimator._remaining
            result.estimate_trace.append(
                remaining if remaining > 1.0 else 1.0)
            if self.obs is not None:
                self._observe_frame(p, frame_size, n_empty,
                                    frame_size - n_empty)
            return n_empty
        if p >= 1.0:
            # Deterministic saturated frame: every active tag, every slot.
            ranks = list(range(n_active)) * frame_size
        else:
            ranks = self.ranks.draw(n_active, total)
        # Fewer distinct ranks than transmissions means some rank
        # repeats, possibly inside a single slot, which the scalar slot
        # law forbids -- repair exactly those segments.  Frame-wide
        # repeats across slots are legitimate, but only then can a tag
        # learned mid-frame transmit again later, so the cancellation
        # machinery (and its last-event map) is needed at all only in
        # the has_dups case.
        frame_ranks = set(ranks)
        has_dups = len(frame_ranks) < total
        if has_dups:
            if resample_duplicate_slots(self.rng, n_active, counts, ranks):
                frame_ranks = set(ranks)
                has_dups = len(frame_ranks) < total
        # `removed` preserves insertion order in both bodies (list /
        # dict): `_apply_removals` swap-removes, so the roster permutation
        # -- and with it the rank -> tag map of every later frame --
        # depends on removal order; a hash-ordered set would break the
        # lean/exact bit-identity.
        if self.lean and not bootstrapping:
            removed: list[int] | dict[int, None] = []
            last_pos = dict(zip(ranks, range(total))) if has_dups else None
            stats = self._replay_lean(counts, ranks, frame_ranks,
                                      last_pos, removed)
        else:
            removed = {}
            stats = self._replay_exact(base, counts, ranks, removed,
                                       bootstrapping, abort_after)
        n_empty, n_collision, slots_run, aborted = stats
        self.slot_index = base + slots_run
        if removed:
            self._apply_removals(removed)
        if aborted:
            # Still blind and wall-to-wall collisions: the frame was cut
            # short; double the estimate and re-advertise.
            estimator.update(frame_size, p, identified_at_start,
                             store._learned_count, n_empty=0)
            self._observe_frame(p, slots_run, n_empty, n_collision)
            return n_empty
        estimator.update(n_collision, p, identified_at_start,
                         store._learned_count, n_empty=n_empty)
        remaining = estimator._remaining
        result.estimate_trace.append(remaining if remaining > 1.0 else 1.0)
        if self.obs is not None:
            self._observe_frame(p, slots_run, n_empty, n_collision)
        return n_empty

    def _store_frame_records(self, counts: list[int], ranks: list[int],
                             lam: int) -> None:
        """Store the ``2 <= k <= lam`` slots of a no-singleton frame.

        ``ranks`` holds only those slots' segments (the unresolvable
        ``k > lam`` slots were never drawn).  No tag can be learned in
        such a frame, so every participant is unknown and the record's
        counter is simply ``k``; every participant registers.
        """
        by_tag = self.store._by_tag
        items = self.items
        offset = 0
        # repro: allow-vectorization-antipattern -- O(record slots) walk over a bulk-pre-drawn frame
        for k in counts:
            if k < 2 or k > lam:
                continue
            end = offset + k
            rec = [k] + [items[r] for r in ranks[offset:end]]
            offset = end
            # repro: allow-vectorization-antipattern -- O(k) registration, k <= lam <= 4
            for j in range(1, k + 1):
                tag = rec[j]
                entries = by_tag[tag]
                if entries is None:
                    by_tag[tag] = [rec]
                else:
                    entries.append(rec)

    def _replay_lean(self, counts: list[int], ranks: list[int],
                     frame_ranks: set[int], last_pos: dict[int, int] | None,
                     removed: list[int]) -> tuple[int, int, int, bool]:
        """Hot replay body: perfect channel, observability off, no abort.

        ``last_pos`` (rank -> last event position) is built only for
        frames where some rank transmits twice: there a tag learned
        mid-frame has its later pre-drawn transmissions cancelled, which
        can downgrade later slots (collision -> singleton -> empty) or
        shrink a ``k > lam`` slot into a usable record.  In the common
        no-duplicate frame (``last_pos is None``) a singleton's tag can
        never transmit again later, so only cascade-*resolved* tags --
        whose one pre-drawn event may still lie ahead -- need cancelling,
        and membership in ``frame_ranks`` (the dup-detection set built
        anyway) suffices: if the one occurrence was already behind, the
        cancel entry simply never matches, and the false positive is
        harmless precisely because no rank repeats.
        """
        store = self.store
        lam = store.lam
        by_tag = store._by_tag
        learned = store._learned
        items = self.items
        pos = self.pos
        append_removed = removed.append
        cancel: set[int] | None = None
        n_singleton = n_collision = n_resolved = 0
        cancelled_empty = collision_transmissions = 0
        offset = 0
        # O(1)-per-silent-slot walk over the pre-drawn frame; the bulk
        # randomness was drawn above in two vectorized calls.
        # repro: allow-vectorization-antipattern -- O(eventful) replay walk over a bulk-pre-drawn frame
        for k in counts:
            if k == 0:
                continue
            start = offset
            offset = end = start + k
            if k == 1:
                rank = ranks[start]
                if cancel is not None and rank in cancel:
                    cancelled_empty += 1
                    continue
            elif cancel is None:
                seg = None
            else:
                seg = [r for r in ranks[start:end] if r not in cancel]
                k = len(seg)
                if k == 0:
                    cancelled_empty += 1
                    continue
                if k == 1:
                    rank = seg[0]
                    seg = None
            if k == 1:
                # Singleton: read, learn, ack (always received on the
                # perfect channel), then run the resolution cascade --
                # `KernelRecordStore._cascade_into` inlined below so
                # resolutions feed the removal list and the cancel set
                # without any intermediate bookkeeping (see records.py
                # for the unknown-counter visit logic this mirrors).
                tag = items[rank]
                n_singleton += 1
                learned[tag] = 1
                append_removed(tag)
                if last_pos is not None and last_pos[rank] >= end:
                    if cancel is None:
                        cancel = set()
                    cancel.add(rank)
                entries = by_tag[tag]
                if entries is None:
                    continue
                by_tag[tag] = None
                stack = None
                # The cascade is a worklist fixpoint over ragged pending
                # lists: inherently serial, O(total record visits).
                # repro: allow-vectorization-antipattern -- worklist fixpoint
                while True:
                    # repro: allow-vectorization-antipattern -- worklist fixpoint
                    for rec in entries:
                        c = rec[0]
                        if c < 2:
                            continue  # spent (stored counts never hit 1)
                        rec[0] = c - 1
                        if c > 2:
                            continue  # still > 1 unknown participant
                        # The count just hit one: resolve the survivor --
                        # the lone unlearned stored participant (none on
                        # a duplicate residual).  Unrolled over the at
                        # most four stored participants; the k == 2 case
                        # (the bulk) exits after two flag reads.
                        other = rec[1]
                        if learned[other]:
                            other = rec[2]
                            if learned[other]:
                                other = rec[3] if len(rec) > 3 else -1
                                if other >= 0 and learned[other]:
                                    other = rec[4] if len(rec) > 4 else -1
                                    if other >= 0 and learned[other]:
                                        other = -1
                        rec[0] = 0
                        if other < 0:
                            continue  # duplicate residual
                        learned[other] = 1
                        n_resolved += 1
                        append_removed(other)
                        resolved_rank = pos[other]
                        if last_pos is None:
                            if resolved_rank in frame_ranks:
                                if cancel is None:
                                    cancel = set()
                                cancel.add(resolved_rank)
                        else:
                            position = last_pos.get(resolved_rank)
                            if position is not None and position >= end:
                                if cancel is None:
                                    cancel = set()
                                cancel.add(resolved_rank)
                        pending = by_tag[other]
                        if pending is not None:
                            by_tag[other] = None
                            if stack is None:
                                stack = []
                            stack.append(pending)
                    if not stack:
                        break
                    entries = stack.pop()
                continue
            collision_transmissions += k
            n_collision += 1
            if k > lam:
                continue
            # Inlined `store.add_record`, minus the learned scan: on a
            # perfect channel a transmitting tag is never already
            # learned, so the record starts fully unknown -- its counter
            # is simply k.  The common small sizes are unrolled (no
            # slice, no listcomp); every participant registers, mirroring
            # records.py.
            if seg is None:
                if k == 2:
                    rec = [2, items[ranks[start]], items[ranks[start + 1]]]
                elif k == 3:
                    rec = [3, items[ranks[start]], items[ranks[start + 1]],
                           items[ranks[start + 2]]]
                elif k == 4:
                    rec = [4, items[ranks[start]], items[ranks[start + 1]],
                           items[ranks[start + 2]], items[ranks[start + 3]]]
                else:
                    rec = [k] + [items[r] for r in ranks[start:end]]
            else:
                rec = [k] + [items[r] for r in seg]
            t0 = rec[1]
            entries = by_tag[t0]
            if entries is None:
                by_tag[t0] = [rec]
            else:
                entries.append(rec)
            t1 = rec[2]
            entries = by_tag[t1]
            if entries is None:
                by_tag[t1] = [rec]
            else:
                entries.append(rec)
            if k > 2:
                t2 = rec[3]
                entries = by_tag[t2]
                if entries is None:
                    by_tag[t2] = [rec]
                else:
                    entries.append(rec)
                if k > 3:
                    t3 = rec[4]
                    entries = by_tag[t3]
                    if entries is None:
                        by_tag[t3] = [rec]
                    else:
                        entries.append(rec)
        store._learned_count += n_resolved
        return self._finish_lean(n_singleton, n_collision, n_resolved,
                                 collision_transmissions)

    def _finish_lean(self, n_singleton: int, n_collision: int,
                     n_resolved: int, collision_transmissions: int,
                     ) -> tuple[int, int, int, bool]:
        """Fold a lean walk's flat counters into store and result.

        Every singleton slot learns exactly one tag on the perfect
        channel, so the learned count advances by ``n_singleton``
        (resolutions were already counted by the walk itself).  Every
        eventful slot lands in exactly one of the singleton / collision /
        cancelled-to-empty buckets, so the result's empty count -- drawn
        zeros plus cancelled-to-empty -- is just the frame size minus the
        first two, with no second pass over ``counts``.
        """
        self.store._learned_count += n_singleton
        result = self.result
        n_empty = self.frame_size - n_singleton - n_collision
        result.tag_transmissions += collision_transmissions + n_singleton
        result.empty_slots += n_empty
        result.singleton_slots += n_singleton
        result.collision_slots += n_collision
        result.n_read += n_singleton + n_resolved
        result.resolved_from_collision += n_resolved
        result.index_announcements += n_resolved
        return n_empty, n_collision, self.frame_size, False

    def _replay_exact(self, base: int, counts: list[int], ranks: list[int],
                      removed: dict[int, None], bootstrapping: bool,
                      abort_after: int | None,
                      ) -> tuple[int, int, int, bool]:
        """Reference replay body: any channel, telemetry, bootstrap-abort."""
        result = self.result
        items = self.items
        n_empty = n_collision = slots_run = 0
        offset = 0
        all_collisions = True
        # repro: allow-vectorization-antipattern -- slot-order replay of a bulk-pre-drawn frame (channel draws force sequencing)
        for slot, k in enumerate(counts):
            if k == 0:
                n_empty += 1
                result.empty_slots += 1
                slots_run += 1
                all_collisions = False
                continue
            start = offset
            offset = start + k
            tags = [items[rank] for rank in ranks[start:offset]]
            if removed:
                tags = [tag for tag in tags if tag not in removed]
            outcome = self._observe_slot(base + slot, tags, removed)
            slots_run += 1
            if outcome == "empty":
                n_empty += 1
                all_collisions = False
            elif outcome == "collision":
                n_collision += 1
            else:
                all_collisions = False
            if bootstrapping and all_collisions \
                    and n_collision >= abort_after:
                return n_empty, n_collision, slots_run, True
        return n_empty, n_collision, slots_run, False

    def _apply_removals(self, removed: list[int] | dict[int, None]) -> None:
        items = self.items
        pos = self.pos
        # Swap-remove bookkeeping over a Python roster: O(1) per removal,
        # nothing array-shaped to batch.
        # repro: allow-vectorization-antipattern -- O(1) swap-remove bookkeeping
        for tag in removed:
            position = pos[tag]
            if position < 0:
                continue  # ack retry for an already-removed tag
            last = items[-1]
            items[position] = last
            pos[last] = position
            items.pop()
            pos[tag] = -1

    def _observe_frame(self, p: float, slots_run: int, n_empty: int,
                       n_collision: int) -> None:
        obs = self.obs
        if obs is None:
            return
        frame_index = self.result.frames - 1
        obs.emit("frame", protocol=self.name, frame_index=frame_index,
                 report_probability=p, empty=n_empty,
                 singleton=slots_run - n_empty - n_collision,
                 collision=n_collision)
        estimate = self.estimator.remaining()
        actual = len(self.items)
        obs.emit("estimator_update", protocol=self.name,
                 frame_index=frame_index, estimate=estimate,
                 actual_remaining=actual, error=estimate - actual)
        obs.observe_value("estimator.rel_error",
                          abs(estimate - actual) / max(actual, 1))

    # -- slot mechanics (exact path + termination probe) -------------------

    def _observe_slot(self, slot: int, tags: list[int],
                      removed: dict[int, None]) -> str:
        """Classify one eventful slot; mirrors scalar ``_observe``."""
        result = self.result
        channel = self.channel
        k = len(tags)
        result.tag_transmissions += k
        if k == 0:
            # Every pre-drawn transmitter was removed earlier in the frame.
            result.empty_slots += 1
            return "empty"
        if k == 1 and channel.singleton_ok(self.rng):
            self._handle_singleton(tags[0], slot, removed)
            return "singleton"
        if k >= 2 and channel.captured(self.rng):
            captured = tags[int(self.rng.integers(0, k))]
            rest = [tag for tag in tags if tag != captured]
            self._handle_singleton(captured, slot, removed)
            if len(rest) >= 2:
                usable = channel.record_usable(self.rng)
                resolved = self.store.add_record(slot, rest, usable)
                self._apply_resolutions(resolved, slot, removed)
            elif channel.record_usable(self.rng) \
                    and not self.store.is_learned(rest[0]):
                cascade = self.store.learn(rest[0])
                self._apply_resolutions([rest[0]] + cascade, slot, removed)
            return "singleton"
        result.collision_slots += 1
        if k >= 2:
            usable = channel.record_usable(self.rng)
            resolved = self.store.add_record(slot, tags, usable)
            self._apply_resolutions(resolved, slot, removed)
        return "collision"

    def _handle_singleton(self, tag: int, slot: int,
                          removed: dict[int, None]) -> None:
        self.result.singleton_slots += 1
        if not self.store.is_learned(tag):
            self.result.n_read += 1
        resolved = self.store.learn(tag)
        self._ack(tag, removed)
        self._apply_resolutions(resolved, slot, removed)

    def _apply_resolutions(self, resolved: list[int], slot: int,
                           removed: dict[int, None]) -> None:
        for tag in resolved:
            self.result.n_read += 1
            self.result.resolved_from_collision += 1
            self.result.index_announcements += 1
            self._ack(tag, removed)
        if self.obs is not None and resolved:
            self.obs.emit("anc_resolution", protocol=self.name,
                          slot_index=slot, resolved=len(resolved))

    def _ack(self, tag: int, removed: dict[int, None]) -> None:
        if self.channel.ack_received(self.rng):
            removed[tag] = None

    # -- termination -------------------------------------------------------

    def _termination_probe(self) -> bool:
        """One ``p = 1`` slot after an all-empty frame (section IV-A)."""
        self.result.advertisements += 1  # advertise p = 1
        if self.slot_index >= self.max_slots:
            raise RuntimeError(
                f"FCAT session exceeded {self.max_slots} slots -- "
                "estimator or termination logic is stuck")
        slot = self.slot_index
        self.slot_index += 1
        removed: dict[int, None] = {}
        outcome = self._observe_slot(slot, list(self.items), removed)
        if removed:
            self._apply_removals(removed)
        if self.obs is not None:
            self.obs.emit("termination_probe", protocol=self.name,
                          slot_index=slot, outcome=outcome)
        if outcome == "empty":
            return True
        if outcome == "collision":
            self.estimator.force_at_least(2.0)
        return False


# repro: kernel scalar=repro.core.fcat:_FcatSession.run test=tests/kernels/test_fcat_kernel.py
def batched_fcat_sessions(protocol: Fcat, n_tags: int,
                          rngs: list[np.random.Generator],
                          channel: ChannelModel = PERFECT_CHANNEL,
                          timing: TimingModel = ICODE_TIMING,
                          ) -> list[ReadingResult]:
    """Run ``len(rngs)`` independent FCAT sessions in frame lockstep.

    Each session owns its generator, so results are independent of batch
    composition and chunking -- the basis of the kernel-v2 bit-identity
    guarantee (``docs/performance.md``).  Sessions drop out of the batch
    as they terminate.
    """
    sessions = [_FcatKernelSession(protocol.name, protocol, n_tags, rng,
                                   channel, timing) for rng in rngs]
    alive = sessions
    # Lockstep frame loop: each round advances every live session by one
    # frame; per-frame work is the vectorized replay above.
    # repro: allow-vectorization-antipattern -- lockstep driver over per-session array kernels
    while alive:
        alive = [session for session in alive if not session.step()]
    return [session.result for session in sessions]
