"""Block-at-once SCAT kernel.

SCAT (:class:`repro.core.scat.Scat`) is slot-serial by protocol design:
every slot carries its own advertisement ``<i, p_i>`` and ``p_i`` is
recomputed from the reader's current belief.  But on a draw-free channel
the belief only *changes* at well-defined events -- a singleton slot
(learn + ack + cascade), an empty streak reaching the probe threshold,
or a collision streak doubling the correction term -- so between events
the slots are i.i.d. ``Binomial(n_active, p)`` and can be pre-drawn as a
block:

1. one vectorized binomial call draws a block of slot counts;
2. a pure scan (no RNG, no mutation) finds the prefix up to and
   including the first belief-changing slot and totals the participant
   ranks that prefix needs -- one rank for the terminating singleton,
   ``k`` for each resolvable ``2 <= k <= lam`` collision, none for
   ``k > lam`` collisions whose transmitter identities are unobservable
   (under kernel-v2 semantics the generator is simply not consumed for
   them, cf. :mod:`repro.kernels.fcat`);
3. one bulk call draws those ranks, duplicates within a collision
   segment are repaired by
   :func:`repro.kernels.frame.resample_duplicate_slots` (exact
   conditional law), and the prefix is replayed with the scalar
   engine's per-slot accounting.

Counts drawn past the stop slot are discarded -- their law depended on
the now-stale ``p`` -- which is free under kernel-v2 seed semantics
(``docs/performance.md``): consumption patterns belong to the engine,
only the process law is contractual.

Two scalar invariants license the lean replay on a draw-free channel:
an identified tag is always acked and leaves the active set, so a
transmitter is never already learned (records never resolve at
creation, ``n_read`` needs no duplicate check), and the correction
term decays on every empty slot, so while it is non-zero each empty
changes ``p`` and the scan stops there too.

The ``p = 1`` probe slot consumes no randomness at all (every active
tag transmits, exactly the scalar's ``list(active)``) and is handled
outside the block path.

Known coarsening vs the scalar engine: the ``max_slots`` runaway guard
is checked at block granularity, up to one block late.  The Kodialam
pre-estimation step (``pre_estimate_cv``) is not implemented; the
engine routes such configs to the scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.scat import Scat
from repro.kernels.fcat import _draw_free
from repro.kernels.frame import resample_duplicate_slots
from repro.kernels.records import KernelRecordStore
from repro.obs import scope
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import ReadingResult

#: Slots pre-drawn per binomial call.  At the nominal load roughly every
#: third slot is a singleton, so ~3 of these are consumed per block; the
#: rest are discarded draws, far cheaper than per-slot binomial calls.
_BLOCK = 8

#: Scalar mirror constants (``repro.core.scat.Scat.read_all``).
_COLLISION_STREAK_LIMIT = 15
_CORRECTION_DECAY = 0.9


class _ScatKernelSession:
    """One SCAT session advanced block by block over dense tag indices."""

    def __init__(self, name: str, protocol: Scat, n_tags: int,
                 rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> None:
        config = protocol.config
        if not _draw_free(channel):
            raise ValueError("the SCAT kernel requires a draw-free channel; "
                             "use the scalar engine")
        if config.pre_estimate_cv is not None:
            raise ValueError("the SCAT kernel does not implement the "
                             "Kodialam pre-estimation step; use the scalar "
                             "engine")
        self.config = config
        self.rng = rng
        self.omega = config.effective_omega
        self.items = list(range(n_tags))
        self.pos = list(range(n_tags))
        self.store = KernelRecordStore(config.lam, n_tags)
        self.result = ReadingResult(protocol=name, n_tags=n_tags,
                                    n_read=0, timing=timing)
        self.total = float(n_tags)  # section IV-C oracle belief
        self.slot_index = 0
        self.max_slots = int(config.max_slots_factor * max(n_tags, 1) + 1000)
        self.empty_streak = 0
        self.collision_streak = 0
        self.correction = 0.0
        self.done = False
        self.obs = scope.active()
        self.name = name

    def step(self) -> bool:
        """Advance one probe slot or one pre-drawn block; True when done."""
        if self.slot_index >= self.max_slots:
            raise RuntimeError(
                f"SCAT session exceeded {self.max_slots} slots -- "
                "termination logic is stuck")
        if self.empty_streak >= self.config.empty_streak_for_probe:
            self._probe_slot()
        else:
            self._run_block()
        return self.done

    # -- the p = 1 probe -------------------------------------------------

    def _probe_slot(self) -> None:
        """Section IV-A probe: p = 1, every active tag transmits, no RNG."""
        self.empty_streak = 0
        result = self.result
        result.advertisements += 1
        slot = self.slot_index
        self.slot_index += 1
        k = len(self.items)
        result.tag_transmissions += k
        if k == 0:
            result.empty_slots += 1
            self.collision_streak = 0
            self.correction *= _CORRECTION_DECAY
            self.done = True  # silence at p = 1: every ID is collected
        elif k == 1:
            self._singleton(self.items[0], slot)
        else:
            result.collision_slots += 1
            self.collision_streak += 1  # the >= 15 doubling skips probes
            if k <= self.store.lam:
                self.store.add_record(slot, list(self.items))

    # -- the block path --------------------------------------------------

    def _run_block(self) -> None:
        n_active = len(self.items)
        remaining = max(self.total - self.store.learned_count, 1.0) \
            + self.correction
        p = min(self.omega / remaining, self.config.max_report_probability)
        counts = self.rng.binomial(n_active, p, size=_BLOCK).tolist() \
            if n_active and p > 0.0 else [0] * _BLOCK
        stop, ranks, seg_counts = self._scan_prefix(counts)
        self._replay_prefix(counts, stop, ranks, seg_counts)

    def _scan_prefix(self, counts: list[int]) -> tuple[int, list[int],
                                                       list[int]]:
        """Find the belief-changing prefix and draw its participant ranks.

        Pure scan on shadow counters, then one bulk rank draw with the
        per-slot segment layout (``seg_counts``) duplicate-repaired so
        every collision record gets distinct participants.
        """
        lam = self.store.lam
        empty_streak = self.empty_streak
        collision_streak = self.collision_streak
        probe_at = self.config.empty_streak_for_probe
        correcting = self.correction != 0.0
        need = 0
        seg_counts: list[int] = []
        stop = len(counts) - 1
        # Pure shadow-counter scan over <= _BLOCK small ints; the streak
        # state is serially carried by protocol design.
        # repro: allow-vectorization-antipattern -- shadow streak scan, <= _BLOCK ints
        for i, k in enumerate(counts):
            if k == 1:
                need += 1
                seg_counts.append(1)
                stop = i  # learning slot: p changes
                break
            if k == 0:
                seg_counts.append(0)
                collision_streak = 0
                empty_streak += 1
                if empty_streak >= probe_at or correcting:
                    stop = i  # next slot probes / correction decayed
                    break
            else:
                drawn = k if k <= lam else 0
                need += drawn
                seg_counts.append(drawn)
                collision_streak += 1
                if collision_streak >= _COLLISION_STREAK_LIMIT:
                    stop = i  # correction doubles: p changes
                    break
        n_active = len(self.items)
        if need:
            ranks = self.rng.integers(0, n_active, size=need).tolist()
            resample_duplicate_slots(self.rng, n_active, seg_counts, ranks)
        else:
            ranks = []
        return stop, ranks, seg_counts

    def _replay_prefix(self, counts: list[int], stop: int, ranks: list[int],
                       seg_counts: list[int]) -> None:
        """Scalar per-slot accounting over the pre-drawn prefix."""
        result = self.result
        store = self.store
        lam = store.lam
        items = self.items
        offset = 0
        # Serial by protocol design (each slot's outcome feeds the next
        # advertisement); the kernel batches the *draws*, not the walk.
        # repro: allow-vectorization-antipattern -- serial belief replay
        for i in range(stop + 1):
            k = counts[i]
            result.advertisements += 1
            slot = self.slot_index
            self.slot_index += 1
            result.tag_transmissions += k
            if k == 0:
                result.empty_slots += 1
                self.collision_streak = 0
                self.correction *= _CORRECTION_DECAY
                self.empty_streak += 1
                continue
            self.empty_streak = 0
            if k == 1:
                self._singleton(items[ranks[offset]], slot)
                offset += 1
                continue
            result.collision_slots += 1
            self.collision_streak += 1
            if self.collision_streak >= _COLLISION_STREAK_LIMIT:
                # Fifteen straight collisions: the belief must be low
                # (scalar mirror; only reachable once a correction or a
                # freak streak pushes p far off the optimum).
                believed = max(self.total - store.learned_count, 1.0) \
                    + self.correction
                self.correction += max(believed, 10.0)
                self.collision_streak = 0
            if k <= lam:
                seg = ranks[offset:offset + k]
                offset += k
                store.add_record(slot, [items[r] for r in seg])

    # -- shared slot outcomes --------------------------------------------

    def _singleton(self, tag: int, slot: int) -> None:
        """Learn one tag, ack it, and apply the resolution cascade.

        On a draw-free channel a transmitter is never already learned, so
        the scalar's duplicate check is vacuous and every resolved tag is
        still active (never acked before) -- both mirrored here without
        re-checking.
        """
        result = self.result
        result.singleton_slots += 1
        self.collision_streak = 0
        result.n_read += 1
        resolved = self.store.learn(tag)
        self._remove(tag)
        for recovered in resolved:
            result.n_read += 1
            result.resolved_from_collision += 1
            result.id_announcements += 1  # SCAT announces the full 96-bit ID
            self._remove(recovered)
        if self.obs is not None and resolved:
            self.obs.emit("anc_resolution", protocol=self.name,
                          slot_index=slot, resolved=len(resolved))

    def _remove(self, tag: int) -> None:
        position = self.pos[tag]
        items = self.items
        last = items.pop()
        if position < len(items):
            items[position] = last
            self.pos[last] = position
        self.pos[tag] = -1


# repro: kernel scalar=repro.core.scat:Scat.read_all test=tests/kernels/test_scat_kernel.py
def batched_scat_sessions(protocol: Scat, n_tags: int,
                          rngs: list[np.random.Generator],
                          channel: ChannelModel = PERFECT_CHANNEL,
                          timing: TimingModel = ICODE_TIMING
                          ) -> list[ReadingResult]:
    """Advance a batch of independent SCAT sessions in lockstep.

    Same contract as :func:`repro.kernels.fcat.batched_fcat_sessions`:
    one session per generator, results in input order, sessions drop out
    of the sweep as they terminate.
    """
    sessions = [_ScatKernelSession(protocol.name, protocol, n_tags, rng,
                                   channel=channel, timing=timing)
                for rng in rngs]
    alive = list(range(len(sessions)))
    # Lockstep driver: per-session belief updates are protocol-serial;
    # the vectorized work happens inside each session's block draws.
    # repro: allow-vectorization-antipattern -- lockstep session driver
    while alive:
        alive = [i for i in alive if not sessions[i].step()]
    return [session.result for session in sessions]
