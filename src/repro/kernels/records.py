"""Index-based collision records for the vectorized kernels.

The scalar :class:`repro.core.collision.RecordStore` keys records by 96-bit
tag IDs wrapped in ``frozenset``s -- exactly right for the reference
implementation, where populations are real EPC IDs, but needless overhead
for the kernels, which simulate over dense tag *indices* ``0..N-1`` (slot
outcomes never depend on ID bit patterns; see ``docs/performance.md``).

:class:`KernelRecordStore` computes the same resolution closure -- a
record resolves its last unknown participant once every other participant
is known, resolutions feed transitively into further records -- over flat
structures sized by the population, using an *unknown-counter* scheme:

* a record is stored as ``[unknown_count, u0, u1, ...]`` -- the count of
  its still-unknown participants followed by exactly those participants
  (already-known constituents carry no future information and are
  dropped at creation);
* each record is registered in every unknown participant's pending list
  (``_by_tag``);
* learning a tag visits the records registered under it: each visit
  decrements the counter, and the decrement to one *is* the "all known
  but one" moment -- a short scan over the (``<= lam``) stored
  participants finds the survivor and resolves it.  A record's counter
  hits zero when it is spent, so re-visits through a cascade skip in two
  comparisons.

A session identifies every tag before terminating, so each record is
eventually visited once per stored participant no matter the scheme;
making the *visit* the cheap operation (counter decrement, no watcher
swaps, no stale entries) beats lazier schemes whose bookkeeping is paid
on exactly as many visits.  The resolution *set* is identical to the
scalar store's eager closure (both compute the same monotone fixpoint);
the order within a cascade may differ, which is statistically irrelevant
(it permutes the kernel's internal roster only) and is pinned as part of
kernel-v2 semantics by the equivalence tests.

Records that can never resolve (noise-unusable or ``k > lam``) are
counted by the session but not stored at all: the scalar store keeps them
only for introspection, and dropping them keeps the pending lists small
when a ``p = 1`` termination probe records thousands of participants.

ZigZag decoding is deliberately not implemented here; the engine falls
back to the scalar path for ``zigzag=True`` configs.
"""

from __future__ import annotations

from collections.abc import Iterable


class KernelRecordStore:
    """The ANC resolution cascade over dense tag indices.

    Mirrors the observable behaviour of
    :class:`repro.core.collision.RecordStore` (resolution closure,
    retire-on-spent, duplicate-residual discard) for the kernel sessions.
    """

    __slots__ = ("lam", "_by_tag", "_learned", "_learned_count")

    def __init__(self, lam: int, n_tags: int) -> None:
        if lam < 2:
            raise ValueError("lam must be >= 2 (ANC resolves k-collisions, "
                             "k>=2)")
        self.lam = lam
        # _by_tag[tag] is the list of live records registered under that
        # tag, or None once the tag is learned (its list is popped into
        # the cascade) or before its first record.
        self._by_tag: list[list[list[int]] | None] = [None] * n_tags
        self._learned = bytearray(n_tags)
        self._learned_count = 0

    @property
    def learned_count(self) -> int:
        return self._learned_count

    def is_learned(self, tag: int) -> bool:
        return bool(self._learned[tag])

    def add_record(self, slot_index: int, participants: Iterable[int],
                   usable: bool = True) -> list[int]:
        """Store one collision slot's mixed signal; may resolve on the spot.

        Returns the tags recovered immediately (a record whose
        constituents are all known but one), including the transitive
        cascade -- the same contract as the scalar
        ``RecordStore.add_record`` minus the record object itself.
        ``slot_index`` is accepted for signature parity with the scalar
        store; resolutions are attributed to the slot that triggers them.
        """
        parts = list(participants)
        k = len(parts)
        if k < 2:
            raise ValueError("a collision record needs at least 2 "
                             "participants")
        if not usable or k > self.lam:
            # Dropped at creation: the residual CRC rejects every attempt,
            # so nothing downstream can ever observe this record.
            return []
        learned = self._learned
        unknown = [tag for tag in parts if not learned[tag]]
        n_unknown = len(unknown)
        if n_unknown == 0:
            return []  # every constituent already known: nothing to learn
        if n_unknown == 1:
            # Resolvable on the spot (tags that missed an ack collided
            # again): learn the single unknown and run the cascade.
            recovered = unknown[0]
            return [recovered] + self.learn(recovered)
        rec = [n_unknown] + unknown
        by_tag = self._by_tag
        for tag in unknown:
            entries = by_tag[tag]
            if entries is None:
                by_tag[tag] = [rec]
            else:
                entries.append(rec)
        return []

    def learn(self, tag: int) -> list[int]:
        """Feed a newly learned index into the cascade (worklist fixpoint).

        Returns the resolved tag indices in resolution order.
        """
        learned = self._learned
        if learned[tag]:
            return []
        learned[tag] = 1
        self._learned_count += 1
        entries = self._by_tag[tag]
        if entries is None:
            return []
        self._by_tag[tag] = None
        out: list[int] = []
        self._cascade_into(entries, out)
        return out

    def _cascade(self, entries: list[list[int]]) -> list[int]:
        """Worklist fixpoint over the records registered under one tag.

        ``entries`` is the just-popped ``_by_tag`` list of a tag the
        caller has already marked learned (the kernels' hot paths inline
        that part).  Returns the resolved tags in resolution order.
        """
        out: list[int] = []
        self._cascade_into(entries, out)
        return out

    def _cascade_into(self, entries: list[list[int]],
                      out: list[int]) -> int:
        """:meth:`_cascade` appending into the caller's list.

        The FCAT kernel's hot replay body collects resolutions directly
        on its removal list, skipping the intermediate list.  Tags
        resolved here are marked learned and counted; the caller only
        propagates them to its own session bookkeeping.  Returns the
        number of tags appended.
        """
        learned = self._learned
        by_tag = self._by_tag
        out_append = out.append
        count = 0
        stack: list[list[list[int]]] | None = None
        # The cascade is a worklist fixpoint over ragged pending lists:
        # inherently serial, O(total record visits), nothing rectangular
        # to mask over (the kernels batch the *draws*, not the closure).
        # repro: allow-vectorization-antipattern -- worklist fixpoint
        while True:
            # repro: allow-vectorization-antipattern -- worklist fixpoint
            for rec in entries:
                c = rec[0]
                if c < 2:
                    continue  # spent (stored counts are never 1)
                rec[0] = c - 1
                if c > 2:
                    continue  # still more than one unknown participant
                # The count just hit one: the lone survivor resolves now.
                other = -1
                # repro: allow-vectorization-antipattern -- O(k) survivor scan, k <= lam <= 4
                for j in range(1, len(rec)):
                    part = rec[j]
                    if not learned[part]:
                        other = part
                        break
                rec[0] = 0  # retired either way
                if other < 0:
                    # Duplicate residual: the last unknown was learned
                    # moments ago through another record of this same
                    # cascade; a real reader discards the duplicate ID.
                    continue
                learned[other] = 1
                count += 1
                out_append(other)
                pending = by_tag[other]
                if pending is not None:
                    by_tag[other] = None
                    if stack is None:
                        stack = []
                    stack.append(pending)
            if not stack:
                self._learned_count += count
                return count
            entries = stack.pop()
