"""Frame-at-once transmission drawing for the vectorized kernels.

The scalar engine advances a frame slot by slot: one ``Binomial(n, p)``
draw for the slot's transmitter count, then that many distinct tags
(:meth:`repro.sim.active_set.ActiveSet.sample_binomial`).  Slot outcomes
are conditionally independent given the report probability ``p``, so the
kernels draw the *whole frame* in two RNG calls:

1. ``counts ~ Binomial(n_active, p)^frame_size`` -- every slot's
   transmitter count in one vectorized call (the per-slot law is exactly
   the scalar engine's);
2. one uniform tag *rank* per transmission, sliced from
   :class:`RankSource`'s pre-drawn uniform block and consumed
   segment-by-segment (slot-major) during the replay walk.  A frame
   whose ranks are provably unobservable (every slot an unresolvable
   ``k > lam`` collision) skips the draw entirely -- under kernel-v2
   seed semantics the consumption pattern is part of the kernel's own
   contract, not the scalar engine's.

Step 2 draws ranks with replacement; the scalar slot law requires the
``k`` transmitters of one slot to be *distinct*.  Duplicates inside a
slot segment are astronomically rare at the nominal load (``k(k-1)/2n``
per collision slot), so the caller detects them with the frame's
last-event map (built anyway for cancellation tracking) and calls
:func:`resample_duplicate_slots`, which rejection-redraws exactly the
offending segments -- whole-segment rejection, so the surviving segment
is uniform over distinct ``k``-tuples, i.e. the exact conditional law.

Mid-frame tag removals (acked singletons, cascade resolutions) do not
break the frame-at-once equivalence: the field is *pre-drawn*, and the
session walk cancels any later transmission of a removed tag, which is
distributionally identical to the scalar engine never drawing it -- the
slots' Bernoulli fields are independent.
"""

from __future__ import annotations

import numpy as np


def draw_slot_counts(rng: np.random.Generator, n_active: int,
                     frame_size: int, p: float) -> tuple[list[int], int]:
    """Draw one frame's per-slot transmitter counts in one RNG call.

    Returns ``(counts, total)``.  The ``p >= 1`` frame is deterministic
    (every active tag transmits in every slot) and consumes nothing.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"report probability {p} outside [0, 1]")
    if n_active == 0 or p == 0.0:
        return [0] * frame_size, 0
    if p >= 1.0:
        return [n_active] * frame_size, n_active * frame_size
    counts = rng.binomial(n_active, p, size=frame_size).tolist()
    return counts, sum(counts)


class RankSource:
    """Amortized uniform rank draws for the frame replay loop.

    ``Generator.integers`` pays a ~7 microsecond fixed dispatch cost per
    call -- as much as an entire frame's worth of rank values -- so
    drawing ranks frame by frame dominates the kernel's RNG budget.  The
    raw uniforms, unlike the binomial slot counts, do not depend on the
    per-frame report probability or roster size: one big ``random()``
    block can be drawn ahead and scaled to ``[0, n_active)`` ranks at
    consumption time, amortizing the dispatch cost over ~100 frames.

    Scaling by ``floor(u * n)`` deviates from ``integers``' exact Lemire
    rejection by at most one part in ``2**53 / n`` per rank -- orders of
    magnitude below anything a statistical equivalence test (or the
    physics) could resolve, and within kernel-v2's contract that the
    consumption pattern and draw mechanics belong to the engine while
    the process law is preserved.  Leftover uniforms at a refill are
    discarded draws, free under the same contract.
    """

    __slots__ = ("rng", "_buf", "_pos", "_len")

    _BLOCK = 4096

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._buf = None
        self._pos = 0
        self._len = 0

    def draw(self, n_active: int, total: int) -> list[int]:
        """``total`` i.i.d. uniform ranks over ``[0, n_active)``."""
        pos = self._pos
        end = pos + total
        if end > self._len:
            self._buf = self.rng.random(max(self._BLOCK, total))
            self._len = len(self._buf)
            pos = 0
            end = total
        self._pos = end
        return np.multiply(self._buf[pos:end],
                           n_active).astype(np.intp).tolist()


def resample_duplicate_slots(rng: np.random.Generator, n_active: int,
                             counts: list[int], ranks: list[int]) -> bool:
    """Redraw duplicated ranks within any slot segment, in place.

    Sparse segments redraw only the *later duplicate occurrences*
    (repeatedly, until the segment is distinct).  The output law is still
    exactly uniform over ordered distinct ``k``-tuples: the procedure
    depends on the draw only through its equality pattern, so it is
    equivariant under relabelling of tag ranks, and any rank-equivariant
    procedure that terminates on distinct tuples samples the uniform
    conditional law -- the same one the scalar engine realises per slot.
    Dense segments (``2k >= n_active``, the saturated endgame) would need
    many redraw rounds, so they are replaced wholesale by a partial
    Fisher-Yates shuffle -- directly the same uniform distinct-tuple law.
    Returns True when anything changed (the caller's rank index is then
    stale).
    """
    changed = False
    offset = 0
    # Cold in expectation: segments are scanned in Python but duplicates
    # occur ~k(k-1)/2n per collision slot, so the repair almost never runs.
    # repro: allow-vectorization-antipattern -- rare-duplicate repair path
    for k in counts:
        if k >= 2:
            end = offset + k
            seen = set(ranks[offset:end])
            if len(seen) < k:
                changed = True
                if k * 2 >= n_active:
                    # Dense segment (saturated endgame: k a large
                    # fraction of n_active): rejection degenerates, so
                    # replace the whole segment with a partial
                    # Fisher-Yates draw -- also exactly uniform over
                    # ordered distinct k-tuples, one RNG call.
                    swaps = rng.integers(np.arange(k), n_active).tolist()
                    pool = list(range(n_active))
                    for j, swap in enumerate(swaps):
                        pool[j], pool[swap] = pool[swap], pool[j]
                        ranks[offset + j] = pool[j]
                    offset += k
                    continue
                seen.clear()
                retry = []
                # repro: allow-vectorization-antipattern -- rare-duplicate repair path
                for position in range(offset, end):
                    rank = ranks[position]
                    if rank in seen:
                        retry.append(position)
                    else:
                        seen.add(rank)
                # repro: allow-vectorization-antipattern -- rare-duplicate repair path
                while retry:
                    draws = rng.integers(0, n_active,
                                         size=len(retry)).tolist()
                    still = []
                    for position, rank in zip(retry, draws):
                        if rank in seen:
                            still.append(position)
                        else:
                            seen.add(rank)
                            ranks[position] = rank
                    retry = still
        offset += k
    return changed
