"""Population churn: Poisson arrivals, exponential dwell times.

Warehouse reality behind the paper's periodic-inventory story: pallets roll
in and out while the reader runs.  ``ChurnModel`` drives per-slot arrival
and departure draws on the slot clock; ``TagLifetimes`` records when each
tag arrived, departed and was first read, which the monitoring metrics are
computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.air.ids import PAYLOAD_BITS, make_tag_id


@dataclass(frozen=True)
class ChurnModel:
    """Arrival/departure rates, in events per second of air time."""

    #: New tags entering range per second (Poisson).
    arrival_rate: float = 0.0
    #: Mean time a tag stays in range (exponential dwell); None = forever.
    mean_dwell_s: float | None = None

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if self.mean_dwell_s is not None and self.mean_dwell_s <= 0:
            raise ValueError("mean_dwell_s must be positive")

    def arrivals_in(self, seconds: float, rng: np.random.Generator) -> int:
        """Number of tags arriving during ``seconds`` of air time."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        if self.arrival_rate == 0.0:
            return 0
        return int(rng.poisson(self.arrival_rate * seconds))

    def departure_probability(self, seconds: float) -> float:
        """P(a present tag leaves within ``seconds``)."""
        if self.mean_dwell_s is None:
            return 0.0
        return float(1.0 - np.exp(-seconds / self.mean_dwell_s))


@dataclass
class TagLifetimes:
    """Arrival / first-read / departure instants per tag (seconds)."""

    arrived_at: dict[int, float] = field(default_factory=dict)
    read_at: dict[int, float] = field(default_factory=dict)
    departed_at: dict[int, float] = field(default_factory=dict)

    def arrive(self, tag: int, time_s: float) -> None:
        self.arrived_at.setdefault(tag, time_s)

    def read(self, tag: int, time_s: float) -> None:
        self.read_at.setdefault(tag, time_s)

    def depart(self, tag: int, time_s: float) -> None:
        self.departed_at.setdefault(tag, time_s)

    def detection_latencies(self) -> list[float]:
        """Arrival-to-first-read delays for tags read while present."""
        latencies = []
        for tag, read_time in self.read_at.items():
            departed = self.departed_at.get(tag)
            if departed is not None and read_time > departed:
                continue  # stale read: the ID surfaced after the tag left
            latencies.append(read_time - self.arrived_at[tag])
        return latencies

    def missed_departures(self) -> int:
        """Tags that left without ever being read while present."""
        missed = 0
        for tag, departed in self.departed_at.items():
            read_time = self.read_at.get(tag)
            if read_time is None or read_time > departed:
                missed += 1
        return missed

    def stale_reads(self) -> int:
        """IDs recovered (via collision records) only after the tag left."""
        stale = 0
        for tag, read_time in self.read_at.items():
            departed = self.departed_at.get(tag)
            if departed is not None and read_time > departed:
                stale += 1
        return stale


class FreshTagSource:
    """Mints distinct, CRC-valid tag IDs for arrivals on demand."""

    def __init__(self, rng: np.random.Generator,
                 reserved: frozenset[int] = frozenset()) -> None:
        self._rng = rng
        self._issued: set[int] = set(reserved)

    def next_ids(self, count: int) -> list[int]:
        fresh: list[int] = []
        while len(fresh) < count:
            payload = int(self._rng.integers(0, 1 << 62)) \
                | (int(self._rng.integers(0, 1 << (PAYLOAD_BITS - 62))) << 62)
            tag = make_tag_id(payload)
            if tag in self._issued:
                continue
            self._issued.add(tag)
            fresh.append(tag)
        return fresh
