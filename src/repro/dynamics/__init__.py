"""Dynamic tag populations: arrivals, departures, continuous monitoring.

Paper section IV-E notes the protocol targets tags that are "statically
located" during a reading round and that severe mobility defeats collision
resolution.  This package quantifies that boundary instead of leaving it as
a remark:

* :mod:`repro.dynamics.churn` -- Poisson arrivals and exponential dwell
  times over the slot clock.
* :mod:`repro.dynamics.monitor` -- a continuously running FCAT reader
  (records, cascade and embedded estimator reused from :mod:`repro.core`)
  measured on detection fraction and latency instead of time-to-complete.
"""

from repro.dynamics.churn import ChurnModel, TagLifetimes
from repro.dynamics.monitor import (
    FcatMonitor,
    MonitoringConfig,
    MonitoringResult,
)

__all__ = [
    "ChurnModel",
    "TagLifetimes",
    "FcatMonitor",
    "MonitoringConfig",
    "MonitoringResult",
]
