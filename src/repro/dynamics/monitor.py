"""A continuously running FCAT reader over a churning population.

Reuses the core machinery (collision records + cascade, embedded estimator,
optimal load) but replaces "read everything then stop" with "run for a time
budget and keep up": tags arrive and depart per a :class:`ChurnModel`, and
the result reports detection fraction, detection latency and how much the
collision-record cascade contributed.

Design notes:

* A departed tag's signal *stays* in any collision record it contributed to
  (the mixed signal was captured while it was present), so its ID can still
  be recovered after it left -- a *stale read*, counted separately.  This is
  the paper's "learn new tag IDs after some time" property colliding with
  mobility.
* A tag that departs unread and whose records never resolve is a *missed
  departure* -- the metric that degrades as churn accelerates, tracing the
  operating boundary section IV-E describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.collision import RecordStore
from repro.core.estimator import EmbeddedEstimator
from repro.core.optimal import optimal_omega
from repro.dynamics.churn import ChurnModel, FreshTagSource, TagLifetimes
from repro.sim.active_set import ActiveSet
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation


@dataclass(frozen=True)
class MonitoringConfig:
    """FCAT parameters plus the monitoring time budget."""

    duration_s: float = 60.0
    lam: int = 2
    frame_size: int = 30
    omega: float | None = None
    initial_estimate: float = 64.0
    max_report_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.lam < 2:
            raise ValueError("lam must be >= 2")
        if self.frame_size < 1:
            raise ValueError("frame_size must be >= 1")

    @property
    def effective_omega(self) -> float:
        return self.omega if self.omega is not None else optimal_omega(self.lam)


@dataclass
class MonitoringResult:
    """What a monitoring session observed."""

    config: MonitoringConfig
    lifetimes: TagLifetimes
    total_slots: int = 0
    empty_slots: int = 0
    singleton_slots: int = 0
    collision_slots: int = 0
    resolved_from_collision: int = 0
    frames: int = 0
    #: (estimated remaining, true present-and-unread) per frame.
    tracking_trace: list[tuple[float, int]] = field(default_factory=list)

    @property
    def tags_appeared(self) -> int:
        return len(self.lifetimes.arrived_at)

    @property
    def tags_read(self) -> int:
        return len(self.lifetimes.read_at)

    @property
    def missed_departures(self) -> int:
        return self.lifetimes.missed_departures()

    @property
    def stale_reads(self) -> int:
        return self.lifetimes.stale_reads()

    @property
    def detection_fraction(self) -> float:
        """Among tags that departed, the fraction read while present."""
        departed = len(self.lifetimes.departed_at)
        if departed == 0:
            return 1.0
        return 1.0 - self.missed_departures / departed

    def latency_stats(self) -> tuple[float, float]:
        """(mean, 95th percentile) detection latency in seconds."""
        latencies = self.lifetimes.detection_latencies()
        if not latencies:
            return float("nan"), float("nan")
        return (float(np.mean(latencies)),
                float(np.percentile(latencies, 95)))

    def summary(self) -> str:
        mean_latency, p95 = self.latency_stats()
        return (f"monitored {self.config.duration_s:.0f}s: "
                f"{self.tags_read}/{self.tags_appeared} tags read, "
                f"{self.missed_departures} missed departures, "
                f"{self.stale_reads} stale reads, "
                f"latency mean {mean_latency:.2f}s / p95 {p95:.2f}s")


class FcatMonitor:
    """FCAT re-purposed for continuous monitoring of a churning population."""

    def __init__(self, config: MonitoringConfig = MonitoringConfig()) -> None:
        self.config = config

    def run(self, initial_population: TagPopulation, churn: ChurnModel,
            rng: np.random.Generator,
            channel: ChannelModel = PERFECT_CHANNEL,
            timing: TimingModel = ICODE_TIMING) -> MonitoringResult:
        config = self.config
        omega = config.effective_omega
        lifetimes = TagLifetimes()
        result = MonitoringResult(config=config, lifetimes=lifetimes)
        active = ActiveSet(initial_population.ids)
        present = ActiveSet(initial_population.ids)
        for tag in initial_population.ids:
            lifetimes.arrive(tag, 0.0)
        source = FreshTagSource(rng, reserved=frozenset(present))
        store = RecordStore(config.lam)
        estimator = EmbeddedEstimator(
            omega=omega, frame_size=config.frame_size,
            initial_guess=config.initial_estimate)
        slot_seconds = timing.slot_duration
        depart_probability = churn.departure_probability(slot_seconds)
        elapsed = 0.0
        slot_index = 0

        def ack(tag: int) -> None:
            # A departed tag cannot hear its acknowledgement.
            if tag in present and channel.ack_received(rng):
                active.discard(tag)

        def apply_resolutions(resolved: list[tuple[int, int]]) -> None:
            for tag, _slot in resolved:
                result.resolved_from_collision += 1
                lifetimes.read(tag, elapsed)
                ack(tag)

        while elapsed < config.duration_s:
            identified_at_start = store.learned_count
            remaining = estimator.remaining()
            p = min(omega / remaining, config.max_report_probability)
            elapsed += timing.advertisement_duration
            result.frames += 1
            n_collision = 0
            for _ in range(config.frame_size):
                elapsed += slot_seconds
                self._apply_churn(churn, depart_probability, slot_seconds,
                                  present, active, lifetimes, source, rng,
                                  elapsed)
                slot = slot_index
                slot_index += 1
                transmitters = active.sample_binomial(p, rng)
                k = len(transmitters)
                result.total_slots += 1
                if k == 0:
                    result.empty_slots += 1
                elif k == 1 and channel.singleton_ok(rng):
                    result.singleton_slots += 1
                    tag = transmitters[0]
                    lifetimes.read(tag, elapsed)
                    resolved = store.learn(tag)
                    ack(tag)
                    apply_resolutions(resolved)
                else:
                    result.collision_slots += 1
                    n_collision += 1
                    if k >= 2:
                        usable = channel.record_usable(rng)
                        _, resolved = store.add_record(slot, transmitters,
                                                       usable)
                        apply_resolutions(resolved)
            estimator.update(n_collision, p, identified_at_start,
                             store.learned_count)
            unread_present = len(active)
            result.tracking_trace.append((estimator.remaining(),
                                          unread_present))
        return result

    @staticmethod
    def _apply_churn(churn: ChurnModel, depart_probability: float,
                     slot_seconds: float, present: ActiveSet,
                     active: ActiveSet, lifetimes: TagLifetimes,
                     source: FreshTagSource, rng: np.random.Generator,
                     elapsed: float) -> None:
        for tag in source.next_ids(churn.arrivals_in(slot_seconds, rng)):
            present.add(tag)
            active.add(tag)
            lifetimes.arrive(tag, elapsed)
        if depart_probability > 0.0 and len(present):
            departing = present.sample_binomial(depart_probability, rng)
            for tag in departing:
                present.discard(tag)
                active.discard(tag)
                lifetimes.depart(tag, elapsed)
