"""Slot accounting and results of a reading session.

A :class:`ReadingResult` captures everything the paper's tables report: the
empty/singleton/collision slot split (Table II), the number of IDs recovered
from collision records (Table III), and -- through the timing model -- the
reading throughput in tags per second (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, stdev
from typing import Any

from repro.air.timing import ICODE_TIMING, TimingModel


@dataclass
class ReadingResult:
    """Outcome of one reading session of one protocol."""

    protocol: str
    n_tags: int
    n_read: int
    empty_slots: int = 0
    singleton_slots: int = 0
    collision_slots: int = 0
    #: Reader advertisements broadcast (per slot for SCAT, per frame for FCAT).
    advertisements: int = 0
    #: Resolved collision records announced by 23-bit slot index (FCAT).
    index_announcements: int = 0
    #: Resolved tags announced by full 96-bit ID (SCAT).
    id_announcements: int = 0
    #: IDs recovered by resolving collision records rather than singletons.
    resolved_from_collision: int = 0
    #: Total tag transmissions over the session (battery cost: the paper's
    #: active tags pay per ID broadcast).
    tag_transmissions: int = 0
    frames: int = 0
    #: Air time spent before the session proper (e.g. SCAT's cardinality
    #: pre-estimation probe frames).
    presession_s: float = 0.0
    timing: TimingModel = ICODE_TIMING
    #: Per-frame tag-count estimates (FCAT's embedded estimator trace).
    estimate_trace: list[float] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_slots(self) -> int:
        return self.empty_slots + self.singleton_slots + self.collision_slots

    @property
    def duration_s(self) -> float:
        """Session wall-clock per the timing model, announcements included."""
        return self.presession_s + self.timing.session_seconds(
            slots=self.total_slots,
            advertisements=self.advertisements,
            index_announcements=self.index_announcements,
            id_announcements=self.id_announcements,
        )

    @property
    def throughput(self) -> float:
        """Unique tag IDs collected per second (the paper's headline metric)."""
        duration = self.duration_s
        if duration <= 0:
            raise ValueError("session has zero duration")
        return self.n_read / duration

    @property
    def complete(self) -> bool:
        """Whether every tag in the population was identified."""
        return self.n_read == self.n_tags

    def summary(self) -> str:
        return (f"{self.protocol}: read {self.n_read}/{self.n_tags} tags in "
                f"{self.total_slots} slots ({self.empty_slots} empty / "
                f"{self.singleton_slots} singleton / {self.collision_slots} "
                f"collision), {self.throughput:.1f} tags/s")


@dataclass(frozen=True)
class AggregateResult:
    """Mean/stddev of a metric across repeated runs (paper averages 100)."""

    protocol: str
    n_tags: int
    runs: int
    throughput_mean: float
    throughput_std: float
    empty_mean: float
    singleton_mean: float
    collision_mean: float
    total_slots_mean: float
    resolved_mean: float

    @property
    def resolved_fraction(self) -> float:
        """Fraction of IDs recovered from collision slots (Table III)."""
        return self.resolved_mean / self.n_tags if self.n_tags else 0.0


def aggregate(results: list[ReadingResult]) -> AggregateResult:
    """Collapse repeated runs of one (protocol, N) cell into summary stats."""
    if not results:
        raise ValueError("need at least one result to aggregate")
    protocols = {r.protocol for r in results}
    sizes = {r.n_tags for r in results}
    if len(protocols) != 1 or len(sizes) != 1:
        raise ValueError("results mix protocols or population sizes")
    throughputs = [r.throughput for r in results]
    return AggregateResult(
        protocol=protocols.pop(),
        n_tags=sizes.pop(),
        runs=len(results),
        throughput_mean=mean(throughputs),
        throughput_std=stdev(throughputs) if len(throughputs) > 1 else 0.0,
        empty_mean=mean(r.empty_slots for r in results),
        singleton_mean=mean(r.singleton_slots for r in results),
        collision_mean=mean(r.collision_slots for r in results),
        total_slots_mean=mean(r.total_slots for r in results),
        resolved_mean=mean(r.resolved_from_collision for r in results),
    )
