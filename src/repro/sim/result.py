"""Slot accounting and results of a reading session.

A :class:`ReadingResult` captures everything the paper's tables report: the
empty/singleton/collision slot split (Table II), the number of IDs recovered
from collision records (Table III), and -- through the timing model -- the
reading throughput in tags per second (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, stdev
from typing import Any

from repro.air.timing import ICODE_TIMING, TimingModel


@dataclass
class ReadingResult:
    """Outcome of one reading session of one protocol."""

    protocol: str
    n_tags: int
    n_read: int
    empty_slots: int = 0
    singleton_slots: int = 0
    collision_slots: int = 0
    #: Reader advertisements broadcast (per slot for SCAT, per frame for FCAT).
    advertisements: int = 0
    #: Resolved collision records announced by 23-bit slot index (FCAT).
    index_announcements: int = 0
    #: Resolved tags announced by full 96-bit ID (SCAT).
    id_announcements: int = 0
    #: IDs recovered by resolving collision records rather than singletons.
    resolved_from_collision: int = 0
    #: Total tag transmissions over the session (battery cost: the paper's
    #: active tags pay per ID broadcast).
    tag_transmissions: int = 0
    frames: int = 0
    #: Air time spent before the session proper (e.g. SCAT's cardinality
    #: pre-estimation probe frames).
    presession_s: float = 0.0
    timing: TimingModel = ICODE_TIMING
    #: Per-frame tag-count estimates (FCAT's embedded estimator trace).
    estimate_trace: list[float] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_slots(self) -> int:
        return self.empty_slots + self.singleton_slots + self.collision_slots

    @property
    def duration_s(self) -> float:
        """Session wall-clock per the timing model, announcements included."""
        return self.presession_s + self.timing.session_seconds(
            slots=self.total_slots,
            advertisements=self.advertisements,
            index_announcements=self.index_announcements,
            id_announcements=self.id_announcements,
        )

    @property
    def throughput(self) -> float:
        """Unique tag IDs collected per second (the paper's headline metric)."""
        duration = self.duration_s
        if duration <= 0:
            raise ValueError("session has zero duration")
        return self.n_read / duration

    @property
    def complete(self) -> bool:
        """Whether every tag in the population was identified."""
        return self.n_read == self.n_tags

    def summary(self) -> str:
        return (f"{self.protocol}: read {self.n_read}/{self.n_tags} tags in "
                f"{self.total_slots} slots ({self.empty_slots} empty / "
                f"{self.singleton_slots} singleton / {self.collision_slots} "
                f"collision), {self.throughput:.1f} tags/s")


@dataclass(frozen=True)
class RunMetrics:
    """The per-run scalars an :class:`AggregateResult` is computed from.

    This is the unit the result cache stores for *partial* cells (run-seed
    ranges): six JSON-exact numbers per run.  Because floats round-trip
    through JSON bit-for-bit and :func:`aggregate` is defined over exactly
    these values, an aggregate reassembled from cached ranges is identical
    to one computed from the live :class:`ReadingResult` objects.
    """

    throughput: float
    empty_slots: int
    singleton_slots: int
    collision_slots: int
    total_slots: int
    resolved_from_collision: int

    def to_list(self) -> list:
        return [self.throughput, self.empty_slots, self.singleton_slots,
                self.collision_slots, self.total_slots,
                self.resolved_from_collision]

    @classmethod
    def from_list(cls, values: list) -> "RunMetrics":
        throughput, empty, singleton, collision, total, resolved = values
        return cls(throughput=float(throughput), empty_slots=int(empty),
                   singleton_slots=int(singleton),
                   collision_slots=int(collision), total_slots=int(total),
                   resolved_from_collision=int(resolved))


def run_metrics(result: ReadingResult) -> RunMetrics:
    """Project one session onto the scalars the aggregate depends on."""
    return RunMetrics(
        throughput=result.throughput,
        empty_slots=result.empty_slots,
        singleton_slots=result.singleton_slots,
        collision_slots=result.collision_slots,
        total_slots=result.total_slots,
        resolved_from_collision=result.resolved_from_collision,
    )


@dataclass(frozen=True)
class AggregateResult:
    """Mean/stddev of a metric across repeated runs (paper averages 100)."""

    protocol: str
    n_tags: int
    runs: int
    throughput_mean: float
    throughput_std: float
    empty_mean: float
    singleton_mean: float
    collision_mean: float
    total_slots_mean: float
    resolved_mean: float

    @property
    def resolved_fraction(self) -> float:
        """Fraction of IDs recovered from collision slots (Table III)."""
        return self.resolved_mean / self.n_tags if self.n_tags else 0.0


def aggregate(results: list[ReadingResult]) -> AggregateResult:
    """Collapse repeated runs of one (protocol, N) cell into summary stats."""
    if not results:
        raise ValueError("need at least one result to aggregate")
    protocols = {r.protocol for r in results}
    sizes = {r.n_tags for r in results}
    if len(protocols) != 1 or len(sizes) != 1:
        raise ValueError("results mix protocols or population sizes")
    return aggregate_metrics(protocols.pop(), sizes.pop(),
                             [run_metrics(r) for r in results])


def aggregate_metrics(protocol: str, n_tags: int,
                      values: list[RunMetrics]) -> AggregateResult:
    """:func:`aggregate` over pre-projected per-run metric vectors.

    ``aggregate`` delegates here, so a cell assembled from cached
    :class:`RunMetrics` ranges and one computed from live results agree
    bit-for-bit -- the invariant the planner's partial-batch cache and the
    executor's prefix reuse rest on.
    """
    if not values:
        raise ValueError("need at least one result to aggregate")
    throughputs = [v.throughput for v in values]
    return AggregateResult(
        protocol=protocol,
        n_tags=n_tags,
        runs=len(values),
        throughput_mean=mean(throughputs),
        throughput_std=stdev(throughputs) if len(throughputs) > 1 else 0.0,
        empty_mean=mean(v.empty_slots for v in values),
        singleton_mean=mean(v.singleton_slots for v in values),
        collision_mean=mean(v.collision_slots for v in values),
        total_slots_mean=mean(v.total_slots for v in values),
        resolved_mean=mean(v.resolved_from_collision for v in values),
    )
