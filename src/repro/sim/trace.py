"""Per-slot session tracing for debugging and visualisation.

Protocols that support tracing (FCAT does) append one :class:`SlotEvent`
per slot when handed a :class:`SessionTrace`.  The trace is intentionally
reader-perspective only: it records what the reader advertised and observed,
never the hidden transmitter sets, so a trace is exactly what a hardware
reader's debug log would contain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SlotKind(Enum):
    EMPTY = "empty"
    SINGLETON = "singleton"
    COLLISION = "collision"


@dataclass(frozen=True)
class SlotEvent:
    """One slot as the reader experienced it."""

    slot_index: int
    frame_index: int
    kind: SlotKind
    report_probability: float
    #: IDs learned in this slot (singleton decode plus cascade resolutions).
    learned: tuple[int, ...] = ()
    probe: bool = False


@dataclass
class SessionTrace:
    """An append-only log of slot events plus per-frame estimator snapshots."""

    events: list[SlotEvent] = field(default_factory=list)
    #: (frame_index, remaining-estimate) after each frame.
    estimates: list[tuple[int, float]] = field(default_factory=list)

    def record(self, event: SlotEvent) -> None:
        self.events.append(event)

    def record_estimate(self, frame_index: int, remaining: float) -> None:
        self.estimates.append((frame_index, remaining))

    def __len__(self) -> int:
        return len(self.events)

    def slots_of_kind(self, kind: SlotKind) -> list[SlotEvent]:
        return [event for event in self.events if event.kind is kind]

    def learned_order(self) -> list[int]:
        """Every learned ID in the order the reader acquired them."""
        order: list[int] = []
        for event in self.events:
            order.extend(event.learned)
        return order

    def summary(self) -> str:
        kinds = {kind: len(self.slots_of_kind(kind)) for kind in SlotKind}
        return (f"trace: {len(self.events)} slots "
                f"({kinds[SlotKind.EMPTY]} empty / "
                f"{kinds[SlotKind.SINGLETON]} singleton / "
                f"{kinds[SlotKind.COLLISION]} collision), "
                f"{len(self.learned_order())} IDs learned")
