"""A set with O(1) insert, remove and uniform random sampling.

FCAT needs, every slot, a uniform sample of ``k`` distinct tags out of the
currently active ones (where ``k ~ Binomial(N_active, p)`` is tiny, around
``omega = 1.4``).  A plain set cannot sample; a list cannot remove in O(1).
``ActiveSet`` keeps items in a dense list plus an item->position map and uses
swap-with-last removal, the classic constant-time trick, so a 17 000-slot FCAT
session at N = 10 000 runs in well under a second.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

import numpy as np


class ActiveSet:
    """Dense set of hashable items supporting O(1) uniform sampling."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._items: list[Hashable] = []
        self._pos: dict[Hashable, int] = {}
        #: Scratch for the rejection sampler, reused across calls: the
        #: scalar session loops call ``sample_binomial`` once per slot,
        #: and allocating a fresh position set per slot was the R13
        #: allocation antipattern (the kernel engine sidesteps this whole
        #: class by pre-drawing frames; see ``repro.kernels.frame``).
        self._scratch: set[int] = set()
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def add(self, item: Hashable) -> None:
        """Insert ``item``; no-op if already present."""
        if item in self._pos:
            return
        self._pos[item] = len(self._items)
        self._items.append(item)

    def remove(self, item: Hashable) -> None:
        """Remove ``item`` in O(1); raises ``KeyError`` if absent."""
        position = self._pos.pop(item)  # KeyError if absent, as intended
        last = self._items.pop()
        if position < len(self._items):  # removed item was not the last one
            self._items[position] = last
            self._pos[last] = position

    def discard(self, item: Hashable) -> bool:
        """Remove ``item`` if present; return whether it was removed."""
        if item not in self._pos:
            return False
        self.remove(item)
        return True

    def sample(self, k: int, rng: np.random.Generator) -> list[Hashable]:
        """Return ``k`` distinct items uniformly at random (without replacement).

        Uses rejection sampling over positions, which is O(k) in expectation
        for ``k`` much smaller than the set and falls back to a permutation
        when ``k`` is a large fraction of the set.

        The returned order is a pure function of the RNG stream and the set's
        insertion history: rejection-sampled positions are sorted before
        indexing (a ``set`` of positions would otherwise leak hash-iteration
        order into slot outcomes, breaking the parallel==serial guarantee the
        sweep executor relies on).
        """
        n = len(self._items)
        if not 0 <= k <= n:
            raise ValueError(f"cannot sample {k} items from a set of {n}")
        if k == 0:
            return []
        if k == n:
            return list(self._items)
        if k > n // 2:
            positions = rng.permutation(n)[:k]
            return [self._items[int(p)] for p in positions]
        # Rejection sampling into the reused scratch set: exactly one
        # scalar `integers` draw per accepted-or-rejected attempt, the
        # draw order the golden results pin.
        chosen = self._scratch
        chosen.clear()
        while len(chosen) < k:
            chosen.add(int(rng.integers(0, n)))
        return [self._items[p] for p in sorted(chosen)]

    def sample_binomial(self, probability: float,
                        rng: np.random.Generator) -> list[Hashable]:
        """Sample each item independently with ``probability``.

        Statistically identical to evaluating the report hash
        ``H(ID|i) <= floor(p * 2^l)`` at every tag, but O(k) instead of O(N):
        draw the transmitter count from the binomial, then pick that many
        distinct members.

        This is the scalar engines' per-slot sampler; the kernel engine
        replaces it wholesale with frame-at-once draws
        (:func:`repro.kernels.frame.draw_slot_counts`).
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        k = int(rng.binomial(len(self._items), probability)) if self._items else 0
        return self.sample(k, rng)
