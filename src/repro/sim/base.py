"""The protocol interface every reading protocol implements.

A protocol reads a whole :class:`~repro.sim.population.TagPopulation` and
returns a :class:`~repro.sim.result.ReadingResult`.  Protocols are stateless
configuration objects: all per-session state lives inside ``read_all`` so the
same instance can run many independent sessions (the paper averages 100 runs
per data point).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.obs import scope
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import AggregateResult, ReadingResult, aggregate


class TagReadingProtocol(ABC):
    """A complete tag-identification protocol (reader plus tag behaviour)."""

    #: Human-readable protocol name used in reports (e.g. ``"FCAT-2"``).
    name: str = "protocol"

    @abstractmethod
    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        """Run one complete reading session and return its accounting."""

    def observe_session(self, result: ReadingResult) -> None:
        """Shared observability hook: account one finished session.

        The runners (:func:`run_many`,
        :func:`repro.experiments.runner.run_single`) call this after every
        ``read_all``, so every protocol -- FCAT, SCAT and all the baselines
        -- reports the same session-level telemetry without per-protocol
        instrumentation.  A no-op unless a ``repro.obs`` scope is active.
        """
        obs = scope.active()
        if obs is None:
            return
        obs.count("sessions")
        obs.count("slots.empty", result.empty_slots)
        obs.count("slots.singleton", result.singleton_slots)
        obs.count("slots.collision", result.collision_slots)
        obs.count("tags.read", result.n_read)
        obs.count("tags.resolved_from_collision",
                  result.resolved_from_collision)
        obs.observe_value("session.duration_s", result.duration_s)
        obs.observe_value("session.slots", result.total_slots)
        obs.emit("session", protocol=result.protocol, n_tags=result.n_tags,
                 n_read=result.n_read, empty_slots=result.empty_slots,
                 singleton_slots=result.singleton_slots,
                 collision_slots=result.collision_slots,
                 resolved_from_collision=result.resolved_from_collision,
                 frames=result.frames, duration_s=result.duration_s)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def run_many(protocol: TagReadingProtocol, population: TagPopulation,
             runs: int, seed: int,
             channel: ChannelModel = PERFECT_CHANNEL,
             timing: TimingModel = ICODE_TIMING,
             engine: str = "scalar") -> AggregateResult:
    """Average ``runs`` independent sessions (the paper's 100-run averaging).

    Each run gets an independent child generator spawned from ``seed`` so the
    whole sweep is reproducible yet runs are uncorrelated.

    ``engine="kernel"`` routes supported (protocol, channel) configurations
    to the batched frame-at-once sessions of :mod:`repro.kernels` -- same
    child seeds, kernel-v2 consumption order (statistically, not bitwise,
    equivalent; see ``docs/performance.md``) -- and falls back to this
    scalar loop otherwise.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    seeds = np.random.SeedSequence(seed).spawn(runs)
    if engine != "scalar":
        from repro.kernels.engine import batch_read_all, validate_engine
        validate_engine(engine)
        rngs = [np.random.default_rng(child) for child in seeds]
        batched = batch_read_all(protocol, len(population), rngs,
                                 channel=channel, timing=timing)
        if batched is not None:
            for result in batched:
                if not result.complete and channel is PERFECT_CHANNEL:
                    raise RuntimeError(
                        f"{protocol.name} failed to read all tags on a "
                        f"perfect channel "
                        f"({result.n_read}/{result.n_tags})")
                protocol.observe_session(result)
            return aggregate(batched)
    results: list[ReadingResult] = []
    for child in seeds:
        rng = np.random.default_rng(child)
        result = protocol.read_all(population, rng, channel=channel,
                                   timing=timing)
        if not result.complete and channel is PERFECT_CHANNEL:
            raise RuntimeError(
                f"{protocol.name} failed to read all tags on a perfect "
                f"channel ({result.n_read}/{result.n_tags})")
        protocol.observe_session(result)
        results.append(result)
    return aggregate(results)
