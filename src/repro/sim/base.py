"""The protocol interface every reading protocol implements.

A protocol reads a whole :class:`~repro.sim.population.TagPopulation` and
returns a :class:`~repro.sim.result.ReadingResult`.  Protocols are stateless
configuration objects: all per-session state lives inside ``read_all`` so the
same instance can run many independent sessions (the paper averages 100 runs
per data point).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import AggregateResult, ReadingResult, aggregate


class TagReadingProtocol(ABC):
    """A complete tag-identification protocol (reader plus tag behaviour)."""

    #: Human-readable protocol name used in reports (e.g. ``"FCAT-2"``).
    name: str = "protocol"

    @abstractmethod
    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        """Run one complete reading session and return its accounting."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def run_many(protocol: TagReadingProtocol, population: TagPopulation,
             runs: int, seed: int,
             channel: ChannelModel = PERFECT_CHANNEL,
             timing: TimingModel = ICODE_TIMING) -> AggregateResult:
    """Average ``runs`` independent sessions (the paper's 100-run averaging).

    Each run gets an independent child generator spawned from ``seed`` so the
    whole sweep is reproducible yet runs are uncorrelated.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    results: list[ReadingResult] = []
    seeds = np.random.SeedSequence(seed).spawn(runs)
    for child in seeds:
        rng = np.random.default_rng(child)
        result = protocol.read_all(population, rng, channel=channel,
                                   timing=timing)
        if not result.complete and channel is PERFECT_CHANNEL:
            raise RuntimeError(
                f"{protocol.name} failed to read all tags on a perfect "
                f"channel ({result.n_read}/{result.n_tags})")
        results.append(result)
    return aggregate(results)
