"""Channel-error model for protocol-level simulations (paper section IV-E).

The paper discusses three imperfections and how the protocols cope:

* a singleton's ID signal may be corrupted -- the CRC rejects it and the slot
  carries no usable ID (the reader keeps it as an opaque collision-like
  record, which will never verify);
* the reader's acknowledgement may be lost -- the tag keeps transmitting and
  the reader later discards the duplicate ID;
* a collision slot's mixed signal may be too noisy for ANC to ever resolve --
  the record is wasted, but nothing else breaks.

All three are independent Bernoulli events here; probabilities default to
zero, the setting the paper's headline evaluation uses ("an environment where
most 2-collision slots are resolvable").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class ChannelModel:
    """Bernoulli error knobs applied by the slot-level simulators."""

    #: Probability that a singleton slot's ID fails its CRC check.
    singleton_corrupt_prob: float = 0.0
    #: Probability that a tag misses an acknowledgement addressed to it.
    ack_loss_prob: float = 0.0
    #: Probability that a collision record is too noisy for ANC resolution.
    collision_unusable_prob: float = 0.0
    #: Capture effect: probability that the strongest of several colliding
    #: transmissions decodes anyway (near/far power imbalance).  An
    #: extension knob -- the paper assumes no capture -- exercised by the
    #: capture ablation; supported by FCAT, SCAT and DFSA.
    capture_prob: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("singleton_corrupt_prob", self.singleton_corrupt_prob)
        _check_probability("ack_loss_prob", self.ack_loss_prob)
        _check_probability("collision_unusable_prob", self.collision_unusable_prob)
        _check_probability("capture_prob", self.capture_prob)

    def singleton_ok(self, rng: np.random.Generator) -> bool:
        """Draw whether a singleton transmission decodes (CRC passes)."""
        if self.singleton_corrupt_prob == 0.0:
            return True
        return rng.random() >= self.singleton_corrupt_prob

    def ack_received(self, rng: np.random.Generator) -> bool:
        """Draw whether a tag hears an acknowledgement addressed to it."""
        if self.ack_loss_prob == 0.0:
            return True
        return rng.random() >= self.ack_loss_prob

    def record_usable(self, rng: np.random.Generator) -> bool:
        """Draw whether a freshly recorded collision can ever be resolved."""
        if self.collision_unusable_prob == 0.0:
            return True
        return rng.random() >= self.collision_unusable_prob

    def captured(self, rng: np.random.Generator) -> bool:
        """Draw whether the strongest collider of a slot decodes anyway."""
        if self.capture_prob == 0.0:
            return False
        return rng.random() < self.capture_prob


#: The noiseless channel the paper's headline numbers assume.
PERFECT_CHANNEL = ChannelModel()
