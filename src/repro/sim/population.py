"""Tag populations.

A population is an immutable list of distinct, CRC-valid 96-bit tag IDs.  The
query-tree baselines split on ID bits, so IDs are real (uniform payloads), not
surrogates.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.air.ids import generate_tag_ids, verify_tag_id


class TagPopulation:
    """An immutable set of distinct tag IDs deployed in the reading range."""

    def __init__(self, tag_ids: Sequence[int], validate: bool = True) -> None:
        ids = list(tag_ids)
        if len(set(ids)) != len(ids):
            raise ValueError("tag IDs must be distinct")
        if validate:
            for tag_id in ids:
                if not verify_tag_id(tag_id):
                    raise ValueError(f"invalid tag ID (bad CRC): {tag_id:#x}")
        self._ids = tuple(ids)
        self._idset = frozenset(ids)

    @classmethod
    def random(cls, count: int, rng: np.random.Generator) -> "TagPopulation":
        """Deploy ``count`` tags with uniformly random payloads."""
        return cls(generate_tag_ids(count, rng), validate=False)

    @property
    def ids(self) -> tuple[int, ...]:
        return self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def __contains__(self, tag_id: int) -> bool:
        return tag_id in self._idset

    def __repr__(self) -> str:
        return f"TagPopulation({len(self._ids)} tags)"
