"""Protocol-level simulation substrate.

The paper's evaluation (section VI) runs at slot granularity: what matters to a
reading protocol is how many tags transmitted in each slot, not the waveforms.
This package provides the pieces shared by the paper's protocols
(:mod:`repro.core`) and the baselines (:mod:`repro.baselines`):

* :mod:`repro.sim.active_set` -- O(1) add/remove/sample set of active tags, so
  a slot costs O(#transmitters) instead of O(N).
* :mod:`repro.sim.channel` -- channel-error knobs (corrupted singletons, lost
  acknowledgements, unresolvable collision records; paper section IV-E).
* :mod:`repro.sim.result` -- slot accounting and :class:`ReadingResult`.
* :mod:`repro.sim.population` -- tag populations (real 96-bit IDs).
* :mod:`repro.sim.base` -- the :class:`TagReadingProtocol` interface.
"""

from repro.sim.active_set import ActiveSet
from repro.sim.base import TagReadingProtocol, run_many
from repro.sim.channel import ChannelModel, PERFECT_CHANNEL
from repro.sim.population import TagPopulation
from repro.sim.result import (
    AggregateResult,
    ReadingResult,
    RunMetrics,
    aggregate,
    aggregate_metrics,
    run_metrics,
)
from repro.sim.trace import SessionTrace, SlotEvent, SlotKind

__all__ = [
    "SessionTrace",
    "SlotEvent",
    "SlotKind",
    "ActiveSet",
    "TagReadingProtocol",
    "run_many",
    "ChannelModel",
    "PERFECT_CHANNEL",
    "TagPopulation",
    "AggregateResult",
    "ReadingResult",
    "RunMetrics",
    "aggregate",
    "aggregate_metrics",
    "run_metrics",
]
