"""Fig. 4 -- E(n0), E(n1), E(nc) vs tag count at a fixed report probability.

Reproduces the curves that justify estimating from the collision count:
with ``p`` pinned to ``1.414/10000`` and ``f = 30``, the singleton
expectation rises to a peak near ``N = 1/p`` and falls again (not
invertible), the empty expectation decays, and the collision expectation
grows monotonically (cleanly invertible).  A Monte-Carlo overlay verifies
the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.slot_distribution import (
    SlotExpectations,
    singleton_peak,
    slot_expectations,
)
from repro.experiments.runner import rng_from_seed
from repro.report.ascii_chart import AsciiChart


@dataclass(frozen=True)
class Fig4Config:
    #: The paper fixes p via omega/N at N = 10000 (its Fig. 4 caption).
    reference_n: int = 10000
    omega: float = 1.414
    frame_size: int = 30
    n_min: int = 500
    n_max: int = 40000
    n_points: int = 40
    simulate: bool = False
    simulate_frames: int = 2000
    seed: int = 20100552


@dataclass
class Fig4Result:
    config: Fig4Config
    expectations: SlotExpectations
    singleton_peak_n: float
    #: (empty, singleton, collision) Monte-Carlo means at n_max (simulate=True).
    empirical: tuple[float, float, float] | None
    chart: AsciiChart


def run_fig4(config: Fig4Config = Fig4Config()) -> Fig4Result:
    p = config.omega / config.reference_n
    n_values = np.linspace(config.n_min, config.n_max, config.n_points)
    expectations = slot_expectations(n_values, p, config.frame_size)
    chart = AsciiChart(title="Fig. 4 -- expected slot counts per frame vs N",
                       x_label="number of tags", y_label="slots per frame")
    chart.add_series("E(n0)", n_values, expectations.empty)
    chart.add_series("E(n1)", n_values, expectations.singleton)
    chart.add_series("E(nc)", n_values, expectations.collision)
    empirical = None
    if config.simulate:
        rng = rng_from_seed(config.seed)
        counts = rng.binomial(config.n_max, p,
                              size=(config.simulate_frames,
                                    config.frame_size))
        empirical = (
            float((counts == 0).sum(axis=1).mean()),
            float((counts == 1).sum(axis=1).mean()),
            float((counts >= 2).sum(axis=1).mean()),
        )
    return Fig4Result(config=config, expectations=expectations,
                      singleton_peak_n=singleton_peak(p),
                      empirical=empirical, chart=chart)
