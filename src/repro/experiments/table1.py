"""Table I -- reading throughput (tags/second) as N varies (paper section VI-A).

Paper values for reference: FCAT-2 ~ 197.7-201.7, FCAT-3 ~ 234.8-241.8,
FCAT-4 ~ 238.8-266.4, DFSA ~ 129.1-132.8, EDFSA ~ 115.9-128.6,
ABS ~ 123.5-124.2, AQS ~ 117.9-121.3.  Expected shape: FCAT-2 beats the best
baseline by ~50-70%, FCAT-4 > FCAT-3 > FCAT-2 with shrinking margins, every
column nearly flat in N.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.executor import SERIAL_PLAN, ExecutionPlan
from repro.experiments.protocols import table1_roster
from repro.experiments.runner import sweep
from repro.report.tables import MarkdownTable
from repro.sim.result import AggregateResult


def _default_n_values() -> list[int]:
    return [1000, 5000, 10000, 15000, 20000]


@dataclass(frozen=True)
class Table1Config:
    """Sweep settings; the paper uses N = 1000..20000 step 1000, 100 runs."""

    n_values: list[int] = field(default_factory=_default_n_values)
    runs: int = 10
    seed: int = 20100547  # ICDCS 2010, page 547

    @classmethod
    def paper_scale(cls, runs: int = 100) -> "Table1Config":
        return cls(n_values=list(range(1000, 20001, 1000)), runs=runs)


@dataclass
class Table1Result:
    config: Table1Config
    cells: dict[tuple[str, int], AggregateResult]
    protocol_names: list[str]
    table: MarkdownTable

    def throughput(self, protocol: str, n: int) -> float:
        return self.cells[(protocol, n)].throughput_mean

    def gain_over(self, baseline: str, challenger: str = "FCAT-2") -> list[float]:
        """Per-N relative throughput gain of ``challenger`` over ``baseline``."""
        return [self.throughput(challenger, n) / self.throughput(baseline, n)
                - 1.0
                for n in self.config.n_values]


def run_table1(config: Table1Config = Table1Config(),
               plan: ExecutionPlan = SERIAL_PLAN) -> Table1Result:
    protocols = table1_roster()
    cells = sweep(protocols, config.n_values, config.runs, config.seed,
                  jobs=plan.jobs, cache=plan.cache,
                  planner=plan.planner)
    names = [protocol.name for protocol in protocols]
    table = MarkdownTable(
        title="Table I -- reading throughput (tags/second)",
        headers=["N"] + names)
    for n in config.n_values:
        table.add_row(n, *[cells[(name, n)].throughput_mean for name in names])
    table.add_note(f"mean of {config.runs} runs per cell; paper averages 100")
    result = Table1Result(config=config, cells=cells, protocol_names=names,
                          table=table)
    gains = result.gain_over("DFSA")
    table.add_note(
        f"FCAT-2 gain over DFSA: {min(gains):.1%} .. {max(gains):.1%} "
        "(paper: 51.1% .. 55.6%)")
    return result
