"""Parallel, cached execution engine for experiment sweeps.

The paper's evaluation is embarrassingly parallel -- 100 independent runs
per (protocol, N) cell, dozens of independent cells per table -- yet the
seed discipline must survive the fan-out: run ``i`` of a cell must see the
``i``-th child of ``SeedSequence(cell_seed)`` no matter which process
computes it.  The engine therefore spawns every child seed *in the parent*
(:func:`repro.experiments.runner.spawn_run_seeds`), ships contiguous chunks
of children to a process pool, and reassembles the per-run results in serial
order before aggregating -- making ``jobs=N`` bit-for-bit identical to
``jobs=1``.

Chunked dispatch amortizes pickling: a task carries one protocol instance
plus a slice of child seeds instead of one pickle round-trip per run.  The
pool prefers ``fork`` (cheap, inherits the imported simulator) and falls
back to ``spawn`` where fork is unavailable; ``jobs=1`` -- or a platform
with no multiprocessing start method at all -- runs the exact serial loop.

On top sits the content-addressed result cache
(:mod:`repro.experiments.result_cache`): cells whose canonical spec hash is
already stored are served without simulating, and only the misses enter the
pool.  ``python -m repro.experiments --jobs N`` and ``scripts/bench.py``
drive this engine; `BENCH_3.json` records the measured speedups.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.experiments.result_cache import ResultCache, cell_key, run_range_key
from repro.experiments.runner import run_single, spawn_run_seeds
from repro.obs import scope
from repro.obs.manifest import CellRun
from repro.obs.scope import Observation
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import (
    AggregateResult,
    ReadingResult,
    RunMetrics,
    aggregate_metrics,
    run_metrics,
)

__all__ = [
    "CellSpec",
    "ChunkOutcome",
    "ExecutionPlan",
    "RunBatch",
    "default_jobs",
    "execute_cells",
    "execute_run_metrics",
    "run_chunk",
]


@dataclass(frozen=True)
class CellSpec:
    """One (protocol, N) cell: the unit of caching and of sweep fan-out."""

    protocol: TagReadingProtocol
    n_tags: int
    runs: int
    seed: int
    channel: ChannelModel = PERFECT_CHANNEL
    timing: TimingModel = ICODE_TIMING
    #: ``"scalar"`` (per-slot reference) or ``"kernel"`` (batched
    #: frame-at-once sessions, kernel-v2 seed semantics).  Part of the
    #: cache key: the engines are statistically, not bitwise, equivalent.
    engine: str = "scalar"
    #: First run index of this (possibly partial) cell.  A batch covering
    #: runs ``[run_start, run_start + runs)`` consumes exactly those
    #: ``SeedSequence`` children of the cell seed -- the planner's
    #: prefix-determinism contract rests on this slicing.
    run_start: int = 0

    def key(self) -> str:
        """The cell's content address (see ``result_cache.cell_key``)."""
        return cell_key(self.protocol, self.n_tags, self.runs, self.seed,
                        self.channel, self.timing, engine=self.engine,
                        run_start=self.run_start)

    def range_key(self) -> str:
        """The base address this cell's run-range entries file under."""
        return run_range_key(self.protocol, self.n_tags, self.seed,
                             self.channel, self.timing, engine=self.engine)


@dataclass(frozen=True)
class ExecutionPlan:
    """How to execute: worker count plus an optional result cache.

    Threaded through every ``run_*`` experiment function so the CLI's
    ``--jobs`` / ``--no-result-cache`` flags reach each ``sweep`` /
    ``run_cell`` call without widening every signature twice.
    """

    jobs: int = 1
    cache: ResultCache | None = field(default=None, compare=False)
    #: When set, ``execute_cells`` routes through the adaptive sequential
    #: planner (``repro.experiments.planner``) instead of the fixed budget.
    planner: "PlannerConfig | None" = field(default=None, compare=False)

    def describe(self) -> str:
        mode = f"{self.jobs} worker(s)" if self.jobs > 1 else "serial"
        described = f"{mode}, cache {'on' if self.cache is not None else 'off'}"
        if self.planner is not None:
            described += f", adaptive precision {self.planner.precision:g}"
        return described


#: The plan every experiment uses unless the caller supplies one.
SERIAL_PLAN = ExecutionPlan()


def default_jobs() -> int:
    """A sensible ``--jobs`` default: every core the scheduler grants us."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class _ChunkTask:
    """A contiguous slice of one cell's runs, shipped to one worker."""

    cell_index: int
    chunk_index: int
    protocol: TagReadingProtocol
    n_tags: int
    children: tuple[np.random.SeedSequence, ...]
    channel: ChannelModel
    timing: TimingModel
    #: Which engine computes the runs: ``"scalar"`` loops ``run_single``,
    #: ``"kernel"`` dispatches the chunk to ``repro.kernels.engine:
    #: run_batch`` (which itself falls back to ``run_single`` for
    #: unsupported configurations).
    engine: str = "scalar"
    #: Collect telemetry inside the worker and ship it back.  Decided in
    #: the parent (workers spawned without the parent's scope still know).
    collect: bool = False
    #: ``time.time()`` at task creation; queue wait is measured from here.
    submitted_unix: float = 0.0


@dataclass
class ChunkOutcome:
    """What one chunk returns: results plus worker-side telemetry.

    ``observation`` holds the metrics/events collected *inside* the worker
    (``None`` when observability is off); the parent folds these back in
    deterministic chunk order, and the metrics merge itself is
    order-independent, so telemetry never disturbs the parallel == serial
    bit-for-bit guarantee.
    """

    results: list[ReadingResult]
    observation: Observation | None
    duration_s: float
    queue_wait_s: float


def run_chunk(task: _ChunkTask) -> ChunkOutcome:
    """Worker entry point: run one chunk's sessions in seed order.

    Registered as a ``rng_public_roots`` seed root for the lint engine's
    R7 reachability walk: in a worker process this *is* the outermost frame
    above the seeded simulation path.
    """
    started = time.time()
    queue_wait = max(started - task.submitted_unix, 0.0) \
        if task.submitted_unix else 0.0
    observation: Observation | None = None
    if task.engine == "kernel":
        from repro.kernels.engine import run_batch

        def compute() -> list[ReadingResult]:
            return run_batch(task.protocol, task.n_tags, task.children,
                             channel=task.channel, timing=task.timing)
    else:
        def compute() -> list[ReadingResult]:
            return [run_single(task.protocol, task.n_tags, child,
                               channel=task.channel, timing=task.timing)
                    for child in task.children]
    if task.collect:
        # A private collector per chunk, whether this frame runs in a pool
        # worker or in-process: the parent merges outcomes identically
        # either way, so serial and parallel runs emit the same stream.
        with scope.observe() as observation:
            results = compute()
    else:
        results = compute()
    return ChunkOutcome(results=results, observation=observation,
                        duration_s=time.time() - started,
                        queue_wait_s=queue_wait)


def _chunk_tasks(specs: Sequence[CellSpec], indices: Sequence[int],
                 jobs: int, collect: bool = False) -> list[_ChunkTask]:
    """Split every pending cell's runs into chunks for the pool.

    Chunk boundaries are pure mechanics -- results are reassembled by
    ``(cell_index, chunk_index)`` into serial run order -- so the size only
    tunes pickling overhead vs load balance: aim for a few tasks per worker,
    never more chunks than runs.
    """
    total_runs = sum(specs[i].runs for i in indices)
    target_tasks = max(1, 4 * jobs)
    chunk_size = max(1, math.ceil(total_runs / target_tasks))
    submitted = time.time()
    tasks: list[_ChunkTask] = []
    for cell_index in indices:
        spec = specs[cell_index]
        # Children are indexed by spawn key, so spawning the full prefix and
        # slicing gives batch runs the exact seeds a fixed-budget run would:
        # spawn(m)[k:] == spawn(k + m')[k:] for any covering m.
        children = spawn_run_seeds(
            spec.seed, spec.run_start + spec.runs)[spec.run_start:]
        for chunk_index, start in enumerate(
                range(0, spec.runs, chunk_size)):
            tasks.append(_ChunkTask(
                cell_index=cell_index,
                chunk_index=chunk_index,
                protocol=spec.protocol,
                n_tags=spec.n_tags,
                children=tuple(children[start:start + chunk_size]),
                channel=spec.channel,
                timing=spec.timing,
                engine=spec.engine,
                collect=collect,
                submitted_unix=submitted,
            ))
    return tasks


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """Prefer fork (inherits the imported simulator); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


def _run_tasks(tasks: list[_ChunkTask], jobs: int,
               obs: Observation | None = None) -> list[ChunkOutcome]:
    """Run chunk tasks serially or across a pool; order follows ``tasks``."""
    context = _pool_context() if jobs > 1 else None
    if context is None or jobs <= 1 or len(tasks) <= 1:
        if obs is not None:
            obs.set_gauge("executor.workers", 1)
        return [run_chunk(task) for task in tasks]
    workers = min(jobs, len(tasks))
    if obs is not None:
        obs.set_gauge("executor.workers", workers)
        obs.emit("pool_start", workers=workers, tasks=len(tasks),
                 start_method=context.get_start_method())
    with context.Pool(processes=workers) as pool:
        return pool.map(run_chunk, tasks, chunksize=1)


def _record_cell(obs: Observation, spec: CellSpec, key: str,
                 elapsed_s: float, cached: bool) -> None:
    """One cell's manifest record plus its ``cell_done`` event."""
    obs.cells.append(CellRun(
        key=key, protocol=spec.protocol.name, n_tags=spec.n_tags,
        runs=spec.runs, seed=spec.seed, elapsed_s=elapsed_s, cached=cached))
    obs.emit("cell_done", key=key, protocol=spec.protocol.name,
             n_tags=spec.n_tags, runs=spec.runs, seed=spec.seed,
             elapsed_s=elapsed_s, cached=cached)


def _compute_pending(specs: Sequence[CellSpec], pending: Sequence[int],
                     jobs: int, obs: Observation | None,
                     ) -> dict[int, tuple[list[ReadingResult], float]]:
    """Simulate the pending cells; per-index results in serial run order.

    The shared fan-out/fold both :func:`execute_cells` and
    :func:`execute_run_metrics` rest on: chunk, dispatch, merge worker
    telemetry in deterministic task order, reassemble each cell's runs by
    ``(cell_index, chunk_index)``.
    """
    tasks = _chunk_tasks(specs, pending, jobs, collect=obs is not None)
    outcomes = _run_tasks(tasks, jobs, obs)
    per_cell: dict[int, list[tuple[int, ChunkOutcome]]] = {
        index: [] for index in pending}
    for task, outcome in zip(tasks, outcomes):
        per_cell[task.cell_index].append((task.chunk_index, outcome))
        if obs is not None:
            if outcome.observation is not None:
                # Deterministic task order here; the metrics fold is
                # commutative besides, so chunk completion order can
                # never leak into the merged registry.
                obs.merge(outcome.observation)
            obs.count("executor.chunks")
            obs.observe_value("chunk.duration_s", outcome.duration_s)
            obs.observe_value("chunk.queue_wait_s",
                              outcome.queue_wait_s)
            obs.emit("chunk_done", cell_index=task.cell_index,
                     chunk_index=task.chunk_index,
                     runs=len(task.children),
                     duration_s=outcome.duration_s,
                     queue_wait_s=outcome.queue_wait_s)
    folded: dict[int, tuple[list[ReadingResult], float]] = {}
    for index in pending:
        ordered: list[ReadingResult] = []
        elapsed = 0.0
        for _, outcome in sorted(per_cell[index], key=lambda pair: pair[0]):
            ordered.extend(outcome.results)
            elapsed += outcome.duration_s
        folded[index] = (ordered, elapsed)
    return folded


def execute_cells(specs: Sequence[CellSpec], jobs: int = 1,
                  cache: ResultCache | None = None,
                  planner: "PlannerConfig | None" = None,
                  ) -> list[AggregateResult]:
    """Compute every cell, in ``specs`` order, parallel- and cache-aware.

    The contract: the returned list is element-for-element identical to
    ``[aggregate([run_single(...) for child in spawn_run_seeds(...)])]`` --
    the serial loop -- for any ``jobs`` and any cache state.  Under an
    active ``repro.obs`` scope the executor additionally reports per-chunk
    worker accounting and per-cell timings -- including cache-served cells,
    which would otherwise leave no telemetry at all on a warm run.

    With ``planner`` set, dispatches to the adaptive sequential planner
    (:func:`repro.experiments.planner.plan_cells`): each cell then runs
    only until its confidence interval reaches the requested precision.

    A cache miss on the whole cell still consults the cache's *run-range*
    entries: a contiguous prefix left behind by an earlier planner run is
    reused and only the suffix is simulated -- bit-identically, because
    :func:`repro.sim.result.aggregate` is a pure function of the per-run
    :class:`RunMetrics` whoever computed them.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if planner is not None:
        from repro.experiments.planner import plan_cells
        return plan_cells(specs, planner, jobs=jobs, cache=cache)
    obs = scope.active()
    results: list[AggregateResult | None] = [None] * len(specs)
    pending: list[int] = []
    keys: dict[int, str] = {}
    #: index -> cached prefix metrics; the pool simulates only the suffix.
    prefixes: dict[int, list[RunMetrics]] = {}
    work: list[CellSpec] = list(specs)
    for index, spec in enumerate(specs):
        if cache is not None:
            keys[index] = spec.key()
            lookup_started = time.perf_counter()
            hit = cache.lookup(keys[index])  # emits cache_hit / cache_miss
            if hit is not None:
                results[index] = hit
                if obs is not None:
                    obs.count("executor.cells.cached")
                    _record_cell(obs, spec, keys[index],
                                 time.perf_counter() - lookup_started,
                                 cached=True)
                continue
            if spec.run_start == 0:
                prefix = cache.run_prefix(spec.range_key(), spec.runs)
                if len(prefix) >= spec.runs:
                    results[index] = aggregate_metrics(
                        spec.protocol.name, spec.n_tags, prefix[:spec.runs])
                    cache.store(keys[index], results[index])
                    if obs is not None:
                        obs.count("executor.cells.cached")
                        _record_cell(obs, spec, keys[index],
                                     time.perf_counter() - lookup_started,
                                     cached=True)
                    continue
                if prefix:
                    prefixes[index] = prefix
                    work[index] = dataclasses.replace(
                        spec, run_start=len(prefix),
                        runs=spec.runs - len(prefix))
        pending.append(index)
    if pending:
        folded = _compute_pending(work, pending, jobs, obs)
        for index in pending:
            ordered, elapsed = folded[index]
            computed = [run_metrics(result) for result in ordered]
            values = prefixes.get(index, []) + computed
            spec = specs[index]
            results[index] = aggregate_metrics(
                spec.protocol.name, spec.n_tags, values)
            if obs is not None:
                obs.count("executor.cells.computed")
                _record_cell(obs, spec, keys.get(index) or spec.key(),
                             elapsed, cached=False)
            if cache is not None:
                cache.store(keys[index], results[index])
                cache.store_runs(spec.range_key(), work[index].run_start,
                                 computed)
        if cache is not None:
            cache.save()
    return [result for result in results if result is not None]


@dataclass
class RunBatch:
    """One batch's per-run metrics plus where they came from."""

    values: list[RunMetrics]
    cached: bool
    elapsed_s: float = 0.0


def execute_run_metrics(specs: Sequence[CellSpec], jobs: int = 1,
                        cache: ResultCache | None = None) -> list[RunBatch]:
    """Compute per-run metric vectors for every (partial) cell in ``specs``.

    The planner's substrate: each spec is typically one batch -- runs
    ``[run_start, run_start + runs)`` of some cell -- and the returned
    vectors are exactly what :func:`repro.sim.result.aggregate_metrics`
    folds, so sequential stopping composes aggregates bit-identical to a
    fixed-budget run.  Batches already in the cache's run-range store are
    served without simulating; computed batches are stored for the next
    (warm or fixed-budget) run.  Manifest/cell accounting mirrors
    :func:`execute_cells`, with the batch's range-qualified key.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    obs = scope.active()
    batches: list[RunBatch | None] = [None] * len(specs)
    pending: list[int] = []
    for index, spec in enumerate(specs):
        if cache is not None:
            lookup_started = time.perf_counter()
            hit = cache.lookup_runs(spec.range_key(), spec.run_start,
                                    spec.run_start + spec.runs)
            if hit is not None:
                elapsed = time.perf_counter() - lookup_started
                batches[index] = RunBatch(values=hit, cached=True,
                                          elapsed_s=elapsed)
                if obs is not None:
                    obs.count("executor.batches.cached")
                    _record_cell(obs, spec, spec.key(), elapsed, cached=True)
                continue
        pending.append(index)
    if pending:
        folded = _compute_pending(specs, pending, jobs, obs)
        for index in pending:
            ordered, elapsed = folded[index]
            spec = specs[index]
            values = [run_metrics(result) for result in ordered]
            batches[index] = RunBatch(values=values, cached=False,
                                      elapsed_s=elapsed)
            if obs is not None:
                obs.count("executor.batches.computed")
                _record_cell(obs, spec, spec.key(), elapsed, cached=False)
            if cache is not None:
                cache.store_runs(spec.range_key(), spec.run_start, values)
        if cache is not None:
            cache.save()
    return [batch for batch in batches if batch is not None]
