"""Experiment runners: one module per paper table/figure plus ablations.

Every runner is a pure function from an explicit config to a result object
carrying both raw numbers (for tests and benchmarks) and rendered markdown /
ASCII output (for reports).  ``python -m repro.experiments`` drives them from
the command line; EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments.executor import (
    CellSpec,
    ExecutionPlan,
    RunBatch,
    default_jobs,
    execute_cells,
    execute_run_metrics,
)
from repro.experiments.planner import (
    PlannerConfig,
    PlannerStats,
    Welford,
    plan_cells,
)
from repro.experiments.result_cache import ResultCache, cell_key, run_range_key
from repro.experiments.runner import (
    rng_from_seed,
    run_cell,
    run_single,
    spawn_run_seeds,
    sweep,
)
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.table3 import Table3Config, run_table3
from repro.experiments.table4 import Table4Config, run_table4
from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.fig5 import Fig5Config, run_fig5
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.ablations import (
    AblationCaptureConfig,
    AblationChurnConfig,
    AblationEnergyConfig,
    AblationNoiseConfig,
    AblationPrestepConfig,
    AblationSnrConfig,
    CrdsaComparisonConfig,
    run_ablation_capture,
    run_ablation_churn,
    run_ablation_energy,
    run_ablation_noise,
    run_ablation_prestep,
    run_ablation_snr,
    run_crdsa_comparison,
)

__all__ = [
    "CellSpec",
    "ExecutionPlan",
    "PlannerConfig",
    "PlannerStats",
    "ResultCache",
    "RunBatch",
    "Welford",
    "cell_key",
    "default_jobs",
    "execute_cells",
    "execute_run_metrics",
    "plan_cells",
    "rng_from_seed",
    "run_range_key",
    "run_cell",
    "run_single",
    "spawn_run_seeds",
    "sweep",
    "Table1Config",
    "run_table1",
    "Table2Config",
    "run_table2",
    "Table3Config",
    "run_table3",
    "Table4Config",
    "run_table4",
    "Fig3Config",
    "run_fig3",
    "Fig4Config",
    "run_fig4",
    "Fig5Config",
    "run_fig5",
    "Fig6Config",
    "run_fig6",
    "AblationCaptureConfig",
    "AblationChurnConfig",
    "AblationEnergyConfig",
    "AblationNoiseConfig",
    "AblationPrestepConfig",
    "AblationSnrConfig",
    "CrdsaComparisonConfig",
    "run_ablation_capture",
    "run_ablation_churn",
    "run_ablation_energy",
    "run_ablation_noise",
    "run_ablation_prestep",
    "run_ablation_snr",
    "run_crdsa_comparison",
]
