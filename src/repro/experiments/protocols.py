"""Protocol rosters used by the experiments (paper section VI preamble)."""

from __future__ import annotations

from repro.baselines import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    Dfsa,
    Edfsa,
)
from repro.core import Fcat
from repro.sim.base import TagReadingProtocol

#: Frame size used throughout the paper's evaluation.
PAPER_FRAME_SIZE = 30


def fcat_variants(frame_size: int = PAPER_FRAME_SIZE,
                  lams: tuple[int, ...] = (2, 3, 4)) -> list[TagReadingProtocol]:
    """FCAT-2/3/4 with the paper's frame size and optimal loads."""
    return [Fcat(lam=lam, frame_size=frame_size) for lam in lams]


def baseline_roster() -> list[TagReadingProtocol]:
    """The four baselines of Table I: DFSA, EDFSA, ABS, AQS."""
    return [Dfsa(), Edfsa(), AdaptiveBinarySplitting(),
            AdaptiveQuerySplitting()]


def table1_roster(frame_size: int = PAPER_FRAME_SIZE) -> list[TagReadingProtocol]:
    """Everything Table I compares, in the paper's column order."""
    return fcat_variants(frame_size) + baseline_roster()
