"""Ablation experiments beyond the paper's tables.

* **A1 (SNR)** -- signal-level resolvability: at which SNR does subtracting
  ``k-1`` known MSK waveforms from a ``k``-mix still CRC-verify?  This is the
  evidence behind the protocol level's ``k <= lambda`` rule and the paper's
  choice of small lambda.
* **A2 (noise)** -- protocol-level sensitivity: FCAT throughput as the
  fraction of unresolvable collision records grows (section IV-E argues the
  protocol degrades gracefully towards plain ALOHA).
* **A3 (CRDSA)** -- the related satellite protocol with successive
  interference cancellation, run on the paper's workload for context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.air.ids import generate_tag_ids, id_to_bits
from repro.baselines.crdsa import Crdsa
from repro.baselines.dfsa import Dfsa
from repro.core import Fcat, Scat
from repro.experiments.executor import (
    SERIAL_PLAN,
    CellSpec,
    ExecutionPlan,
    execute_cells,
)
from repro.experiments.runner import rng_from_seed, run_cell
from repro.phy import (
    awgn,
    least_squares_cancel,
    mix_signals,
    msk_modulate,
    random_channel,
    resolve_collision,
)
from repro.report.ascii_chart import AsciiChart
from repro.report.tables import MarkdownTable
from repro.sim.channel import ChannelModel
from repro.sim.result import AggregateResult


# -- A1: signal-level resolvability vs SNR ---------------------------------

def _default_snrs() -> list[float]:
    return [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0]


@dataclass(frozen=True)
class AblationSnrConfig:
    ks: tuple[int, ...] = (2, 3, 4)
    snr_db_values: list[float] = field(default_factory=_default_snrs)
    trials: int = 30
    samples_per_bit: int = 4
    #: "estimated": cancel via per-constituent complex-gain estimation (the
    #: realistic decoder; error grows with k).  "coherent": subtract the
    #: exact stored waveforms (the paper's static-channel idealization; k
    #: barely matters because subtraction is perfect).
    mode: str = "estimated"
    seed: int = 20100555


@dataclass
class AblationSnrResult:
    config: AblationSnrConfig
    #: k -> success-rate curve over the SNR grid.
    curves: dict[int, list[float]]
    chart: AsciiChart


def resolvability_rate(k: int, snr_db: float, trials: int,
                       samples_per_bit: int, rng: np.random.Generator,
                       mode: str = "estimated") -> float:
    """Fraction of k-collisions resolved after cancelling k-1 known tags."""
    if mode not in ("estimated", "coherent"):
        raise ValueError(f"unknown mode {mode!r}")
    successes = 0
    for _ in range(trials):
        ids = generate_tag_ids(k, rng)
        bit_frames = [id_to_bits(tag) for tag in ids]
        waveforms = [
            random_channel(rng).apply(
                msk_modulate(bits, samples_per_bit=samples_per_bit))
            for bits in bit_frames
        ]
        mixed = awgn(mix_signals(waveforms), snr_db, rng)
        if mode == "coherent":
            recovered = resolve_collision(mixed, waveforms[:-1],
                                          samples_per_bit=samples_per_bit)
        else:
            recovered = least_squares_cancel(mixed, bit_frames[:-1],
                                             samples_per_bit=samples_per_bit)
        if recovered is not None:
            successes += 1
    return successes / trials


def run_ablation_snr(config: AblationSnrConfig = AblationSnrConfig()
                     ) -> AblationSnrResult:
    rng = rng_from_seed(config.seed)
    chart = AsciiChart(title="A1 -- ANC resolvability vs SNR",
                       x_label="SNR (dB)", y_label="resolve rate")
    curves: dict[int, list[float]] = {}
    for k in config.ks:
        curve = [resolvability_rate(k, snr, config.trials,
                                    config.samples_per_bit, rng,
                                    mode=config.mode)
                 for snr in config.snr_db_values]
        curves[k] = curve
        chart.add_series(f"k={k}", np.asarray(config.snr_db_values),
                         np.asarray(curve))
    return AblationSnrResult(config=config, curves=curves, chart=chart)


# -- A2: FCAT under unresolvable collision records --------------------------

def _default_loss_grid() -> list[float]:
    return [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]


@dataclass(frozen=True)
class AblationNoiseConfig:
    lam: int = 2
    loss_probabilities: list[float] = field(default_factory=_default_loss_grid)
    n_tags: int = 5000
    runs: int = 3
    seed: int = 20100556


@dataclass
class AblationNoiseResult:
    config: AblationNoiseConfig
    throughputs: list[float]
    dfsa_throughput: float
    table: MarkdownTable


def run_ablation_noise(config: AblationNoiseConfig = AblationNoiseConfig(),
                       plan: ExecutionPlan = SERIAL_PLAN
                       ) -> AblationNoiseResult:
    table = MarkdownTable(
        title=f"A2 -- FCAT-{config.lam} vs unresolvable-record probability "
              f"(N = {config.n_tags})",
        headers=["P(record unusable)", "throughput (tags/s)"])
    specs = [
        CellSpec(protocol=Fcat(lam=config.lam), n_tags=config.n_tags,
                 runs=config.runs, seed=config.seed + index,
                 channel=ChannelModel(collision_unusable_prob=q))
        for index, q in enumerate(config.loss_probabilities)
    ]
    cells = execute_cells(specs, jobs=plan.jobs, cache=plan.cache,
                          planner=plan.planner)
    throughputs = [cell.throughput_mean for cell in cells]
    for q, cell in zip(config.loss_probabilities, cells):
        table.add_row(f"{q:.2f}", cell.throughput_mean)
    dfsa = run_cell(Dfsa(), config.n_tags, config.runs, config.seed + 999,
                    jobs=plan.jobs, cache=plan.cache,
                    planner=plan.planner)
    table.add_note(
        f"DFSA reference: {dfsa.throughput_mean:.1f} tags/s. With all records "
        "useless FCAT lands *below* DFSA because its load omega = 1.414 "
        "overshoots the ALOHA optimum of 1.0 -- exactly why section IV-E "
        "advises falling back to a contention-only protocol in environments "
        "where collision slots cannot be resolved")
    return AblationNoiseResult(config=config, throughputs=throughputs,
                               dfsa_throughput=dfsa.throughput_mean,
                               table=table)


# -- A4: capture effect ------------------------------------------------------

def _default_capture_grid() -> list[float]:
    return [0.0, 0.2, 0.4, 0.6, 0.8]


@dataclass(frozen=True)
class AblationCaptureConfig:
    capture_probabilities: list[float] = field(
        default_factory=_default_capture_grid)
    n_tags: int = 3000
    runs: int = 3
    seed: int = 20100558


@dataclass
class AblationCaptureResult:
    config: AblationCaptureConfig
    #: protocol label -> throughput curve over the capture grid.
    curves: dict[str, list[float]]
    table: MarkdownTable


def run_ablation_capture(config: AblationCaptureConfig = AblationCaptureConfig(),
                         plan: ExecutionPlan = SERIAL_PLAN
                         ) -> AblationCaptureResult:
    """Capture effect: who benefits, and which estimator survives it.

    Captured slots read as singletons, silently deflating the collision
    count FCAT's paper estimator inverts; the empty-count source is immune.
    """
    protocols = {
        "FCAT-2 (collision est.)": lambda: Fcat(lam=2),
        "FCAT-2 (empty est.)": lambda: Fcat(lam=2, estimator_source="empty"),
        "DFSA": Dfsa,
    }
    table = MarkdownTable(
        title=f"A4 -- throughput vs capture probability (N = {config.n_tags})",
        headers=["P(capture)"] + list(protocols))
    specs = [
        CellSpec(protocol=factory(), n_tags=config.n_tags, runs=config.runs,
                 seed=config.seed + 101 * index + 10_007 * column,
                 channel=ChannelModel(capture_prob=capture))
        for index, capture in enumerate(config.capture_probabilities)
        for column, factory in enumerate(protocols.values())
    ]
    cells = iter(execute_cells(specs, jobs=plan.jobs, cache=plan.cache,
                               planner=plan.planner))
    curves: dict[str, list[float]] = {label: [] for label in protocols}
    for capture in config.capture_probabilities:
        row: list[float] = []
        for label in protocols:
            cell = next(cells)
            curves[label].append(cell.throughput_mean)
            row.append(cell.throughput_mean)
        table.add_row(f"{capture:.1f}", *row)
    table.add_note("capture converts collision slots into apparent "
                   "singletons: it biases the collision-count estimator "
                   "(section V-C) hot, while the empty-count variant "
                   "keeps the load calibrated")
    return AblationCaptureResult(config=config, curves=curves, table=table)


# -- A5: SCAT's pre-step vs FCAT's embedded estimator ------------------------

@dataclass(frozen=True)
class AblationPrestepConfig:
    n_tags: int = 5000
    target_cvs: tuple[float, ...] = (0.2, 0.05, 0.01)
    runs: int = 3
    seed: int = 20100559


@dataclass
class AblationPrestepResult:
    config: AblationPrestepConfig
    scat_oracle: float
    scat_prestep: dict[float, float]
    fcat: float
    table: MarkdownTable


def run_ablation_prestep(config: AblationPrestepConfig = AblationPrestepConfig(),
                         plan: ExecutionPlan = SERIAL_PLAN
                         ) -> AblationPrestepResult:
    """What removing the pre-step buys (paper section V-A, first point).

    SCAT needs the tag count up front; the Kodialam-Nandagopal probe frames
    that provide it cost air time that grows as the demanded accuracy
    tightens.  FCAT's embedded estimator gets the count for free.
    """
    table = MarkdownTable(
        title=f"A5 -- the cost of SCAT's pre-step (N = {config.n_tags})",
        headers=["protocol", "throughput (tags/s)"])
    specs = [CellSpec(protocol=Scat(lam=2), n_tags=config.n_tags,
                      runs=config.runs, seed=config.seed)]
    specs += [
        CellSpec(protocol=Scat(lam=2, pre_estimate_cv=cv),
                 n_tags=config.n_tags, runs=config.runs,
                 seed=config.seed + index + 1)
        for index, cv in enumerate(config.target_cvs)
    ]
    specs.append(CellSpec(protocol=Fcat(lam=2), n_tags=config.n_tags,
                          runs=config.runs, seed=config.seed + 99))
    cells = execute_cells(specs, jobs=plan.jobs, cache=plan.cache,
                          planner=plan.planner)
    oracle, fcat = cells[0], cells[-1]
    table.add_row("SCAT-2 (oracle count)", oracle.throughput_mean)
    prestep: dict[float, float] = {}
    for cv, cell in zip(config.target_cvs, cells[1:-1]):
        prestep[cv] = cell.throughput_mean
        table.add_row(f"SCAT-2 (pre-step, cv = {cv:g})", cell.throughput_mean)
    table.add_row("FCAT-2 (embedded estimator)", fcat.throughput_mean)
    table.add_note("FCAT needs no pre-step and still beats oracle SCAT: the "
                   "framing removes per-slot advertisements too (section V-A)")
    return AblationPrestepResult(config=config,
                                 scat_oracle=oracle.throughput_mean,
                                 scat_prestep=prestep,
                                 fcat=fcat.throughput_mean, table=table)


# -- A6: continuous monitoring under churn ------------------------------------

def _default_dwells() -> list[float]:
    return [120.0, 60.0, 30.0, 15.0, 8.0, 4.0]


@dataclass(frozen=True)
class AblationChurnConfig:
    initial_tags: int = 500
    arrival_rate: float = 5.0
    mean_dwells_s: list[float] = field(default_factory=_default_dwells)
    duration_s: float = 60.0
    seed: int = 20100560


@dataclass
class AblationChurnResult:
    config: AblationChurnConfig
    detection_fractions: list[float]
    mean_latencies: list[float]
    stale_reads: list[int]
    table: MarkdownTable


def run_ablation_churn(config: AblationChurnConfig = AblationChurnConfig()
                       ) -> AblationChurnResult:
    """Mobility boundary (section IV-E): detection vs dwell time.

    Tags arrive continuously and dwell for an exponential time; a monitoring
    FCAT reader must catch each one before it leaves.  Detection stays near
    1 while dwell times dwarf the per-tag reading latency and collapses as
    they approach it -- quantifying the paper's static-tags assumption.
    """
    from repro.dynamics import ChurnModel, FcatMonitor, MonitoringConfig
    from repro.sim.population import TagPopulation

    table = MarkdownTable(
        title=f"A6 -- monitoring a churning population "
              f"({config.initial_tags} initial tags, "
              f"{config.arrival_rate:g} arrivals/s, "
              f"{config.duration_s:g}s budget)",
        headers=["mean dwell (s)", "detection fraction",
                 "mean latency (s)", "stale reads"])
    detection, latencies, stale = [], [], []
    monitor = FcatMonitor(MonitoringConfig(duration_s=config.duration_s))
    for index, dwell in enumerate(config.mean_dwells_s):
        rng = rng_from_seed(config.seed + index)
        population = TagPopulation.random(config.initial_tags, rng)
        churn = ChurnModel(arrival_rate=config.arrival_rate,
                           mean_dwell_s=dwell)
        result = monitor.run(population, churn, rng)
        mean_latency, _ = result.latency_stats()
        detection.append(result.detection_fraction)
        latencies.append(mean_latency)
        stale.append(result.stale_reads)
        table.add_row(dwell, result.detection_fraction, mean_latency,
                      result.stale_reads)
    table.add_note("detection collapses once dwell times approach the "
                   "per-tag reading latency -- the quantified version of "
                   "section IV-E's static-tags assumption")
    return AblationChurnResult(config=config, detection_fractions=detection,
                               mean_latencies=latencies, stale_reads=stale,
                               table=table)


# -- A7: tag-side energy ------------------------------------------------------

@dataclass(frozen=True)
class AblationEnergyConfig:
    n_tags: int = 3000
    runs: int = 3
    tx_power_w: float = 10e-3
    seed: int = 20100561


@dataclass
class AblationEnergyResult:
    config: AblationEnergyConfig
    #: protocol -> (transmissions/tag, uJ/tag, tags/s).
    rows: dict[str, tuple[float, float, float]]
    table: MarkdownTable


def run_ablation_energy(config: AblationEnergyConfig = AblationEnergyConfig()
                        ) -> AblationEnergyResult:
    """Battery cost per tag (the paper's active tags pay per broadcast).

    Closed forms: FCAT expects ``omega / P_useful`` broadcasts per tag
    (~2.4 for lambda 2), DFSA expects ``e ~ 2.72``, tree protocols
    ``~log2(N)`` -- so collision-aware reading is also the gentlest on
    batteries, and the gap to trees *grows* with the population.
    """
    from repro.analysis.energy import (
        energy_per_tag_joules,
        transmissions_per_tag,
    )
    from repro.baselines.abs_protocol import AdaptiveBinarySplitting
    from repro.baselines.aqs import AdaptiveQuerySplitting
    from repro.baselines.gen2_q import Gen2Q
    from repro.experiments.runner import run_cell  # noqa: F401  (doc link)
    from repro.sim.population import TagPopulation

    protocols = [
        Fcat(lam=2, initial_estimate=float(config.n_tags)),
        Fcat(lam=4, initial_estimate=float(config.n_tags)),
        Dfsa(),
        Gen2Q(),
        AdaptiveBinarySplitting(),
        AdaptiveQuerySplitting(),
    ]
    table = MarkdownTable(
        title=f"A7 -- tag battery cost (N = {config.n_tags}, "
              f"{config.tx_power_w * 1e3:g} mW transmit power)",
        headers=["protocol", "broadcasts/tag", "uJ/tag", "tags/s"])
    rows: dict[str, tuple[float, float, float]] = {}
    for index, protocol in enumerate(protocols):
        transmissions = []
        joules = []
        throughputs = []
        for run in range(config.runs):
            rng = rng_from_seed(config.seed + 31 * index + run)
            population = TagPopulation.random(config.n_tags, rng)
            result = protocol.read_all(population, rng)
            transmissions.append(transmissions_per_tag(result))
            joules.append(energy_per_tag_joules(result,
                                                config.tx_power_w) * 1e6)
            throughputs.append(result.throughput)
        row = (float(np.mean(transmissions)), float(np.mean(joules)),
               float(np.mean(throughputs)))
        rows[protocol.name] = row
        table.add_row(protocol.name, round(row[0], 2), round(row[1], 1),
                      round(row[2], 1))
    table.add_note("FCAT sessions are seeded with the count here; the blind "
                   "bootstrap costs each tag about one extra broadcast "
                   "(see tests/analysis/test_energy.py)")
    return AblationEnergyResult(config=config, rows=rows, table=table)


# -- A3: CRDSA comparison ----------------------------------------------------

@dataclass(frozen=True)
class CrdsaComparisonConfig:
    n_values: tuple[int, ...] = (1000, 5000, 10000)
    runs: int = 3
    seed: int = 20100557


@dataclass
class CrdsaComparisonResult:
    config: CrdsaComparisonConfig
    cells: dict[tuple[str, int], AggregateResult]
    table: MarkdownTable


def run_crdsa_comparison(config: CrdsaComparisonConfig = CrdsaComparisonConfig(),
                         plan: ExecutionPlan = SERIAL_PLAN
                         ) -> CrdsaComparisonResult:
    protocols = [Fcat(lam=2), Crdsa(), Dfsa()]
    cells: dict[tuple[str, int], AggregateResult] = {}
    table = MarkdownTable(
        title="A3 -- FCAT-2 vs CRDSA vs DFSA (tags/second)",
        headers=["N"] + [protocol.name for protocol in protocols])
    specs = [
        CellSpec(protocol=protocol, n_tags=n, runs=config.runs,
                 seed=config.seed + 101 * row + 10_007 * column)
        for row, n in enumerate(config.n_values)
        for column, protocol in enumerate(protocols)
    ]
    flat = iter(execute_cells(specs, jobs=plan.jobs, cache=plan.cache,
                              planner=plan.planner))
    for n in config.n_values:
        values = []
        for protocol in protocols:
            cell = next(flat)
            cells[(protocol.name, n)] = cell
            values.append(cell.throughput_mean)
        table.add_row(n, *values)
    table.add_note("CRDSA mines collisions with replica cancellation inside "
                   "one frame; FCAT's cross-frame ANC records reach further")
    return CrdsaComparisonResult(config=config, cells=cells, table=table)
