"""Content-addressed cache for sweep cell results.

Paper-scale reproduction re-derives identical (protocol, N) cells on every
invocation -- Tables I-III share rosters, the bench harness re-times the same
cells, and a ``--paper-scale --runs 100`` rerun after an unrelated doc edit
repeats hours of simulation.  Every cell is a pure function of its spec, so
its :class:`~repro.sim.result.AggregateResult` can be served by content
address instead.

The key is a SHA-256 over a *canonical fingerprint* of the spec: protocol
class + config fields, ``n_tags``, ``runs``, ``seed``, channel knobs and
timing constants, all rendered to sorted-key JSON (modeled on the devtools
lint cache from ``repro.devtools.cache``).  The store is one JSON file,
``.repro-results-cache.json`` (git-ignored), invalidated as a whole by its
*signature*: schema version, ``repro.__version__`` and a digest of the
simulator source tree -- so editing any protocol, channel or codec never
replays stale numbers.  Corrupt or unreadable files are treated as empty:
the cache can only ever make a run faster, never wrong.

Schema 2 adds **partial-batch entries**: per-run
:class:`~repro.sim.result.RunMetrics` vectors keyed by the run-seed range
``[start, stop)`` under a *range base key* (the cell fingerprint minus
``runs``).  The adaptive sweep planner stores each batch it simulates here,
a warm planner run resumes from the cached prefix, and a later fixed-budget
run reassembles full cells from planner batches -- bit-identically, because
run ``i``'s metrics are a pure function of the cell config and the ``i``-th
``SeedSequence`` child, whoever computed them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.air.timing import TimingModel
from repro.obs import scope
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import ChannelModel
from repro.sim.result import AggregateResult, RunMetrics

#: Bump when the fingerprint layout or the stored-result shape changes.
#: 2: partial-batch run-range entries (the adaptive planner's substrate).
RESULT_CACHE_SCHEMA = 2

DEFAULT_RESULT_CACHE_NAME = ".repro-results-cache.json"

#: Subpackages whose source feeds the cache signature: everything a cell
#: result can depend on.  ``devtools`` (the linter) and ``report``
#: (rendering) cannot change an ``AggregateResult``, so they are excluded
#: and editing them keeps the cache warm.
_SIGNATURE_EXCLUDED_PACKAGES = ("devtools", "report")

_source_digest_memo: str | None = None


def _iter_signature_sources() -> list[Path]:
    package_root = Path(__file__).resolve().parent.parent
    paths = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        if relative.parts and relative.parts[0] in _SIGNATURE_EXCLUDED_PACKAGES:
            continue
        if "__pycache__" in relative.parts:
            continue
        paths.append(path)
    return paths


def package_signature() -> str:
    """Digest of the simulator's version plus its source tree.

    Any edit to the packages that can influence a cell result -- protocols,
    channel, codecs, the runner's seed derivation -- changes this signature
    and therefore empties the cache.  Computed once per process.
    """
    global _source_digest_memo
    if _source_digest_memo is None:
        import repro
        digest = hashlib.sha256()
        digest.update(f"{RESULT_CACHE_SCHEMA}|{repro.__version__}|".encode())
        for path in _iter_signature_sources():
            digest.update(str(path.name).encode())
            digest.update(path.read_bytes())
        _source_digest_memo = digest.hexdigest()
    return _source_digest_memo


def canonical_fingerprint(value: object) -> object:
    """Reduce ``value`` to a JSON-able structure with a stable rendering.

    Dataclasses become ``{"<qualname>": {field: fingerprint...}}``; other
    objects (protocol instances are plain classes over a config dataclass)
    contribute their class qualname plus their instance ``__dict__``.  Floats
    round-trip through ``repr`` inside JSON, so distinct configs never
    collide and equal configs always agree.
    """
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonical_fingerprint(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [canonical_fingerprint(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical_fingerprint(item)
                for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: canonical_fingerprint(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {type(value).__qualname__: fields}
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {type(value).__qualname__: canonical_fingerprint(dict(state))}
    return {type(value).__qualname__: repr(value)}


def cell_key(protocol: TagReadingProtocol, n_tags: int, runs: int, seed: int,
             channel: ChannelModel, timing: TimingModel,
             engine: str = "scalar", run_start: int = 0) -> str:
    """The content address of one cell: SHA-256 of its canonical spec.

    The engine is part of the address -- scalar and kernel cells follow
    the same process law but different draw orders, so their aggregates
    differ bitwise and must never serve each other.  The default scalar
    engine (and the default ``run_start`` of a whole cell) is omitted from
    the payload to keep pre-existing keys stable.
    """
    spec = {
        "protocol": canonical_fingerprint(protocol),
        "n_tags": n_tags,
        "runs": runs,
        "seed": seed,
        "channel": canonical_fingerprint(channel),
        "timing": canonical_fingerprint(timing),
    }
    if engine != "scalar":
        spec["engine"] = engine
    if run_start:
        spec["run_start"] = run_start
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_range_key(protocol: TagReadingProtocol, n_tags: int, seed: int,
                  channel: ChannelModel, timing: TimingModel,
                  engine: str = "scalar") -> str:
    """The base address partial-batch entries of one cell share.

    Identical to :func:`cell_key` minus ``runs``/``run_start``: every batch
    of the same (protocol, N, seed, channel, timing, engine) cell -- whatever
    range it covers -- files under this key, with the ``[start, stop)``
    range as the sub-key.  A ``kind`` marker keeps the namespace disjoint
    from full-cell addresses.
    """
    spec = {
        "kind": "run-range",
        "protocol": canonical_fingerprint(protocol),
        "n_tags": n_tags,
        "seed": seed,
        "channel": canonical_fingerprint(channel),
        "timing": canonical_fingerprint(timing),
    }
    if engine != "scalar":
        spec["engine"] = engine
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _range_to_label(span: tuple[int, int]) -> str:
    return f"{span[0]}-{span[1]}"


def _range_from_label(label: str) -> tuple[int, int]:
    start, stop = label.split("-")
    return int(start), int(stop)


def _result_to_dict(result: AggregateResult) -> dict:
    return {f.name: getattr(result, f.name)
            for f in dataclasses.fields(AggregateResult)}


def _result_from_dict(data: dict) -> AggregateResult:
    return AggregateResult(**{f.name: data[f.name]
                              for f in dataclasses.fields(AggregateResult)})


class ResultCache:
    """Keyed store of ``AggregateResult``s with hit/miss accounting.

    Besides whole-cell aggregates the cache holds **run-range entries**:
    per-run :class:`RunMetrics` vectors under ``(range base key, start,
    stop)``, written batch-by-batch by the adaptive planner and by the
    executor for every cell it computes.  ``run_prefix`` stitches stored
    ranges into the longest contiguous run prefix -- what both a resuming
    planner and a fixed-budget rerun consume.
    """

    def __init__(self, path: Path | str = DEFAULT_RESULT_CACHE_NAME,
                 signature: str | None = None) -> None:
        self.path = Path(path)
        self.signature = signature if signature is not None \
            else package_signature()
        self.hits = 0
        self.misses = 0
        self.run_hits = 0
        self.run_misses = 0
        self._entries: dict[str, AggregateResult] = {}
        #: base key -> {(start, stop) -> per-run metric vectors}.
        self._runs: dict[str, dict[tuple[int, int], list[RunMetrics]]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except OSError:
            return  # no cache file yet: a cold start, not an invalidation
        except ValueError:
            scope.emit("cache_invalidated", path=str(self.path),
                       reason="unparseable cache file")
            return
        if not isinstance(payload, dict) \
                or payload.get("signature") != self.signature:
            scope.emit("cache_invalidated", path=str(self.path),
                       reason="signature mismatch (source tree or schema "
                              "changed)")
            return
        try:
            self._entries = {
                key: _result_from_dict(entry)
                for key, entry in payload.get("entries", {}).items()}
            self._runs = {
                key: {_range_from_label(label):
                      [RunMetrics.from_list(row) for row in rows]
                      for label, rows in spans.items()}
                for key, spans in payload.get("runs", {}).items()}
        except (KeyError, TypeError, ValueError):
            self._entries = {}
            self._runs = {}
            scope.emit("cache_invalidated", path=str(self.path),
                       reason="entry shape mismatch")

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> AggregateResult | None:
        """Serve ``key`` if stored; every probe is counted and emitted.

        The hit path still reports telemetry: a warm run short-circuits the
        simulation, so without these events observability would go dark
        exactly when the cache is doing its job.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            scope.inc("result_cache.hits")
            scope.emit("cache_hit", key=key)
            return entry
        self.misses += 1
        scope.inc("result_cache.misses")
        scope.emit("cache_miss", key=key)
        return None

    def store(self, key: str, result: AggregateResult) -> None:
        self._entries[key] = result
        self._dirty = True

    # -- run-range (partial batch) entries ---------------------------------

    def lookup_runs(self, key: str, start: int,
                    stop: int) -> list[RunMetrics] | None:
        """Serve the run range ``[start, stop)`` of base ``key``.

        Any stored span covering the request serves it (run ``i``'s
        metrics are identical whoever computed them), so planner batches
        resume from an earlier fixed-budget write just as a fixed-budget
        run resumes from planner batches.
        """
        spans = self._runs.get(key, {})
        values = spans.get((start, stop))
        if values is None:
            for (span_start, span_stop), stored in spans.items():
                if span_start <= start and span_stop >= stop:
                    values = stored[start - span_start:stop - span_start]
                    break
        if values is not None:
            self.run_hits += 1
            scope.inc("result_cache.run_hits")
            scope.emit("cache_hit", key=f"{key}:{start}:{stop}")
            return list(values)
        self.run_misses += 1
        scope.inc("result_cache.run_misses")
        scope.emit("cache_miss", key=f"{key}:{start}:{stop}")
        return None

    def store_runs(self, key: str, start: int,
                   values: list[RunMetrics]) -> None:
        """File ``values`` as runs ``[start, start + len(values))``."""
        if not values:
            return
        self._runs.setdefault(key, {})[(start, start + len(values))] = \
            list(values)
        self._dirty = True

    def run_prefix(self, key: str, limit: int) -> list[RunMetrics]:
        """The longest contiguous run prefix stored under base ``key``.

        Stored ranges may overlap (a planner batch and a later full-cell
        write cover the same runs); any covering range serves, because run
        ``i``'s metrics are identical whoever computed them.  At most
        ``limit`` runs are returned.
        """
        spans = self._runs.get(key)
        if not spans:
            return []
        ordered = sorted(spans.items())
        prefix: list[RunMetrics] = []
        position = 0
        while position < limit:
            best_stop = position
            best: tuple[tuple[int, int], list[RunMetrics]] | None = None
            for (start, stop), values in ordered:
                if start > position:
                    break
                if stop > best_stop:
                    best_stop = stop
                    best = ((start, stop), values)
            if best is None:
                break
            (start, _), values = best
            prefix.extend(values[position - start:limit - start])
            position = min(best_stop, limit)
        return prefix

    def save(self) -> None:
        """Persist all entries; a no-op unless something was stored."""
        if not self._dirty:
            return
        payload = {
            "signature": self.signature,
            "entries": {key: _result_to_dict(entry)
                        for key, entry in sorted(self._entries.items())},
            "runs": {key: {_range_to_label(span):
                           [value.to_list() for value in values]
                           for span, values in sorted(spans.items())}
                     for key, spans in sorted(self._runs.items())},
        }
        try:
            self.path.write_text(json.dumps(payload), encoding="utf-8")
            self._dirty = False
        except OSError:
            pass  # a read-only checkout just runs cold every time

    def stats(self) -> str:
        """One-line hit/miss summary for CLI surfacing."""
        ranges = sum(len(spans) for spans in self._runs.values())
        return (f"result cache: {self.hits} hits / {self.misses} misses, "
                f"{self.run_hits}/{self.run_misses} run-range hits/misses "
                f"({len(self._entries)} cells + {ranges} ranges "
                f"in {self.path})")
