"""Content-addressed cache for sweep cell results.

Paper-scale reproduction re-derives identical (protocol, N) cells on every
invocation -- Tables I-III share rosters, the bench harness re-times the same
cells, and a ``--paper-scale --runs 100`` rerun after an unrelated doc edit
repeats hours of simulation.  Every cell is a pure function of its spec, so
its :class:`~repro.sim.result.AggregateResult` can be served by content
address instead.

The key is a SHA-256 over a *canonical fingerprint* of the spec: protocol
class + config fields, ``n_tags``, ``runs``, ``seed``, channel knobs and
timing constants, all rendered to sorted-key JSON (modeled on the devtools
lint cache from ``repro.devtools.cache``).  The store is one JSON file,
``.repro-results-cache.json`` (git-ignored), invalidated as a whole by its
*signature*: schema version, ``repro.__version__`` and a digest of the
simulator source tree -- so editing any protocol, channel or codec never
replays stale numbers.  Corrupt or unreadable files are treated as empty:
the cache can only ever make a run faster, never wrong.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.air.timing import TimingModel
from repro.obs import scope
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import ChannelModel
from repro.sim.result import AggregateResult

#: Bump when the fingerprint layout or the stored-result shape changes.
RESULT_CACHE_SCHEMA = 1

DEFAULT_RESULT_CACHE_NAME = ".repro-results-cache.json"

#: Subpackages whose source feeds the cache signature: everything a cell
#: result can depend on.  ``devtools`` (the linter) and ``report``
#: (rendering) cannot change an ``AggregateResult``, so they are excluded
#: and editing them keeps the cache warm.
_SIGNATURE_EXCLUDED_PACKAGES = ("devtools", "report")

_source_digest_memo: str | None = None


def _iter_signature_sources() -> list[Path]:
    package_root = Path(__file__).resolve().parent.parent
    paths = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        if relative.parts and relative.parts[0] in _SIGNATURE_EXCLUDED_PACKAGES:
            continue
        if "__pycache__" in relative.parts:
            continue
        paths.append(path)
    return paths


def package_signature() -> str:
    """Digest of the simulator's version plus its source tree.

    Any edit to the packages that can influence a cell result -- protocols,
    channel, codecs, the runner's seed derivation -- changes this signature
    and therefore empties the cache.  Computed once per process.
    """
    global _source_digest_memo
    if _source_digest_memo is None:
        import repro
        digest = hashlib.sha256()
        digest.update(f"{RESULT_CACHE_SCHEMA}|{repro.__version__}|".encode())
        for path in _iter_signature_sources():
            digest.update(str(path.name).encode())
            digest.update(path.read_bytes())
        _source_digest_memo = digest.hexdigest()
    return _source_digest_memo


def canonical_fingerprint(value: object) -> object:
    """Reduce ``value`` to a JSON-able structure with a stable rendering.

    Dataclasses become ``{"<qualname>": {field: fingerprint...}}``; other
    objects (protocol instances are plain classes over a config dataclass)
    contribute their class qualname plus their instance ``__dict__``.  Floats
    round-trip through ``repr`` inside JSON, so distinct configs never
    collide and equal configs always agree.
    """
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonical_fingerprint(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [canonical_fingerprint(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical_fingerprint(item)
                for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: canonical_fingerprint(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {type(value).__qualname__: fields}
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {type(value).__qualname__: canonical_fingerprint(dict(state))}
    return {type(value).__qualname__: repr(value)}


def cell_key(protocol: TagReadingProtocol, n_tags: int, runs: int, seed: int,
             channel: ChannelModel, timing: TimingModel,
             engine: str = "scalar") -> str:
    """The content address of one cell: SHA-256 of its canonical spec.

    The engine is part of the address -- scalar and kernel cells follow
    the same process law but different draw orders, so their aggregates
    differ bitwise and must never serve each other.  The default scalar
    engine is omitted from the payload to keep pre-kernel keys stable.
    """
    spec = {
        "protocol": canonical_fingerprint(protocol),
        "n_tags": n_tags,
        "runs": runs,
        "seed": seed,
        "channel": canonical_fingerprint(channel),
        "timing": canonical_fingerprint(timing),
    }
    if engine != "scalar":
        spec["engine"] = engine
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _result_to_dict(result: AggregateResult) -> dict:
    return {f.name: getattr(result, f.name)
            for f in dataclasses.fields(AggregateResult)}


def _result_from_dict(data: dict) -> AggregateResult:
    return AggregateResult(**{f.name: data[f.name]
                              for f in dataclasses.fields(AggregateResult)})


class ResultCache:
    """Keyed store of ``AggregateResult``s with hit/miss accounting."""

    def __init__(self, path: Path | str = DEFAULT_RESULT_CACHE_NAME,
                 signature: str | None = None) -> None:
        self.path = Path(path)
        self.signature = signature if signature is not None \
            else package_signature()
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, AggregateResult] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except OSError:
            return  # no cache file yet: a cold start, not an invalidation
        except ValueError:
            scope.emit("cache_invalidated", path=str(self.path),
                       reason="unparseable cache file")
            return
        if not isinstance(payload, dict) \
                or payload.get("signature") != self.signature:
            scope.emit("cache_invalidated", path=str(self.path),
                       reason="signature mismatch (source tree or schema "
                              "changed)")
            return
        try:
            self._entries = {
                key: _result_from_dict(entry)
                for key, entry in payload.get("entries", {}).items()}
        except (KeyError, TypeError, ValueError):
            self._entries = {}
            scope.emit("cache_invalidated", path=str(self.path),
                       reason="entry shape mismatch")

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> AggregateResult | None:
        """Serve ``key`` if stored; every probe is counted and emitted.

        The hit path still reports telemetry: a warm run short-circuits the
        simulation, so without these events observability would go dark
        exactly when the cache is doing its job.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            scope.inc("result_cache.hits")
            scope.emit("cache_hit", key=key)
            return entry
        self.misses += 1
        scope.inc("result_cache.misses")
        scope.emit("cache_miss", key=key)
        return None

    def store(self, key: str, result: AggregateResult) -> None:
        self._entries[key] = result
        self._dirty = True

    def save(self) -> None:
        """Persist all entries; a no-op unless something was stored."""
        if not self._dirty:
            return
        payload = {
            "signature": self.signature,
            "entries": {key: _result_to_dict(entry)
                        for key, entry in sorted(self._entries.items())},
        }
        try:
            self.path.write_text(json.dumps(payload), encoding="utf-8")
            self._dirty = False
        except OSError:
            pass  # a read-only checkout just runs cold every time

    def stats(self) -> str:
        """One-line hit/miss summary for CLI surfacing."""
        return (f"result cache: {self.hits} hits / {self.misses} misses "
                f"({len(self._entries)} entries in {self.path})")
