"""Fig. 6 -- FCAT reading throughput as a function of the frame size f.

Tiny frames re-advertise constantly and give the embedded estimator almost
no signal per frame; by ``f >= 10`` the throughput has stabilized and stays
flat out to f = 200 (paper section VI-D).

To isolate the frame-size effect the sessions are seeded with the true tag
count (the paper's flat curve implies as much: a blind bootstrap doubles its
estimate once per *frame*, which would bias large-f sessions by whole wasted
frames).  The FCAT option ``bootstrap_abort_after`` removes most of that
bias for blind sessions; the default here stays faithful to the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import Fcat
from repro.experiments.executor import (
    SERIAL_PLAN,
    CellSpec,
    ExecutionPlan,
    execute_cells,
)
from repro.report.ascii_chart import AsciiChart


def _default_sizes() -> list[int]:
    return [2, 5, 10, 20, 30, 50, 80, 120, 160, 200]


@dataclass(frozen=True)
class Fig6Config:
    lams: tuple[int, ...] = (2, 3, 4)
    frame_sizes: list[int] = field(default_factory=_default_sizes)
    n_tags: int = 10000
    runs: int = 2
    seed: int = 20100554


@dataclass
class Fig6Result:
    config: Fig6Config
    #: lam -> throughput per frame size.
    curves: dict[int, list[float]]
    chart: AsciiChart

    def plateau_spread(self, lam: int, from_size: int = 10) -> float:
        """Relative spread of the curve over frame sizes >= ``from_size``."""
        values = [value for size, value in zip(self.config.frame_sizes,
                                               self.curves[lam])
                  if size >= from_size]
        return (max(values) - min(values)) / max(values)


def run_fig6(config: Fig6Config = Fig6Config(),
             plan: ExecutionPlan = SERIAL_PLAN) -> Fig6Result:
    chart = AsciiChart(title=f"Fig. 6 -- FCAT throughput vs frame size "
                             f"(N = {config.n_tags})",
                       x_label="frame size f", y_label="tags/second")
    curves: dict[int, list[float]] = {}
    for index, lam in enumerate(config.lams):
        seed = config.seed + 1000 * index
        specs = [
            CellSpec(protocol=Fcat(lam=lam, frame_size=frame_size,
                                   initial_estimate=float(config.n_tags)),
                     n_tags=config.n_tags, runs=config.runs,
                     seed=seed + grid_index)
            for grid_index, frame_size in enumerate(config.frame_sizes)
        ]
        cells = execute_cells(specs, jobs=plan.jobs, cache=plan.cache,
                              planner=plan.planner)
        curves[lam] = [cell.throughput_mean for cell in cells]
        chart.add_series(f"FCAT-{lam}",
                         np.asarray(config.frame_sizes, dtype=float),
                         np.asarray(curves[lam]))
    return Fig6Result(config=config, curves=curves, chart=chart)
