"""Table III -- tag IDs resolved from collision slots (paper section VI-B).

Paper values at N = 10000: FCAT-2 4139, FCAT-3 5945, FCAT-4 7065 -- i.e.
~40% / ~59% / ~71% of all IDs come out of slots every other protocol throws
away.  Expected shape: the resolved fraction is roughly constant in N and
grows with lambda.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.executor import SERIAL_PLAN, ExecutionPlan
from repro.experiments.protocols import fcat_variants
from repro.experiments.runner import sweep
from repro.report.tables import MarkdownTable
from repro.sim.result import AggregateResult


def _default_n_values() -> list[int]:
    return [1000, 5000, 10000, 15000, 20000]


@dataclass(frozen=True)
class Table3Config:
    n_values: list[int] = field(default_factory=_default_n_values)
    runs: int = 10
    seed: int = 20100549


@dataclass
class Table3Result:
    config: Table3Config
    cells: dict[tuple[str, int], AggregateResult]
    table: MarkdownTable

    def resolved(self, lam: int, n: int) -> float:
        return self.cells[(f"FCAT-{lam}", n)].resolved_mean

    def resolved_fraction(self, lam: int, n: int) -> float:
        return self.cells[(f"FCAT-{lam}", n)].resolved_fraction


def run_table3(config: Table3Config = Table3Config(),
               plan: ExecutionPlan = SERIAL_PLAN) -> Table3Result:
    protocols = fcat_variants()
    cells = sweep(protocols, config.n_values, config.runs, config.seed,
                  jobs=plan.jobs, cache=plan.cache,
                  planner=plan.planner)
    table = MarkdownTable(
        title="Table III -- tag IDs resolved from collision slots",
        headers=["N"] + [protocol.name for protocol in protocols])
    for n in config.n_values:
        table.add_row(n, *[cells[(protocol.name, n)].resolved_mean
                           for protocol in protocols])
    table.add_note("paper at N=10000: FCAT-2 4139, FCAT-3 5945, FCAT-4 7065")
    return Table3Result(config=config, cells=cells, table=table)
