"""Fig. 3 -- |relative bias| of the embedded estimator vs tag count.

Pure closed-form evaluation of Eq. 16 at the operating point ``p = omega/N``
for the three optimal loads.  Paper values: |bias| ~ 0.0082 / 0.011 / 0.014
for omega = 1.414 / 1.817 / 2.213, essentially flat in N.  The companion
Monte-Carlo check (optional, ``simulate=True``) measures the empirical bias
of the Eq. 12 inversion over many frames and should land on the same curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.estimator_stats import relative_bias_at_load
from repro.core.estimator import invert_collision_count
from repro.core.optimal import optimal_omega
from repro.experiments.runner import rng_from_seed
from repro.report.ascii_chart import AsciiChart


@dataclass(frozen=True)
class Fig3Config:
    lams: tuple[int, ...] = (2, 3, 4)
    n_min: int = 2000
    n_max: int = 40000
    n_points: int = 20
    frame_size: int = 30
    #: Monte-Carlo verification of the analytic curve.
    simulate: bool = False
    simulate_frames: int = 4000
    seed: int = 20100551


@dataclass
class Fig3Result:
    config: Fig3Config
    n_values: np.ndarray
    #: lam -> |Bias(N_hat/N)| curve (analytic).
    analytic: dict[int, np.ndarray]
    #: lam -> empirical |bias| at n_max (only when simulate=True).
    empirical: dict[int, float]
    chart: AsciiChart


def empirical_bias(omega: float, n_tags: int, frame_size: int,
                   frames: int, rng: np.random.Generator) -> float:
    """Monte-Carlo Bias(N_hat/N): average Eq.-12 inversions of random frames."""
    p = omega / n_tags
    estimates = []
    for _ in range(frames):
        transmitter_counts = rng.binomial(n_tags, p, size=frame_size)
        n_c = int((transmitter_counts >= 2).sum())
        if n_c >= frame_size:
            continue  # the estimator cannot invert an all-collision frame
        estimates.append(invert_collision_count(n_c, frame_size, p, omega))
    return float(np.mean(estimates)) / n_tags - 1.0


def run_fig3(config: Fig3Config = Fig3Config()) -> Fig3Result:
    n_values = np.linspace(config.n_min, config.n_max, config.n_points)
    chart = AsciiChart(title="Fig. 3 -- |relative bias| of N_hat vs N",
                       x_label="number of tags", y_label="|bias|")
    analytic: dict[int, np.ndarray] = {}
    empirical: dict[int, float] = {}
    rng = rng_from_seed(config.seed)
    for lam in config.lams:
        omega = optimal_omega(lam)
        curve = np.abs(relative_bias_at_load(omega, n_values,
                                             config.frame_size))
        analytic[lam] = curve
        chart.add_series(f"omega={omega:.3f}", n_values, curve)
        if config.simulate:
            empirical[lam] = empirical_bias(
                omega, config.n_max, config.frame_size,
                config.simulate_frames, rng)
    return Fig3Result(config=config, n_values=n_values, analytic=analytic,
                      empirical=empirical, chart=chart)
