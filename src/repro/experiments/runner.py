"""Shared sweep machinery for the experiment runners.

The paper averages 100 independent simulation runs per data point.  Here a
"cell" is one (protocol, population size) pair; each run draws a *fresh*
population (tree protocols are deterministic given the IDs, so reusing one
population would zero out their variance) and an independent child RNG, all
derived from a single seed for reproducibility.

This module owns the *semantics* of a cell -- how run seeds derive from the
cell seed and what one run does -- while :mod:`repro.experiments.executor`
owns the *mechanics* of getting many cells computed (process-pool fan-out,
content-addressed result caching).  Keeping the seed derivation here, and
having the executor consume pre-spawned children, is what makes parallel
results bit-for-bit identical to serial ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import AggregateResult, ReadingResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.experiments.planner import PlannerConfig
    from repro.experiments.result_cache import ResultCache

#: Seed offsets decorrelating the cells of a sweep grid (column = protocol,
#: row = population size); shared with the cache key derivation.
SWEEP_COLUMN_STRIDE = 10_007
SWEEP_ROW_STRIDE = 101


def rng_from_seed(seed: int | np.random.SeedSequence) -> np.random.Generator:
    """Mint the Generator for one experiment run from its derived seed.

    This module is one of the designated seed-spawning entry points (lint
    rule ``rng-construction``); experiment code everywhere else must obtain
    Generators here so all randomness flows from config seeds.
    """
    return np.random.default_rng(seed)


def spawn_run_seeds(seed: int, runs: int) -> list[np.random.SeedSequence]:
    """The per-run child seeds of one cell: ``SeedSequence(seed).spawn(runs)``.

    Every execution path -- serial loop, process-pool chunk, cache key
    derivation -- must obtain run seeds through this function so that run
    ``i`` of a cell sees the same RNG stream no matter who computes it.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    return np.random.SeedSequence(seed).spawn(runs)


def run_single(protocol: TagReadingProtocol, n_tags: int,
               child: np.random.SeedSequence,
               channel: ChannelModel = PERFECT_CHANNEL,
               timing: TimingModel = ICODE_TIMING) -> ReadingResult:
    """One independent session: fresh population, fresh Generator.

    This is the unit of work the parallel executor ships to workers; it must
    stay a pure function of ``(protocol, n_tags, child, channel, timing)``.
    """
    rng = rng_from_seed(child)
    population = TagPopulation.random(n_tags, rng)
    result = protocol.read_all(population, rng, channel=channel,
                               timing=timing)
    if not result.complete and channel is PERFECT_CHANNEL:
        raise RuntimeError(
            f"{protocol.name} read {result.n_read}/{result.n_tags} tags "
            "on a perfect channel")
    protocol.observe_session(result)
    return result


def run_cell(protocol: TagReadingProtocol, n_tags: int, runs: int, seed: int,
             channel: ChannelModel = PERFECT_CHANNEL,
             timing: TimingModel = ICODE_TIMING,
             jobs: int = 1,
             cache: "ResultCache | None" = None,
             engine: str = "scalar",
             precision: float | None = None,
             planner: "PlannerConfig | None" = None) -> AggregateResult:
    """Average ``runs`` sessions of one protocol at one population size.

    ``jobs`` > 1 fans the runs out across worker processes; ``cache`` serves
    previously computed cells by content-addressed key.  Both are pure
    mechanics: the returned ``AggregateResult`` is identical either way.
    ``engine="kernel"`` computes the cell with the batched frame-at-once
    sessions of :mod:`repro.kernels` where supported (kernel-v2 seed
    semantics: statistically, not bitwise, equivalent to scalar; cached
    under a distinct key).

    ``precision`` (or a full ``planner`` config; passing both is an error)
    switches the cell to the adaptive sequential planner: ``runs`` becomes
    the *nominal* budget and the cell stops early once the target metric's
    CI reaches the requested relative precision -- a bit-identical prefix
    of the fixed-budget run (see :mod:`repro.experiments.planner`).
    """
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    if runs < 1:
        raise ValueError("runs must be >= 1")
    planner = _resolve_planner(precision, planner)
    from repro.experiments.executor import CellSpec, execute_cells
    spec = CellSpec(protocol=protocol, n_tags=n_tags, runs=runs, seed=seed,
                    channel=channel, timing=timing, engine=engine)
    return execute_cells([spec], jobs=jobs, cache=cache,
                         planner=planner)[0]


def _resolve_planner(precision: float | None,
                     planner: "PlannerConfig | None"
                     ) -> "PlannerConfig | None":
    """Fold the ``precision=`` shorthand into a planner config."""
    if precision is not None and planner is not None:
        raise ValueError("pass precision= or planner=, not both")
    if precision is None:
        return planner
    from repro.experiments.planner import PlannerConfig
    return PlannerConfig(precision=precision)


def sweep(protocols: list[TagReadingProtocol], n_values: list[int],
          runs: int, seed: int,
          channel: ChannelModel = PERFECT_CHANNEL,
          timing: TimingModel = ICODE_TIMING,
          jobs: int = 1,
          cache: "ResultCache | None" = None,
          engine: str = "scalar",
          precision: float | None = None,
          planner: "PlannerConfig | None" = None
          ) -> dict[tuple[str, int], AggregateResult]:
    """Run every (protocol, N) cell; seeds are decorrelated per cell.

    Raises ``ValueError`` when two protocols share a display ``name`` at the
    same N: the result dict is keyed by ``(name, n_tags)``, so a duplicate
    would silently overwrite the first protocol's cell.  The error names
    every offending ``(name, N)`` cell so a mis-built roster is fixable
    from the message alone.

    ``precision``/``planner`` switch the whole grid to the adaptive
    sequential planner (see :func:`run_cell`); saved budget flows to the
    highest-variance cells still open.
    """
    planner = _resolve_planner(precision, planner)
    from repro.experiments.executor import CellSpec, execute_cells
    specs: list[CellSpec] = []
    keys: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()
    duplicates: list[tuple[str, int]] = []
    for column, protocol in enumerate(protocols):
        for row, n_tags in enumerate(n_values):
            key = (protocol.name, n_tags)
            if key in seen:
                if key not in duplicates:
                    duplicates.append(key)
                continue
            seen.add(key)
            keys.append(key)
            cell_seed = (seed + SWEEP_COLUMN_STRIDE * column
                         + SWEEP_ROW_STRIDE * row)
            specs.append(CellSpec(protocol=protocol, n_tags=n_tags,
                                  runs=runs, seed=cell_seed,
                                  channel=channel, timing=timing,
                                  engine=engine))
    if duplicates:
        listed = ", ".join(f"({name!r}, {n_tags})"
                           for name, n_tags in duplicates)
        raise ValueError(
            f"duplicate sweep cell(s) {listed}: two protocols share a "
            "display name at the same N; give them distinct names")
    results = execute_cells(specs, jobs=jobs, cache=cache, planner=planner)
    return dict(zip(keys, results))
