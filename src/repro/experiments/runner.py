"""Shared sweep machinery for the experiment runners.

The paper averages 100 independent simulation runs per data point.  Here a
"cell" is one (protocol, population size) pair; each run draws a *fresh*
population (tree protocols are deterministic given the IDs, so reusing one
population would zero out their variance) and an independent child RNG, all
derived from a single seed for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import AggregateResult, ReadingResult, aggregate


def rng_from_seed(seed: int | np.random.SeedSequence) -> np.random.Generator:
    """Mint the Generator for one experiment run from its derived seed.

    This module is one of the designated seed-spawning entry points (lint
    rule ``rng-construction``); experiment code everywhere else must obtain
    Generators here so all randomness flows from config seeds.
    """
    return np.random.default_rng(seed)


def run_cell(protocol: TagReadingProtocol, n_tags: int, runs: int, seed: int,
             channel: ChannelModel = PERFECT_CHANNEL,
             timing: TimingModel = ICODE_TIMING) -> AggregateResult:
    """Average ``runs`` sessions of one protocol at one population size."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    results: list[ReadingResult] = []
    for child in np.random.SeedSequence(seed).spawn(runs):
        rng = np.random.default_rng(child)
        population = TagPopulation.random(n_tags, rng)
        result = protocol.read_all(population, rng, channel=channel,
                                   timing=timing)
        if not result.complete and channel is PERFECT_CHANNEL:
            raise RuntimeError(
                f"{protocol.name} read {result.n_read}/{result.n_tags} tags "
                "on a perfect channel")
        results.append(result)
    return aggregate(results)


def sweep(protocols: list[TagReadingProtocol], n_values: list[int],
          runs: int, seed: int,
          channel: ChannelModel = PERFECT_CHANNEL,
          timing: TimingModel = ICODE_TIMING
          ) -> dict[tuple[str, int], AggregateResult]:
    """Run every (protocol, N) cell; seeds are decorrelated per cell."""
    cells: dict[tuple[str, int], AggregateResult] = {}
    for column, protocol in enumerate(protocols):
        for row, n_tags in enumerate(n_values):
            cell_seed = seed + 10_007 * column + 101 * row
            cells[(protocol.name, n_tags)] = run_cell(
                protocol, n_tags, runs, cell_seed, channel=channel,
                timing=timing)
    return cells
