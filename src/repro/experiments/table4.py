"""Table IV -- computed omega vs the simulated optimum (paper section VI-C).

For each lambda the closed form gives omega* = (lambda!)^(1/lambda); the
simulation sweeps omega over a grid, measures FCAT throughput at N = 10000,
and reports the argmax.  Paper values: computed 1.41/1.82/2.21 vs observed
1.42/1.90/2.12 with near-identical throughputs -- the claim under test is
that the closed form leaves nothing on the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import Fcat, optimal_omega
from repro.experiments.executor import (
    SERIAL_PLAN,
    CellSpec,
    ExecutionPlan,
    execute_cells,
)
from repro.experiments.protocols import PAPER_FRAME_SIZE
from repro.report.tables import MarkdownTable


def _default_grid() -> list[float]:
    return [round(w, 2) for w in np.arange(0.8, 3.01, 0.1)]


@dataclass(frozen=True)
class Table4Config:
    lams: tuple[int, ...] = (2, 3, 4)
    omega_grid: list[float] = field(default_factory=_default_grid)
    n_tags: int = 10000
    runs: int = 3
    seed: int = 20100550


@dataclass
class OmegaSearch:
    lam: int
    computed_omega: float
    computed_throughput: float
    best_omega: float
    best_throughput: float
    grid: list[float]
    throughputs: list[float]


@dataclass
class Table4Result:
    config: Table4Config
    searches: dict[int, OmegaSearch]
    table: MarkdownTable


def run_table4(config: Table4Config = Table4Config(),
               plan: ExecutionPlan = SERIAL_PLAN) -> Table4Result:
    searches: dict[int, OmegaSearch] = {}
    table = MarkdownTable(
        title="Table IV -- computed vs simulated-optimal omega (N = "
              f"{config.n_tags})",
        headers=["lambda", "optimal omega (search)", "max throughput",
                 "computed omega", "FCAT throughput"])
    for index, lam in enumerate(config.lams):
        seed = config.seed + 1000 * index
        computed = optimal_omega(lam)
        specs = [
            CellSpec(protocol=Fcat(lam=lam, frame_size=PAPER_FRAME_SIZE,
                                   omega=omega),
                     n_tags=config.n_tags, runs=config.runs,
                     seed=seed + grid_index)
            for grid_index, omega in enumerate(config.omega_grid)
        ]
        specs.append(CellSpec(
            protocol=Fcat(lam=lam, frame_size=PAPER_FRAME_SIZE,
                          omega=computed),
            n_tags=config.n_tags, runs=config.runs, seed=seed + 999))
        cells = execute_cells(specs, jobs=plan.jobs, cache=plan.cache,
                              planner=plan.planner)
        computed_cell = cells.pop()
        throughputs = [cell.throughput_mean for cell in cells]
        best_index = int(np.argmax(throughputs))
        search = OmegaSearch(
            lam=lam,
            computed_omega=computed,
            computed_throughput=computed_cell.throughput_mean,
            best_omega=config.omega_grid[best_index],
            best_throughput=throughputs[best_index],
            grid=list(config.omega_grid),
            throughputs=throughputs,
        )
        searches[lam] = search
        table.add_row(lam, search.best_omega, search.best_throughput,
                      round(search.computed_omega, 2),
                      search.computed_throughput)
    table.add_note("paper: lambda 2/3/4 -> search 1.42/1.90/2.12 vs computed "
                   "1.41/1.82/2.21, throughputs within 1%")
    return Table4Result(config=config, searches=searches, table=table)
