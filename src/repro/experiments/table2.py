"""Table II -- empty/singleton/collision slot counts at N = 10000 (VI-A).

Paper values: FCAT-2 4189/5861/7016 (17066 total), FCAT-3 2257/4055/7497
(13809), FCAT-4 1345/2935/8050 (12330), DFSA 10076/10000/7208 (27284),
EDFSA 10705/10000/7234 (27939), ABS 4410/10000/14409 (28819),
AQS 4737/10000/14735 (29472).  Expected shape: FCAT trades singleton slots
for (useful) collision slots and wastes far fewer empties; tree protocols pay
~1.44N collision queries; ALOHA baselines need exactly N singletons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.executor import SERIAL_PLAN, ExecutionPlan
from repro.experiments.protocols import table1_roster
from repro.experiments.runner import run_cell
from repro.report.tables import MarkdownTable
from repro.sim.result import AggregateResult


@dataclass(frozen=True)
class Table2Config:
    n_tags: int = 10000
    runs: int = 10
    seed: int = 20100548


@dataclass
class Table2Result:
    config: Table2Config
    cells: dict[str, AggregateResult]
    table: MarkdownTable

    def slots(self, protocol: str) -> tuple[float, float, float]:
        cell = self.cells[protocol]
        return cell.empty_mean, cell.singleton_mean, cell.collision_mean


def run_table2(config: Table2Config = Table2Config(),
               plan: ExecutionPlan = SERIAL_PLAN) -> Table2Result:
    protocols = table1_roster()
    cells = {
        protocol.name: run_cell(protocol, config.n_tags, config.runs,
                                config.seed + index,
                                jobs=plan.jobs, cache=plan.cache,
                                planner=plan.planner)
        for index, protocol in enumerate(protocols)
    }
    table = MarkdownTable(
        title=f"Table II -- slot usage at N = {config.n_tags}",
        headers=["slot type"] + [protocol.name for protocol in protocols])
    for label, attribute in (("empty", "empty_mean"),
                             ("singleton", "singleton_mean"),
                             ("collision", "collision_mean"),
                             ("total", "total_slots_mean")):
        table.add_row(label, *[getattr(cells[p.name], attribute)
                               for p in protocols])
    table.add_note(f"mean of {config.runs} runs per protocol")
    return Table2Result(config=config, cells=cells, table=table)
