"""Fig. 5 -- FCAT reading throughput as a function of the load omega.

The curve is unimodal: too-small omega wastes slots on empties, too-large
omega drowns the frame in unresolvable collisions.  The peak sits at the
computed ``(lambda!)^(1/lambda)`` -- the visual companion of Table IV.
Paper shape at N = 10000: FCAT-2 peaks ~200 tags/s near 1.4, FCAT-3 ~240
near 1.8, FCAT-4 ~265 near 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import Fcat
from repro.experiments.executor import (
    SERIAL_PLAN,
    CellSpec,
    ExecutionPlan,
    execute_cells,
)
from repro.experiments.protocols import PAPER_FRAME_SIZE
from repro.report.ascii_chart import AsciiChart


def _default_grid() -> list[float]:
    return [round(w, 2) for w in np.arange(0.3, 3.01, 0.15)]


@dataclass(frozen=True)
class Fig5Config:
    lams: tuple[int, ...] = (2, 3, 4)
    omega_grid: list[float] = field(default_factory=_default_grid)
    n_tags: int = 10000
    runs: int = 2
    seed: int = 20100553


@dataclass
class Fig5Result:
    config: Fig5Config
    #: lam -> throughput curve over the omega grid.
    curves: dict[int, list[float]]
    chart: AsciiChart

    def peak_omega(self, lam: int) -> float:
        curve = self.curves[lam]
        return self.config.omega_grid[int(np.argmax(curve))]


def run_fig5(config: Fig5Config = Fig5Config(),
             plan: ExecutionPlan = SERIAL_PLAN) -> Fig5Result:
    chart = AsciiChart(title=f"Fig. 5 -- FCAT throughput vs omega "
                             f"(N = {config.n_tags})",
                       x_label="omega", y_label="tags/second")
    curves: dict[int, list[float]] = {}
    for index, lam in enumerate(config.lams):
        seed = config.seed + 1000 * index
        specs = [
            CellSpec(protocol=Fcat(lam=lam, frame_size=PAPER_FRAME_SIZE,
                                   omega=omega),
                     n_tags=config.n_tags, runs=config.runs,
                     seed=seed + grid_index)
            for grid_index, omega in enumerate(config.omega_grid)
        ]
        cells = execute_cells(specs, jobs=plan.jobs, cache=plan.cache,
                              planner=plan.planner)
        curves[lam] = [cell.throughput_mean for cell in cells]
        chart.add_series(f"FCAT-{lam}", np.asarray(config.omega_grid),
                         np.asarray(curves[lam]))
    return Fig5Result(config=config, curves=curves, chart=chart)
