"""Command-line driver: regenerate any paper table/figure.

Usage::

    python -m repro.experiments table1 --runs 100 --paper-scale --jobs 8
    python -m repro.experiments all --runs 10 --out results/

Each experiment prints its markdown table or ASCII chart and, with ``--out``,
also writes it to ``<out>/<name>.md``.  ``--jobs`` fans the simulation runs
out across worker processes (results are bit-for-bit identical to serial);
repeated invocations are served from the content-addressed result cache
unless ``--no-result-cache`` is given.

Observability (:mod:`repro.obs`): ``--metrics-out metrics.jsonl`` collects
the structured event stream plus a final metrics snapshot and writes them
as JSONL; ``--manifest-out manifest.json`` records the run manifest
(command, git SHA, versions, per-cell config fingerprints and timings).
``python -m repro.obs.report metrics.jsonl --manifest manifest.json``
validates and summarizes both.  ``--smoke`` shrinks runs and the table1
grid to CI size.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path

from repro.obs.events import write_jsonl
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.report import summarize
from repro.obs.scope import Observation, observe

from repro.experiments.ablations import (
    AblationCaptureConfig,
    AblationChurnConfig,
    AblationEnergyConfig,
    AblationNoiseConfig,
    AblationPrestepConfig,
    AblationSnrConfig,
    CrdsaComparisonConfig,
    run_ablation_capture,
    run_ablation_churn,
    run_ablation_energy,
    run_ablation_noise,
    run_ablation_prestep,
    run_ablation_snr,
    run_crdsa_comparison,
)
from repro.experiments.executor import ExecutionPlan, default_jobs
from repro.experiments.planner import PlannerConfig
from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.fig5 import Fig5Config, run_fig5
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.result_cache import ResultCache
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.table3 import Table3Config, run_table3
from repro.experiments.table4 import Table4Config, run_table4


def _render_table1(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    if args.paper_scale:
        config = Table1Config.paper_scale(runs=args.runs)
    elif args.smoke:
        config = Table1Config(n_values=[500, 1000], runs=args.runs)
    else:
        config = Table1Config(runs=args.runs)
    return run_table1(config, plan).table.render()


def _render_table2(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    return run_table2(Table2Config(runs=args.runs), plan).table.render()


def _render_table3(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    return run_table3(Table3Config(runs=args.runs), plan).table.render()


def _render_table4(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    return run_table4(Table4Config(runs=max(args.runs // 3, 1)),
                      plan).table.render()


def _render_fig3(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    result = run_fig3(Fig3Config(simulate=True))
    lines = [result.chart.render(), ""]
    for lam, bias in result.empirical.items():
        lines.append(f"empirical bias (lambda={lam}, N={result.config.n_max}):"
                     f" {bias:+.4f}")
    return "\n".join(lines)


def _render_fig4(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    result = run_fig4(Fig4Config(simulate=True))
    lines = [result.chart.render(), "",
             f"singleton count peaks at N ~ {result.singleton_peak_n:.0f}"]
    if result.empirical is not None:
        lines.append(f"Monte-Carlo at N={result.config.n_max}: "
                     f"empty/singleton/collision = "
                     + "/".join(f"{v:.2f}" for v in result.empirical))
    return "\n".join(lines)


def _render_fig5(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    result = run_fig5(Fig5Config(runs=max(args.runs // 5, 1)), plan)
    lines = [result.chart.render(), ""]
    for lam in result.config.lams:
        lines.append(f"FCAT-{lam} peaks at omega ~ {result.peak_omega(lam)}")
    return "\n".join(lines)


def _render_fig6(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    result = run_fig6(Fig6Config(runs=max(args.runs // 5, 1)), plan)
    lines = [result.chart.render(), ""]
    for lam in result.config.lams:
        lines.append(f"FCAT-{lam} plateau spread (f >= 10): "
                     f"{result.plateau_spread(lam):.1%}")
    return "\n".join(lines)


def _render_ablation_snr(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    return run_ablation_snr(AblationSnrConfig()).chart.render()


def _render_ablation_noise(args: argparse.Namespace,
                           plan: ExecutionPlan) -> str:
    return run_ablation_noise(
        AblationNoiseConfig(runs=max(args.runs // 3, 1)), plan).table.render()


def _render_crdsa(args: argparse.Namespace, plan: ExecutionPlan) -> str:
    return run_crdsa_comparison(
        CrdsaComparisonConfig(runs=max(args.runs // 3, 1)), plan
    ).table.render()


def _render_ablation_capture(args: argparse.Namespace,
                             plan: ExecutionPlan) -> str:
    return run_ablation_capture(
        AblationCaptureConfig(runs=max(args.runs // 3, 1)),
        plan).table.render()


def _render_ablation_prestep(args: argparse.Namespace,
                             plan: ExecutionPlan) -> str:
    return run_ablation_prestep(
        AblationPrestepConfig(runs=max(args.runs // 3, 1)),
        plan).table.render()


def _render_ablation_churn(args: argparse.Namespace,
                           plan: ExecutionPlan) -> str:
    return run_ablation_churn(AblationChurnConfig()).table.render()


def _render_ablation_energy(args: argparse.Namespace,
                            plan: ExecutionPlan) -> str:
    return run_ablation_energy(
        AblationEnergyConfig(runs=max(args.runs // 3, 1))).table.render()


EXPERIMENTS = {
    "table1": _render_table1,
    "table2": _render_table2,
    "table3": _render_table3,
    "table4": _render_table4,
    "fig3": _render_fig3,
    "fig4": _render_fig4,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "ablation-snr": _render_ablation_snr,
    "ablation-noise": _render_ablation_noise,
    "ablation-crdsa": _render_crdsa,
    "ablation-capture": _render_ablation_capture,
    "ablation-prestep": _render_ablation_prestep,
    "ablation-churn": _render_ablation_churn,
    "ablation-energy": _render_ablation_energy,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures")
    parser.add_argument("experiments", nargs="+",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which experiments to run")
    parser.add_argument("--runs", type=int, default=10,
                        help="simulation runs per data point (paper: 100)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full N grid for table1")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write <experiment>.md files into")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep executor "
                             f"(0 = all cores, here {default_jobs()}); "
                             "results are identical to --jobs 1")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="recompute every cell instead of serving "
                             "previously computed ones from "
                             ".repro-results-cache.json")
    parser.add_argument("--result-cache", type=Path, default=None,
                        help="path of the result-cache file (default: "
                             "./.repro-results-cache.json)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="write the repro.obs event stream (plus a "
                             "final metrics snapshot) to this JSONL file")
    parser.add_argument("--manifest-out", type=Path, default=None,
                        help="write the run manifest (command, git SHA, "
                             "versions, per-cell timings) to this JSON file")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: caps --runs at 2 and shrinks "
                             "the table1 grid to N in {500, 1000} (with "
                             "--precision, --runs floors at 20 instead so "
                             "the planner has a budget to save)")
    parser.add_argument("--precision", type=float, default=None,
                        help="adaptive mode: stop each cell once the "
                             "throughput CI half-width reaches this "
                             "relative precision; --runs becomes the "
                             "nominal budget per cell")
    parser.add_argument("--min-runs", type=int, default=8,
                        help="adaptive mode: floor of runs per cell before "
                             "a stopping decision (default 8)")
    parser.add_argument("--max-runs", type=int, default=None,
                        help="adaptive mode: ceiling of runs per cell "
                             "(default: 2x the nominal budget)")
    return parser


def build_plan(args: argparse.Namespace) -> ExecutionPlan:
    """The execution plan the parsed CLI flags describe."""
    jobs = default_jobs() if args.jobs == 0 else args.jobs
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 0, got {args.jobs}")
    cache = None
    if not args.no_result_cache:
        cache = ResultCache(args.result_cache) if args.result_cache \
            else ResultCache()
    planner = None
    if args.precision is not None:
        try:
            planner = PlannerConfig(precision=args.precision,
                                    min_runs=args.min_runs,
                                    max_runs=args.max_runs)
        except ValueError as error:
            raise SystemExit(f"--precision: {error}") from None
    return ExecutionPlan(jobs=jobs, cache=cache, planner=planner)


def _write_observability(args: argparse.Namespace, plan: ExecutionPlan,
                         observation: Observation, command: list[str],
                         started_unix: float, wall_time_s: float) -> None:
    """Write ``--metrics-out`` / ``--manifest-out`` and print the summary."""
    observation.emit("metrics_snapshot",
                     metrics=observation.metrics.snapshot())
    manifest = build_manifest(
        observation, command=command,
        started_unix=started_unix, jobs=plan.jobs, wall_time_s=wall_time_s)
    if args.metrics_out is not None:
        write_jsonl(args.metrics_out, observation.events)
        print(f"[metrics: {len(observation.events)} events -> "
              f"{args.metrics_out}]", file=sys.stderr)
    if args.manifest_out is not None:
        write_manifest(args.manifest_out, manifest)
        print(f"[manifest: {len(manifest.cells)} cells -> "
              f"{args.manifest_out}]", file=sys.stderr)
    print(summarize(observation.events.events, manifest), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    command = ["repro-experiments",
               *(argv if argv is not None else sys.argv[1:])]
    args = build_parser().parse_args(argv)
    if args.smoke:
        # Adaptive smoke needs a budget worth saving: a 2-run nominal
        # leaves the planner nothing to stop early.
        args.runs = max(args.runs, 20) if args.precision is not None \
            else min(args.runs, 2)
    plan = build_plan(args)
    names = sorted(EXPERIMENTS) if "all" in args.experiments \
        else list(dict.fromkeys(args.experiments))
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    observing = args.metrics_out is not None or args.manifest_out is not None
    observation = Observation() if observing else None
    started_unix = time.time()
    with observe(observation) if observing else nullcontext():
        for name in names:
            started = time.time()
            output = EXPERIMENTS[name](args, plan)
            elapsed = time.time() - started
            print(output)
            print(f"[{name} finished in {elapsed:.1f}s]", file=sys.stderr)
            if args.out is not None:
                (args.out / f"{name}.md").write_text(output + "\n")
    if observation is not None:
        _write_observability(args, plan, observation, command, started_unix,
                             wall_time_s=time.time() - started_unix)
    if plan.planner is not None:
        print(f"[{plan.planner.stats.summary()}]", file=sys.stderr)
    if plan.cache is not None:
        print(f"[{plan.cache.stats()}]", file=sys.stderr)
    return 0


# `replace` is re-exported for tools that tweak configs programmatically.
__all__ = ["main", "build_parser", "build_plan", "EXPERIMENTS", "replace"]
