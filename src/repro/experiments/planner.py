"""Variance-aware adaptive sweep planner: sequential stopping per cell.

The paper averages a flat 100 runs per (protocol, N) cell regardless of how
noisy each cell actually is, so low-variance DFSA cells burn the same
compute as high-variance FCAT bootstrap cells.  This module replaces the
flat budget with *sequential stopping*: each cell executes in small batches
(through the executor's chunked fan-out, scalar or kernel engine), a
running mean/variance of the target metric is folded per cell via Welford
aggregation, and the cell closes once its confidence-interval half-width
reaches the requested relative precision -- subject to a ``min_runs`` floor
and a ``max_runs`` ceiling.  Budget freed by early-stopping cells is
reallocated to the highest-variance cells still open.

Determinism is preserved by construction.  Batch ``b`` of a cell consumes
``SeedSequence`` children ``[start, start + runs)`` of the *same* spawn a
fixed-budget run uses (``CellSpec.run_start`` slicing), so:

* a planner run at precision ``p`` is a prefix of the fixed-budget run and
  its per-run values are bit-identical to that run's prefix;
* the result is bit-reproducible at any ``--jobs`` (batch contents never
  depend on chunking, and the scheduler's decisions depend only on the
  folded values);
* a warm planner run replays the cold run's stopping decisions exactly,
  because cached batches return the identical values the cold run computed
  (the run-range entries of :mod:`repro.experiments.result_cache`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.executor import CellSpec, execute_run_metrics
from repro.experiments.result_cache import ResultCache
from repro.obs import scope
from repro.sim.result import AggregateResult, RunMetrics, aggregate_metrics

__all__ = [
    "PlannerConfig",
    "PlannerStats",
    "Welford",
    "plan_cells",
]

#: Metrics a planner may target: the per-run scalars of ``RunMetrics``.
_METRIC_NAMES = tuple(f.name for f in dataclasses.fields(RunMetrics))

#: Sentinel relative half-width while it is undefined (fewer than two
#: runs, or a zero mean): JSON sinks cannot hold infinity.
UNDEFINED_WIDTH = -1.0


def _normal_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1) -- far below the Monte-Carlo noise the
    planner is stopping on -- and keeps the module free of scipy.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q
                            + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def _z_for_confidence(confidence: float) -> float:
    """Two-sided normal critical value for the given confidence level."""
    return _normal_ppf(0.5 + confidence / 2.0)


@dataclass
class Welford:
    """Streaming mean/variance (Welford's online algorithm)."""

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance; 0.0 until two values have been folded."""
        return self.m2 / (self.n - 1) if self.n > 1 else 0.0

    def half_width(self, z: float) -> float:
        """CI half-width ``z * sqrt(s^2 / n)``; 0.0 below two values."""
        if self.n < 2:
            return 0.0
        return z * math.sqrt(self.variance / self.n)

    def rel_half_width(self, z: float) -> float:
        """Half-width relative to ``|mean|``; :data:`UNDEFINED_WIDTH` when
        fewer than two values have landed or the mean is zero."""
        if self.n < 2 or self.mean == 0.0:
            return UNDEFINED_WIDTH
        return self.half_width(z) / abs(self.mean)


@dataclass
class PlannerStats:
    """Run accounting across every cell a planner config has closed."""

    cells: int = 0
    nominal_runs: int = 0
    assigned_runs: int = 0
    simulated_runs: int = 0
    cached_runs: int = 0
    stopped_precision: int = 0
    stopped_max_runs: int = 0
    stopped_budget: int = 0

    @property
    def reduction(self) -> float:
        """Nominal over assigned runs: the headline 2-5x savings factor."""
        return self.nominal_runs / self.assigned_runs \
            if self.assigned_runs else 0.0

    def summary(self) -> str:
        return (f"planner: {self.assigned_runs}/{self.nominal_runs} runs "
                f"({self.reduction:.2f}x reduction), "
                f"{self.simulated_runs} simulated + "
                f"{self.cached_runs} cached; {self.cells} cells: "
                f"{self.stopped_precision} precision / "
                f"{self.stopped_max_runs} max-runs / "
                f"{self.stopped_budget} budget")


@dataclass(frozen=True)
class PlannerConfig:
    """How to stop: the knobs of the sequential planner.

    ``precision`` is the target *relative* CI half-width of ``metric`` at
    the given ``confidence``.  ``max_runs`` defaults to twice each cell's
    nominal budget, which is where reallocation saturates; ``stats``
    accumulates across every ``plan_cells`` call sharing this config, so a
    multi-sweep driver reports one combined summary.
    """

    precision: float
    confidence: float = 0.95
    min_runs: int = 8
    batch_runs: int = 8
    max_runs: int | None = None
    metric: str = "throughput"
    stats: PlannerStats = field(default_factory=PlannerStats, compare=False)

    def __post_init__(self) -> None:
        if self.precision <= 0:
            raise ValueError("precision must be > 0")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.min_runs < 2:
            raise ValueError("min_runs must be >= 2 (variance needs two)")
        if self.batch_runs < 1:
            raise ValueError("batch_runs must be >= 1")
        if self.max_runs is not None and self.max_runs < self.min_runs:
            raise ValueError("max_runs must be >= min_runs")
        if self.metric not in _METRIC_NAMES:
            raise ValueError(f"metric must be one of {_METRIC_NAMES}")


@dataclass
class _CellState:
    """One cell's progress through the sequential-stopping loop."""

    index: int
    spec: CellSpec
    ceiling: int
    welford: Welford = field(default_factory=Welford)
    values: list[RunMetrics] = field(default_factory=list)
    batches: int = 0
    simulated: int = 0
    cached: int = 0
    reason: str | None = None

    @property
    def open(self) -> bool:
        return self.reason is None


def _close(cell: _CellState, reason: str, planner: PlannerConfig,
           z: float) -> None:
    """Mark a cell stopped and account/emit its closing telemetry."""
    cell.reason = reason
    stats = planner.stats
    stats.cells += 1
    if reason == "precision":
        stats.stopped_precision += 1
    elif reason == "max_runs":
        stats.stopped_max_runs += 1
    else:
        stats.stopped_budget += 1
    rel = cell.welford.rel_half_width(z)
    spec = cell.spec
    scope.emit("planner_stop", protocol=spec.protocol.name,
               n_tags=spec.n_tags, seed=spec.seed, reason=reason,
               runs_used=cell.welford.n, nominal_runs=spec.runs,
               simulated_runs=cell.simulated, cached_runs=cell.cached,
               mean=cell.welford.mean, rel_half_width=rel)
    scope.inc(f"planner.stopped.{reason}")
    scope.observe_value("planner.cell_runs", cell.welford.n)
    if rel != UNDEFINED_WIDTH:
        scope.observe_value("planner.rel_half_width", rel)


def plan_cells(specs: Sequence[CellSpec], planner: PlannerConfig,
               jobs: int = 1,
               cache: ResultCache | None = None) -> list[AggregateResult]:
    """Adaptively compute every cell, in ``specs`` order.

    Round-based scheduler over a shared budget of ``sum(spec.runs)``
    nominal runs: each round assigns one batch to every open cell --
    cells below the ``min_runs`` floor first, then widest relative CI
    excess first -- until the budget is spent.  A batch is runs
    ``[start, start + batch)`` of the cell's seed spawn, executed through
    :func:`repro.experiments.executor.execute_run_metrics` (so batches of
    different cells fan out across workers together and cached batches
    are served without simulating).  After each fold the cell is closed
    when its relative CI half-width reaches ``planner.precision``
    (reason ``"precision"``), its ceiling is hit (``"max_runs"``), or the
    shared budget runs dry (``"budget"``).

    Registered as a designated hotspot entry point (lint R13): this loop
    is the planner's reach root over the seeded simulation path.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    for spec in specs:
        if spec.run_start:
            raise ValueError("planner cells must start at run 0; "
                             "batching is the planner's job")
    z = _z_for_confidence(planner.confidence)
    cells = []
    for index, spec in enumerate(specs):
        ceiling = planner.max_runs if planner.max_runs is not None \
            else 2 * spec.runs
        ceiling = max(ceiling, min(planner.min_runs, 2 * spec.runs))
        cells.append(_CellState(index=index, spec=spec, ceiling=ceiling))
    budget = sum(spec.runs for spec in specs)
    planner.stats.nominal_runs += budget
    floor = planner.min_runs

    def priority(cell: _CellState) -> tuple:
        below_floor = cell.welford.n < min(floor, cell.ceiling)
        rel = cell.welford.rel_half_width(z)
        excess = math.inf if rel == UNDEFINED_WIDTH \
            else rel - planner.precision
        return (0 if below_floor else 1, -excess, cell.index)

    while True:
        open_cells = [cell for cell in cells if cell.open]
        if not open_cells:
            break
        if budget <= 0:
            for cell in open_cells:
                _close(cell, "budget", planner, z)
            break
        assignments: list[tuple[_CellState, CellSpec]] = []
        for cell in sorted(open_cells, key=priority):
            if budget <= 0:
                break
            size = min(planner.batch_runs, cell.ceiling - cell.welford.n,
                       budget)
            batch = dataclasses.replace(cell.spec, run_start=cell.welford.n,
                                        runs=size)
            assignments.append((cell, batch))
            budget -= size
        batches = execute_run_metrics([batch for _, batch in assignments],
                                      jobs=jobs, cache=cache)
        for (cell, batch_spec), batch in zip(assignments, batches):
            for value in batch.values:
                cell.welford.add(getattr(value, planner.metric))
            cell.values.extend(batch.values)
            cell.batches += 1
            if batch.cached:
                cell.cached += len(batch.values)
            else:
                cell.simulated += len(batch.values)
            rel = cell.welford.rel_half_width(z)
            spec = cell.spec
            scope.emit("planner_batch", protocol=spec.protocol.name,
                       n_tags=spec.n_tags, seed=spec.seed,
                       batch_index=cell.batches - 1,
                       start=batch_spec.run_start, runs=len(batch.values),
                       cached=batch.cached, mean=cell.welford.mean,
                       rel_half_width=rel)
            if rel != UNDEFINED_WIDTH:
                scope.observe_value("planner.batch_rel_half_width", rel)
            if cell.welford.n >= min(floor, cell.ceiling) \
                    and rel != UNDEFINED_WIDTH and rel <= planner.precision:
                _close(cell, "precision", planner, z)
            elif cell.welford.n >= cell.ceiling:
                _close(cell, "max_runs", planner, z)
    stats = planner.stats
    for cell in cells:
        stats.assigned_runs += cell.welford.n
        stats.simulated_runs += cell.simulated
        stats.cached_runs += cell.cached
    if cache is not None:
        cache.save()
    return [aggregate_metrics(cell.spec.protocol.name, cell.spec.n_tags,
                              cell.values)
            for cell in cells]
