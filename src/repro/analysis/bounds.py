"""Classic reading-throughput bounds (paper sections II-A and VII).

* ALOHA family: at most one tag per ``e`` slots -- ``1/(eT)`` tags/second.
* Tree family: one tag per ~2.88 slots (Capetanakis) -- ``1/(2.88T)``.
* FCAT: one tag per useful slot at the optimal load, i.e.
  ``P(1 <= Poisson(w*) <= lam) / T`` -- the bound collision resolution makes
  reachable, and the quantity Table I shows FCAT approaching.
"""

from __future__ import annotations

import math

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.optimal import optimal_omega, useful_slot_probability

#: Slots per tag for binary splitting (Capetanakis; paper refs [27], [28]).
TREE_SLOTS_PER_TAG = 2.88


def aloha_throughput_bound(timing: TimingModel = ICODE_TIMING) -> float:
    """The ``1/(eT)`` ceiling of contention protocols without ANC (Eq. in II-A)."""
    return 1.0 / (math.e * timing.slot_duration)


def tree_throughput_bound(timing: TimingModel = ICODE_TIMING) -> float:
    """The ``1/(2.88 T)`` ceiling of tree-based protocols (section VII)."""
    return 1.0 / (TREE_SLOTS_PER_TAG * timing.slot_duration)


def fcat_throughput_bound(lam: int,
                          timing: TimingModel = ICODE_TIMING) -> float:
    """FCAT's ceiling: one ID per useful slot at the optimal load.

    Ignores advertisement/announcement overheads and estimator noise, so the
    measured FCAT throughput should approach but not exceed this.
    """
    omega = optimal_omega(lam)
    return useful_slot_probability(omega, lam) / timing.slot_duration


def fcat_gain_over_aloha(lam: int) -> float:
    """The ideal throughput ratio FCAT-lam / ALOHA-bound.

    For lam = 2 this is ``(w + w^2/2) e^{-w} * e ~ 1.6`` -- the headroom from
    which the paper's measured 51-71% gains are carved once overheads bite.
    """
    omega = optimal_omega(lam)
    return useful_slot_probability(omega, lam) * math.e
