"""Bias and variance of FCAT's embedded estimator (Eq. 15-16 and appendix).

The estimator N_hat inverts the collision count of one frame.  The paper's
delta-method analysis gives

    Bias(N_hat/N) = (1 + w - e^w) / (2 f N ln(1-p) (1+w))          (Eq. 16)
    V(n_c)  = f (1+w) e^{-w} (1 - (1+w) e^{-w})                    (Eq. 19)
    V(N_hat) = ((1+w) e^{w} - (1 + 2w + w^2)) / (f N^2 p^4)        (Eq. 24)
    V(N_hat/N) = ((1+w) e^{w} - (1 + 2w + w^2)) / (f N^4 p^4)      (Eq. 25)

with ``w = N p``.  At the operating point ``p = w/N`` the relative variance
is independent of N: 0.0342 / 0.0287 / 0.0265 for w = 1.414 / 1.817 / 2.213
(the appendix's closing numbers), and |Bias| stays below 1.4% (Fig. 3).
"""

from __future__ import annotations

import numpy as np


def _load(n: float | np.ndarray, p: float | np.ndarray) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if np.any(p <= 0.0) or np.any(p >= 1.0):
        raise ValueError("p must be in (0, 1)")
    n = np.asarray(n, dtype=np.float64)
    if np.any(n <= 0):
        raise ValueError("n must be positive")
    return n * p


def collision_count_variance(n: float | np.ndarray, p: float,
                             frame_size: int) -> float | np.ndarray:
    """V(n_c) of Eq. 19 (Poisson approximation of the binomial)."""
    w = _load(n, p)
    hit = (1.0 + w) * np.exp(-w)
    return frame_size * hit * (1.0 - hit)


def estimator_bias(n: float | np.ndarray, p: float,
                   frame_size: int) -> float | np.ndarray:
    """E(N_hat) - N per Eq. 15.

    ``ln(1-p)`` is negative, so the bias comes out *positive*: the Jensen
    curvature of the log inversion makes the estimator mildly overestimate.
    """
    w = _load(n, p)
    return -(np.exp(w) - 1.0 - w) / (
        2.0 * frame_size * np.log(1.0 - p) * (1.0 + w))


def estimator_relative_bias(n: float | np.ndarray, p: float,
                            frame_size: int) -> float | np.ndarray:
    """Bias(N_hat/N) per Eq. 16."""
    w = _load(n, p)
    n = np.asarray(n, dtype=np.float64)
    return (1.0 + w - np.exp(w)) / (
        2.0 * frame_size * n * np.log(1.0 - p) * (1.0 + w))


def estimator_variance(n: float | np.ndarray, p: float,
                       frame_size: int) -> float | np.ndarray:
    """V(N_hat) per Eq. 24."""
    w = _load(n, p)
    n = np.asarray(n, dtype=np.float64)
    numerator = (1.0 + w) * np.exp(w) - (1.0 + 2.0 * w + w * w)
    return numerator / (frame_size * n ** 2 * p ** 4)


def estimator_relative_variance(n: float | np.ndarray, p: float,
                                frame_size: int) -> float | np.ndarray:
    """V(N_hat/N) per Eq. 25."""
    n = np.asarray(n, dtype=np.float64)
    return estimator_variance(n, p, frame_size) / n ** 2


def relative_variance_at_load(omega: float, frame_size: int) -> float:
    """V(N_hat/N) at the operating point ``p = omega/N`` (N-independent).

    Substituting ``Np = omega`` into Eq. 25 gives
    ``((1+w)e^w - (1+2w+w^2)) / (f w^4)`` -- the appendix's 0.0342 / 0.0287 /
    0.0265 for the three optimal loads.
    """
    if omega <= 0:
        raise ValueError("omega must be positive")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    numerator = (1.0 + omega) * np.exp(omega) - (1.0 + 2.0 * omega
                                                 + omega * omega)
    return float(numerator / (frame_size * omega ** 4))


def relative_bias_at_load(omega: float, n: float | np.ndarray,
                          frame_size: int) -> float | np.ndarray:
    """|Bias|-style curve of Fig. 3: Eq. 16 evaluated at ``p = omega/N``."""
    n = np.asarray(n, dtype=np.float64)
    if np.any(n <= omega):
        raise ValueError("n must exceed omega so that p < 1")
    p = omega / n
    return estimator_relative_bias(n, p, frame_size)
