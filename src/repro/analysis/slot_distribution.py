"""Expected per-frame slot-type counts (paper Eq. 6-11, Fig. 4).

With ``N`` participating tags each transmitting with probability ``p`` in
every slot of a frame of size ``f``:

    E(n0) = f * (1-p)^N                          (empty slots,     Eq. 7)
    E(n1) = f * N p (1-p)^(N-1)                  (singleton slots, Eq. 9)
    E(nc) = f - E(n0) - E(n1)                    (collision slots, Eq. 10)

Fig. 4's point is that E(n1) is *not* monotonic in N (it peaks at N = 1/p
and falls), so the singleton count cannot serve as an estimator of N, while
E(nc) is strictly increasing and inverts cleanly -- which is why FCAT's
embedded estimator reads the collision count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def expected_empty_slots(n: float | np.ndarray, p: float,
                         frame_size: int) -> float | np.ndarray:
    """E(n0) = f (1-p)^N (Eq. 7)."""
    _validate(p, frame_size)
    return frame_size * (1.0 - p) ** np.asarray(n, dtype=np.float64)


def expected_singleton_slots(n: float | np.ndarray, p: float,
                             frame_size: int) -> float | np.ndarray:
    """E(n1) = f N p (1-p)^(N-1) (Eq. 9)."""
    _validate(p, frame_size)
    n = np.asarray(n, dtype=np.float64)
    return frame_size * n * p * (1.0 - p) ** (n - 1.0)


def expected_collision_slots(n: float | np.ndarray, p: float,
                             frame_size: int) -> float | np.ndarray:
    """E(nc) = f - E(n0) - E(n1) (Eq. 10)."""
    return (frame_size
            - expected_empty_slots(n, p, frame_size)
            - expected_singleton_slots(n, p, frame_size))


@dataclass(frozen=True)
class SlotExpectations:
    """The three expectations evaluated over a grid of population sizes."""

    n: np.ndarray
    empty: np.ndarray
    singleton: np.ndarray
    collision: np.ndarray


def slot_expectations(n_values: np.ndarray, p: float,
                      frame_size: int) -> SlotExpectations:
    """Evaluate E(n0), E(n1), E(nc) over ``n_values`` (the Fig. 4 curves)."""
    n = np.asarray(n_values, dtype=np.float64)
    return SlotExpectations(
        n=n,
        empty=np.asarray(expected_empty_slots(n, p, frame_size)),
        singleton=np.asarray(expected_singleton_slots(n, p, frame_size)),
        collision=np.asarray(expected_collision_slots(n, p, frame_size)),
    )


def singleton_peak(p: float) -> float:
    """The population size at which E(n1) peaks: N* = -1/ln(1-p) ~ 1/p.

    Populations on either side of the peak produce the same singleton count,
    the non-invertibility Fig. 4 illustrates.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    return -1.0 / np.log1p(-p)


def _validate(p: float, frame_size: int) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
