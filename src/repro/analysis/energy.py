"""Tag-side energy accounting.

The paper targets battery-powered active tags (section I), so throughput is
not the only resource: every ID broadcast drains the battery.  Per-tag
transmission counts fall out of the protocol structure:

* FCAT transmits with probability ``p = omega/N`` per slot over a session of
  ``~N / P_useful`` slots, so a tag expects ``omega / P_useful(omega,
  lambda)`` broadcasts before it is dismissed -- ~2.4 for lambda = 2.
* Framed ALOHA (DFSA) transmits once per frame; a tag survives a frame with
  probability ``1 - 1/e``, so it expects ``e ~ 2.72`` broadcasts.
* Tree protocols answer every query addressed to their subtree:
  ``~log2(N)`` broadcasts per tag.

So FCAT is not just faster -- it is also the gentlest on tag batteries, and
the tree protocols' energy cost *grows with the population*.  The A7
ablation measures this; the closed forms here predict it.
"""

from __future__ import annotations

import math

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.optimal import optimal_omega, useful_slot_probability
from repro.sim.result import ReadingResult

#: A typical active-tag transmit power (watts) for the energy conversion.
DEFAULT_TX_POWER_W = 10e-3


def transmissions_per_tag(result: ReadingResult) -> float:
    """Average ID broadcasts each tag made during the session."""
    if result.n_tags == 0:
        return 0.0
    return result.tag_transmissions / result.n_tags


def energy_per_tag_joules(result: ReadingResult,
                          tx_power_w: float = DEFAULT_TX_POWER_W,
                          timing: TimingModel = ICODE_TIMING) -> float:
    """Average transmit energy per tag: broadcasts x ID airtime x power."""
    if tx_power_w <= 0:
        raise ValueError("tx_power_w must be positive")
    airtime = timing.transmission_time(timing.id_bits)
    return transmissions_per_tag(result) * airtime * tx_power_w


def expected_transmissions_fcat(lam: int, omega: float | None = None) -> float:
    """Closed form: ``omega / P(1 <= Poisson(omega) <= lambda)``.

    A tag transmits ``omega/N`` of the time over ``N / P_useful`` slots.
    """
    load = omega if omega is not None else optimal_omega(lam)
    useful = useful_slot_probability(load, lam)
    if useful <= 0:
        return float("inf")
    return load / useful


def expected_transmissions_dfsa() -> float:
    """Closed form: one broadcast per frame, geometric with success 1/e."""
    return math.e


def expected_transmissions_tree(n_tags: int) -> float:
    """Closed form: a tag answers every query on its root path, ~log2(N)+1.

    (Plus the 0.44N empty/0-sibling visits shared across tags, which do not
    involve the tag itself.)
    """
    if n_tags < 1:
        return 0.0
    return math.log2(n_tags) + 1.0
