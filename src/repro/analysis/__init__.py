"""Closed-form analysis from the paper: slot distributions (Eq. 6-11, Fig. 4),
estimator bias/variance (Eq. 15-16, 24-25, Fig. 3), and the classic
throughput bounds of section VII."""

from repro.analysis.bounds import (
    aloha_throughput_bound,
    fcat_throughput_bound,
    tree_throughput_bound,
)
from repro.analysis.estimator_stats import (
    estimator_bias,
    estimator_relative_bias,
    estimator_relative_variance,
    estimator_variance,
    collision_count_variance,
)
from repro.analysis.energy import (
    energy_per_tag_joules,
    expected_transmissions_dfsa,
    expected_transmissions_fcat,
    expected_transmissions_tree,
    transmissions_per_tag,
)
from repro.analysis.link_budget import (
    channel_model_from_snr,
    ebn0_from_sample_snr,
    frame_error_rate,
    msk_coherent_ber,
    simulated_ber,
)
from repro.analysis.session_model import (
    SessionPrediction,
    predict_session,
    predicted_gain_over_aloha,
    predicted_resolved_fraction,
    slot_mix,
)
from repro.analysis.slot_distribution import (
    expected_collision_slots,
    expected_empty_slots,
    expected_singleton_slots,
    slot_expectations,
)

__all__ = [
    "aloha_throughput_bound",
    "fcat_throughput_bound",
    "tree_throughput_bound",
    "estimator_bias",
    "estimator_relative_bias",
    "estimator_relative_variance",
    "estimator_variance",
    "collision_count_variance",
    "expected_collision_slots",
    "expected_empty_slots",
    "expected_singleton_slots",
    "slot_expectations",
    "SessionPrediction",
    "predict_session",
    "predicted_gain_over_aloha",
    "predicted_resolved_fraction",
    "slot_mix",
    "energy_per_tag_joules",
    "expected_transmissions_dfsa",
    "expected_transmissions_fcat",
    "expected_transmissions_tree",
    "transmissions_per_tag",
    "channel_model_from_snr",
    "ebn0_from_sample_snr",
    "frame_error_rate",
    "msk_coherent_ber",
    "simulated_ber",
]
