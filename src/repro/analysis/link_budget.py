"""Link budget: connecting sample SNR to protocol-level error knobs.

The protocol simulator's :class:`~repro.sim.channel.ChannelModel` takes
abstract probabilities (corrupted singleton, unresolvable record).  The
waveform layer can *measure* them for a given SNR, and classic detection
theory bounds them:

* Coherent MSK detection achieves ``BER = Q(sqrt(2 Eb/N0))``.  Our
  demodulator sums per-sample phase differences, which is markedly
  suboptimal at low SNR (no matched filtering before the angle decision);
  it respects the coherent bound and reaches error-free operation around
  ~20 dB Eb/N0.  Measuring rather than assuming its BER is the point of
  this module.
* With ``S`` samples per bit at unit amplitude, the per-bit energy over the
  per-sample noise floor is ``Eb/N0 [dB] = SNR_sample [dB] + 10 log10(S)``.
* A 96-bit ID fails its CRC when any bit flips:
  ``FER = 1 - (1 - BER)^96``.

:func:`channel_model_from_snr` packages the measured rates so a protocol
sweep can be parameterized by "the reader hears tags at X dB" instead of
hand-picked probabilities.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.phy.channel import awgn
from repro.phy.msk import SAMPLES_PER_BIT, msk_demodulate, msk_modulate
from repro.sim.channel import ChannelModel


def q_function(x: float | np.ndarray) -> float | np.ndarray:
    """The Gaussian tail probability Q(x)."""
    return 0.5 * special.erfc(np.asarray(x, dtype=np.float64) / math.sqrt(2))


def ebn0_from_sample_snr(snr_db: float,
                         samples_per_bit: int = SAMPLES_PER_BIT) -> float:
    """Convert per-sample SNR to Eb/N0 (both in dB)."""
    if samples_per_bit < 1:
        raise ValueError("samples_per_bit must be >= 1")
    return snr_db + 10.0 * math.log10(samples_per_bit)


def msk_coherent_ber(ebn0_db: float) -> float:
    """The coherent-detection bound ``Q(sqrt(2 Eb/N0))``."""
    ebn0 = 10.0 ** (ebn0_db / 10.0)
    return float(q_function(math.sqrt(2.0 * ebn0)))


def simulated_ber(snr_db: float, rng: np.random.Generator,
                  n_bits: int = 20_000,
                  samples_per_bit: int = SAMPLES_PER_BIT) -> float:
    """Measure the differential MSK demodulator's BER at a sample SNR."""
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    bits = rng.integers(0, 2, size=n_bits).astype(np.uint8)
    noisy = awgn(msk_modulate(bits, samples_per_bit=samples_per_bit),
                 snr_db, rng)
    decoded = msk_demodulate(noisy, samples_per_bit=samples_per_bit)
    return float((decoded != bits).mean())


def frame_error_rate(ber: float, frame_bits: int = 96) -> float:
    """P(any bit of an ID flips) -- the CRC rejection probability."""
    if not 0.0 <= ber <= 1.0:
        raise ValueError("ber must be in [0, 1]")
    if frame_bits < 1:
        raise ValueError("frame_bits must be >= 1")
    return 1.0 - (1.0 - ber) ** frame_bits


def channel_model_from_snr(snr_db: float, rng: np.random.Generator,
                           samples_per_bit: int = 4,
                           ber_bits: int = 20_000,
                           resolve_trials: int = 30,
                           ack_loss_prob: float = 0.0) -> ChannelModel:
    """Measure a :class:`ChannelModel` for a given reader-side SNR.

    ``singleton_corrupt_prob`` comes from the measured BER through the
    96-bit frame error rate; ``collision_unusable_prob`` from the measured
    2-collision resolvability (gain re-estimation decoder, the realistic
    one).  Acknowledgement loss is reader-to-tag and must be supplied.
    """
    from repro.experiments.ablations import resolvability_rate

    ber = simulated_ber(snr_db, rng, n_bits=ber_bits,
                        samples_per_bit=samples_per_bit)
    corrupt = min(frame_error_rate(ber), 1.0)
    resolve = resolvability_rate(2, snr_db, trials=resolve_trials,
                                 samples_per_bit=samples_per_bit, rng=rng)
    return ChannelModel(singleton_corrupt_prob=corrupt,
                        ack_loss_prob=ack_loss_prob,
                        collision_unusable_prob=1.0 - resolve)
