"""A mean-field model of a whole FCAT session.

The paper derives the per-slot optimum (section IV-C) but reports session
totals (Tables II/III) only from simulation.  A mean-field argument fills
the gap: when the report probability tracks ``p = omega / N_i``, the slot
mix stays at the Poisson(omega) fractions

    P_empty = e^{-omega},  P_single = omega e^{-omega},
    P_k = omega^k / k! e^{-omega},

and every singleton or (resolvable) k-collision slot with ``k <= lambda``
eventually yields exactly one ID.  Hence:

* IDs per slot  = P_single + r * sum_{k=2..lambda} P_k,  with ``r`` the
  fraction of within-lambda records that ultimately resolve (r = 1 on a
  clean channel: every constituent is eventually learned, so every usable
  record reaches the one-unknown state);
* total slots   ~ N / (IDs per slot);
* resolved fraction = r * sum_{k=2..lambda} P_k / (IDs per slot)  -- the
  Table III column, e.g. 0.243 / 0.587 = 41.4% for lambda = 2;
* expected empty / singleton / collision counts = slot fractions x total
  (the Table II rows).

These closed forms are validated against the simulator in
``tests/analysis/test_session_model.py`` and against the paper's Table II
numbers in the benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.optimal import optimal_omega


@dataclass(frozen=True)
class SessionPrediction:
    """Mean-field predictions for one FCAT session."""

    n_tags: int
    lam: int
    omega: float
    total_slots: float
    empty_slots: float
    singleton_slots: float
    collision_slots: float
    resolved_ids: float
    throughput: float

    @property
    def resolved_fraction(self) -> float:
        return self.resolved_ids / self.n_tags if self.n_tags else 0.0


def slot_mix(omega: float, lam: int) -> tuple[float, float, float, float]:
    """(P_empty, P_single, P_useful_collision, P_wasted_collision)."""
    if omega <= 0:
        raise ValueError("omega must be positive")
    if lam < 2:
        raise ValueError("lam must be >= 2")
    p_empty = math.exp(-omega)
    p_single = omega * math.exp(-omega)
    p_useful = sum(omega ** k / math.factorial(k) for k in range(2, lam + 1)
                   ) * math.exp(-omega)
    p_wasted = 1.0 - p_empty - p_single - p_useful
    return p_empty, p_single, p_useful, max(p_wasted, 0.0)


def predict_session(n_tags: int, lam: int = 2, omega: float | None = None,
                    resolvable_fraction: float = 1.0,
                    frame_size: int = 30,
                    timing: TimingModel = ICODE_TIMING) -> SessionPrediction:
    """Mean-field session totals (Table II/III rows) and throughput.

    ``resolvable_fraction`` is the channel's ``1 - collision_unusable_prob``;
    throughput accounts for FCAT's advertisements and 23-bit announcements
    exactly as the simulator's timing model does.
    """
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    if not 0.0 <= resolvable_fraction <= 1.0:
        raise ValueError("resolvable_fraction must be in [0, 1]")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    load = omega if omega is not None else optimal_omega(lam)
    p_empty, p_single, p_useful, p_wasted = slot_mix(load, lam)
    ids_per_slot = p_single + resolvable_fraction * p_useful
    if ids_per_slot <= 0:
        raise ValueError("the configured session can never read a tag")
    total = n_tags / ids_per_slot
    resolved = resolvable_fraction * p_useful * total
    frames = total / frame_size
    duration = timing.session_seconds(
        slots=int(round(total)),
        advertisements=int(round(frames)),
        index_announcements=int(round(resolved)),
    )
    throughput = n_tags / duration if duration > 0 else 0.0
    return SessionPrediction(
        n_tags=n_tags, lam=lam, omega=load,
        total_slots=total,
        empty_slots=p_empty * total,
        singleton_slots=p_single * total,
        collision_slots=(p_useful + p_wasted) * total,
        resolved_ids=resolved,
        throughput=throughput,
    )


def predicted_resolved_fraction(lam: int, omega: float | None = None,
                                resolvable_fraction: float = 1.0) -> float:
    """The Table III fraction: resolved IDs / all IDs (41% / 59% / 69%)."""
    load = omega if omega is not None else optimal_omega(lam)
    _, p_single, p_useful, _ = slot_mix(load, lam)
    useful = p_single + resolvable_fraction * p_useful
    if useful <= 0:
        return 0.0
    return resolvable_fraction * p_useful / useful


def predicted_gain_over_aloha(lam: int, resolvable_fraction: float = 1.0
                              ) -> float:
    """Ideal throughput gain over the 1/e ALOHA optimum (slot-count basis)."""
    load = optimal_omega(lam)
    _, p_single, p_useful, _ = slot_mix(load, lam)
    return (p_single + resolvable_fraction * p_useful) * math.e - 1.0
