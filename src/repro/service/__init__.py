"""Multi-reader sharded inventory serving at facility scale.

The paper sizes its protocols against "a large warehouse deployment"; this
package is the production shape of that scenario: one facility, many
ANC-capable readers, a service answering inventory requests.  It composes
the repo's existing layers -- the FCAT protocol, the channel model, the
vectorized kernels, the cached sweep executor and the ``repro.obs``
telemetry -- behind an asyncio HTTP front end:

* :mod:`repro.service.sharding` -- partition the tag population across a
  ring of reader zones, phase the interference graph, and size each
  zone's frame by the multi-packet-reception analysis (Pudasaini et al.).
* :mod:`repro.service.interference` -- map residual overlapping-zone
  concurrency onto the per-slot channel error process.
* :mod:`repro.service.requests` -- the request schema, its content
  address, and the canonical response encoding.
* :mod:`repro.service.core` -- the service: one compute lane, a response
  store, the shared result cache, a service-lifetime observation.
* :mod:`repro.service.frontend` / :mod:`repro.service.client` -- stdlib
  asyncio HTTP server and client.

Run it: ``python -m repro.service`` (see ``docs/service.md``).

The contract worth stating twice: the response to a request is a pure
function of the request -- same address in, same bytes out, at any
``jobs``, any concurrency, warm or cold.
"""

from repro.service.client import http_get, post_inventory
from repro.service.core import (
    SERVICE_CELL_STRIDE,
    InventoryService,
    ServiceConfig,
)
from repro.service.frontend import MAX_BODY_BYTES, ServiceFrontend
from repro.service.interference import DEFAULT_INTERFERENCE, InterferenceModel
from repro.service.requests import (
    InventoryRequest,
    encode_response,
    request_from_dict,
)
from repro.service.sharding import (
    ShardPlan,
    ZoneShard,
    mpr_optimal_frame_size,
    mpr_reads_per_slot,
    plan_shards,
)

__all__ = [
    "http_get",
    "post_inventory",
    "SERVICE_CELL_STRIDE",
    "InventoryService",
    "ServiceConfig",
    "MAX_BODY_BYTES",
    "ServiceFrontend",
    "DEFAULT_INTERFERENCE",
    "InterferenceModel",
    "InventoryRequest",
    "encode_response",
    "request_from_dict",
    "ShardPlan",
    "ZoneShard",
    "mpr_optimal_frame_size",
    "mpr_reads_per_slot",
    "plan_shards",
]
