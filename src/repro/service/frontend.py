"""The asyncio front end: HTTP/1.1 over ``asyncio.start_server``.

The event loop owns accept/parse/respond; simulation never runs on it.
``POST /inventory`` bodies parse into :class:`~repro.service.requests.
InventoryRequest` and dispatch to :meth:`InventoryService.handle` on a
thread pool (the service's compute lane serializes the actual simulation,
so the pool's width bounds *queued* requests, not concurrent compute), and
the canonical response bytes stream back verbatim -- the front end never
re-encodes a payload, which is how the byte-identity contract crosses the
wire intact.

Endpoints:

``POST /inventory``
    Body: a JSON request object.  200 with the canonical response bytes;
    400 with an ``{"error": ...}`` body on a malformed request.
``GET /healthz``
    The run manifest of everything served so far (the same document batch
    CLIs write via ``--manifest-out``), wrapped with a ``status`` field.
``GET /stats``
    Counters, histograms, event counts and result-cache accounting.
``GET /metrics.jsonl``
    The service's event stream as JSON Lines with a trailing
    ``metrics_snapshot`` -- pipe to a file and it validates under
    ``python -m repro.obs.report`` against the ``/healthz`` manifest.

Everything is stdlib: the environment bakes no HTTP framework in, and a
reading-protocol testbed has no business pulling one for four routes.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

from repro.service.core import InventoryService
from repro.service.requests import request_from_dict

__all__ = [
    "MAX_BODY_BYTES",
    "ServiceFrontend",
]

#: Request bodies larger than this are rejected outright (a request is a
#: dozen scalar fields; anything bigger is not one of ours).
MAX_BODY_BYTES = 64 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


def _http_response(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    head = (f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def _error_body(message: str) -> bytes:
    return (json.dumps({"error": message}) + "\n").encode("utf-8")


class ServiceFrontend:
    """One listening socket in front of one :class:`InventoryService`."""

    def __init__(self, service: InventoryService, host: str = "127.0.0.1",
                 port: int = 8423, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="inventory")
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and listen; ``port=0`` picks a free port (see ``self.port``)."""
        self._server = await asyncio.start_server(self._serve_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)

    # -- the one connection handler ----------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._respond(reader)
        except Exception as error:  # never kill the accept loop
            response = _http_response(500, _error_body(str(error)))
        try:
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return _http_response(400, _error_body("malformed request line"))
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return _http_response(
                        400, _error_body("bad Content-Length"))
        if content_length > MAX_BODY_BYTES:
            return _http_response(413, _error_body("request body too large"))
        body = await reader.readexactly(content_length) if content_length \
            else b""
        return await self._route(method, path, body)

    async def _route(self, method: str, path: str, body: bytes) -> bytes:
        if path == "/inventory":
            if method != "POST":
                return _http_response(405, _error_body("POST /inventory"))
            return await self._post_inventory(body)
        if method != "GET":
            return _http_response(405, _error_body(f"GET {path}"))
        if path == "/healthz":
            manifest = self.service.manifest().to_dict()
            payload = {"status": "ok", "manifest": manifest}
            return _http_response(
                200, (json.dumps(payload, sort_keys=True) + "\n")
                .encode("utf-8"))
        if path == "/stats":
            return _http_response(
                200, (json.dumps(self.service.stats(), sort_keys=True)
                      + "\n").encode("utf-8"))
        if path == "/metrics.jsonl":
            lines = "".join(json.dumps(event.to_json()) + "\n"
                            for event in self.service.metrics_events())
            return _http_response(200, lines.encode("utf-8"),
                                  content_type="application/jsonl")
        return _http_response(404, _error_body(f"no route {path}"))

    async def _post_inventory(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _http_response(400, _error_body(f"bad JSON body: {error}"))
        try:
            request = request_from_dict(payload)
        except ValueError as error:
            return _http_response(400, _error_body(str(error)))
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(self._pool,
                                              self.service.handle, request)
        return _http_response(200, response)
