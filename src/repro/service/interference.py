"""Reader-to-reader interference as a per-slot error process.

Two readers whose interrogation zones overlap and who read *concurrently*
garble each other's sessions: a tag in the overlap hears two advertisements
and answers both, so its slot in either session carries a superposition the
ANC decoder was never meant to see (the scheduling layer's rationale for
phase-separating such readers).  When the facility cannot afford enough
phases -- ``max_phases`` below the interference graph's chromatic number --
some overlap runs concurrently anyway, and this module maps that *residual
overlap load* onto the existing per-slot :class:`~repro.sim.channel.
ChannelModel` Bernoulli knobs:

* a singleton from a shared tag collides with its answer in the other
  session -> the CRC rejects it (``singleton_corrupt_prob``);
* a collision record polluted by out-of-zone energy never resolves
  (``collision_unusable_prob``);
* an acknowledgement may be drowned by the neighbouring reader's carrier
  (``ack_loss_prob``).

The load of a zone is the fraction of its coverage shared with zones
active in the same phase; the mapping is deterministic (no draws happen
here -- the channel itself draws inside the simulators), so the same shard
plan always yields the same channels and the service's byte-identical
response contract survives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.channel import ChannelModel

__all__ = [
    "DEFAULT_INTERFERENCE",
    "InterferenceModel",
]


@dataclass(frozen=True)
class InterferenceModel:
    """Deterministic map from residual overlap load to channel errors.

    Each coefficient scales the load (fraction of a zone's tags shared
    with concurrently active zones, in ``[0, 1]``) into the matching
    Bernoulli probability, clamped to ``cap`` so a fully-overlapped zone
    still terminates (the protocols retry corrupted singletons forever at
    probability 1).
    """

    #: Load multiplier for singleton CRC failures.
    singleton_corrupt_coeff: float = 0.5
    #: Load multiplier for unresolvable collision records.
    collision_unusable_coeff: float = 0.8
    #: Load multiplier for lost acknowledgements.
    ack_loss_coeff: float = 0.2
    #: Upper clamp on every derived probability.
    cap: float = 0.6

    def __post_init__(self) -> None:
        for name in ("singleton_corrupt_coeff", "collision_unusable_coeff",
                     "ack_loss_coeff"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.cap < 1.0:
            raise ValueError("cap must be in [0, 1)")

    def _scale(self, coeff: float, load: float) -> float:
        return min(coeff * load, self.cap)

    def channel_for_load(self, load: float,
                         base: ChannelModel | None = None) -> ChannelModel:
        """The channel a zone experiences under ``load`` residual overlap.

        ``base`` carries ambient (non-interference) impairments; the
        interference contribution composes with it as independent error
        sources: ``1 - (1-p_base)(1-p_interference)``.  A zero load
        returns ``base`` itself, so interference-free shard plans keep the
        exact channel object (and therefore the exact cache keys) the
        plain executor path uses.
        """
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        if base is None:
            base = ChannelModel()
        if load == 0.0:
            return base

        def compose(p_base: float, p_extra: float) -> float:
            return 1.0 - (1.0 - p_base) * (1.0 - p_extra)

        return ChannelModel(
            singleton_corrupt_prob=compose(
                base.singleton_corrupt_prob,
                self._scale(self.singleton_corrupt_coeff, load)),
            ack_loss_prob=compose(
                base.ack_loss_prob,
                self._scale(self.ack_loss_coeff, load)),
            collision_unusable_prob=compose(
                base.collision_unusable_prob,
                self._scale(self.collision_unusable_coeff, load)),
            capture_prob=base.capture_prob,
        )


#: The calibration the service uses unless a request overrides it.
DEFAULT_INTERFERENCE = InterferenceModel()
