"""A minimal asyncio client for the inventory service.

The load driver (``scripts/serve_demo.py``), the CI smoke step and the
front-end tests all talk to the service through these two calls; like the
server they speak plain HTTP/1.1 over ``asyncio.open_connection`` --
one request per connection, ``Connection: close`` -- so the raw response
bytes come back exactly as the service encoded them and byte-identity
checks can compare them directly.
"""

from __future__ import annotations

import asyncio
import json

__all__ = [
    "http_get",
    "post_inventory",
]


async def _exchange(host: str, port: int, head: str,
                    body: bytes = b"") -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        parts = status_line.split(maxsplit=2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        content_length: int | None = None
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        payload = await (reader.readexactly(content_length)
                         if content_length is not None else reader.read())
        return status, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def post_inventory(host: str, port: int,
                         request: dict) -> tuple[int, bytes]:
    """POST one inventory request; returns ``(status, raw response bytes)``."""
    body = json.dumps(request).encode("utf-8")
    head = (f"POST /inventory HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n")
    return await _exchange(host, port, head, body)


async def http_get(host: str, port: int, path: str) -> tuple[int, bytes]:
    """GET a service endpoint; returns ``(status, raw response bytes)``."""
    head = (f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n")
    return await _exchange(host, port, head)
