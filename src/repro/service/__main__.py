"""``python -m repro.service``: boot the inventory service.

Binds the asyncio front end on ``--host``/``--port`` and serves until
interrupted.  ``--port 0`` picks a free port and prints it -- the smoke
and demo drivers use that to avoid fixed-port collisions in CI.
"""

from __future__ import annotations

import argparse
import asyncio
from pathlib import Path

from repro.experiments.executor import default_jobs
from repro.experiments.result_cache import ResultCache
from repro.service.core import InventoryService, ServiceConfig
from repro.service.frontend import ServiceFrontend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="multi-reader sharded inventory service")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8423,
                        help="bind port; 0 picks a free one (default 8423)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for each request's executor "
                             f"fan-out (0 = all cores, here {default_jobs()})")
    parser.add_argument("--workers", type=int, default=4,
                        help="front-end threads accepting requests "
                             "(default 4); compute itself is one lane")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="recompute every zone cell instead of serving "
                             "warm ones from .repro-results-cache.json")
    parser.add_argument("--result-cache", type=Path, default=None,
                        help="path of the result-cache file (default: "
                             "./.repro-results-cache.json)")
    return parser


def build_frontend(args: argparse.Namespace) -> ServiceFrontend:
    jobs = default_jobs() if args.jobs == 0 else args.jobs
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 0, got {args.jobs}")
    cache = None
    if not args.no_result_cache:
        cache = ResultCache(args.result_cache) if args.result_cache \
            else ResultCache()
    service = InventoryService(ServiceConfig(jobs=jobs, cache=cache))
    try:
        return ServiceFrontend(service, host=args.host, port=args.port,
                               workers=args.workers)
    except ValueError as error:
        raise SystemExit(f"--workers: {error}") from None


async def _serve(frontend: ServiceFrontend) -> None:
    await frontend.start()
    print(f"repro.service listening on "
          f"http://{frontend.host}:{frontend.port} "
          f"(jobs={frontend.service.config.jobs})", flush=True)
    try:
        await frontend.serve_forever()
    finally:
        await frontend.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    frontend = build_frontend(args)
    try:
        asyncio.run(_serve(frontend))
    except KeyboardInterrupt:
        print("repro.service: shutting down", flush=True)
    finally:
        cache = frontend.service.config.cache
        if cache is not None:
            cache.save()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
