"""The inventory service core: deterministic request -> response bytes.

One :class:`InventoryService` owns the whole serving state: a result cache
shared across requests, a response store keyed by request content address,
a service-lifetime :class:`~repro.obs.scope.Observation` all request
telemetry folds into, and a single compute lane.

**Determinism contract.**  The response bytes are a pure function of the
request: the shard plan is closed-form (:mod:`repro.service.sharding`),
every zone cell's seed derives from the request seed by fixed strides, the
executor's parallel fan-out is bit-for-bit identical to serial at any
``jobs``, and the payload encodes through the canonical renderer with no
timestamps.  Requests compute under one lock (the *compute lane*), so
concurrent front-end workers cannot interleave two simulations -- the
parallelism budget lives inside the lane, in the executor's process pool
-- and the same request re-issued concurrently or serially returns the
stored bytes of its first computation.

**Warm path.**  Responses are stored by request address; zone cells are
stored in the content-addressed result cache.  A repeated request is
served from the response store without touching the executor; a *new*
request whose zone cells were already simulated (same population size,
channel, frame sizing -- common across facility variants) is reassembled
from cache hits without re-simulation.  Both show up on the stats
endpoint (``service.responses.cached``, ``result_cache.hits``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core import Fcat
from repro.experiments.executor import CellSpec, execute_cells
from repro.experiments.planner import PlannerConfig
from repro.experiments.result_cache import ResultCache
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.scope import Observation
from repro.service.interference import DEFAULT_INTERFERENCE, InterferenceModel
from repro.service.requests import InventoryRequest, encode_response
from repro.service.sharding import ShardPlan, ZoneShard, plan_shards
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.result import AggregateResult

__all__ = [
    "SERVICE_CELL_STRIDE",
    "InventoryService",
    "ServiceConfig",
]

#: Seed stride decorrelating the distinct zone cells of one request
#: (sibling of the sweep grid strides in ``repro.experiments.runner``).
SERVICE_CELL_STRIDE = 100_003


@dataclass(frozen=True)
class ServiceConfig:
    """How the service computes: worker pool size and caching."""

    #: Process-pool width each request's executor fan-out may use.
    jobs: int = 1
    #: Shared cell cache; ``None`` computes every cell fresh.
    cache: ResultCache | None = field(default=None, compare=False)
    #: Interference calibration applied to every shard plan.
    interference: InterferenceModel = DEFAULT_INTERFERENCE

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


def _zone_cell_signature(zone: ZoneShard, request: InventoryRequest) -> tuple:
    """What makes two zones' simulations interchangeable.

    Zones with the same population size, frame sizing and channel draw
    their sessions from the same distribution, so one simulated cell
    serves them all -- the facility totals stay unbiased and the request's
    compute cost scales with *distinct zone configurations* (a handful on
    a ring) instead of zone count.
    """
    return (zone.n_tags, zone.frame_size, zone.channel,
            request.lam, request.runs, request.engine, request.precision)


class InventoryService:
    """Facility inventory serving with byte-identical warm and cold paths."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.obs = Observation()
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._responses: dict[str, bytes] = {}
        self._requests_served = 0
        self._responses_cached = 0

    # -- request handling --------------------------------------------------

    def handle(self, request: InventoryRequest) -> bytes:
        """Serve one request; the single entry point for every front end.

        Thread-safe: the whole request holds the compute lane's lock, so
        concurrent callers serialize here and the executor's ``jobs``-wide
        process pool provides the actual parallelism.
        """
        started = time.perf_counter()
        key = request.key()
        with self._lock:
            self.obs.emit("request_start", key=key, n_tags=request.n_tags,
                          zones=request.zones, seed=request.seed)
            stored = self._responses.get(key)
            if stored is not None:
                elapsed = time.perf_counter() - started
                self._account(key, elapsed, cached=True)
                return stored
            response = self._compute(request, key)
            self._responses[key] = response
            elapsed = time.perf_counter() - started
            self._account(key, elapsed, cached=False)
            return response

    def _account(self, key: str, elapsed_s: float, cached: bool) -> None:
        self._requests_served += 1
        self.obs.count("service.requests")
        self.obs.observe_value("request.latency_s", elapsed_s)
        if cached:
            self._responses_cached += 1
            self.obs.count("service.responses.cached")
            self.obs.observe_value("request.warm_latency_s", elapsed_s)
        else:
            self.obs.observe_value("request.cold_latency_s", elapsed_s)
        self.obs.emit("request_done", key=key, elapsed_s=elapsed_s,
                      cached=cached)

    def _compute(self, request: InventoryRequest, key: str) -> bytes:
        """Cold path: shard, simulate distinct zone cells, assemble."""
        base = PERFECT_CHANNEL if request.channel == ChannelModel() \
            else request.channel
        plan = plan_shards(request.n_tags, request.zones,
                           capability=request.lam, overlap=request.overlap,
                           max_phases=request.max_phases, base_channel=base,
                           interference=self.config.interference)
        # Deduplicate interchangeable zones into distinct cells, in first-
        # appearance order so cell seeds are stable under zone reindexing.
        signatures: dict[tuple, int] = {}
        specs: list[CellSpec] = []
        zone_cell: dict[int, int] = {}
        for zone in plan.zones:
            signature = _zone_cell_signature(zone, request)
            if signature not in signatures:
                signatures[signature] = len(specs)
                specs.append(CellSpec(
                    protocol=Fcat(lam=request.lam,
                                  frame_size=zone.frame_size,
                                  initial_estimate=float(max(zone.n_tags,
                                                             1))),
                    n_tags=zone.n_tags,
                    runs=request.runs,
                    seed=request.seed + SERVICE_CELL_STRIDE * len(specs),
                    channel=zone.channel,
                    engine=request.engine,
                ))
            zone_cell[zone.index] = signatures[signature]
        self.obs.emit("shard_plan", key=key, zones=len(plan.zones),
                      phases=plan.n_phases, distinct_cells=len(specs),
                      interfered_zones=plan.interfered_zones)
        planner = None if request.precision is None \
            else PlannerConfig(precision=request.precision)
        from repro.obs import scope
        with scope.observe(self.obs):
            results = execute_cells(specs, jobs=self.config.jobs,
                                    cache=self.config.cache,
                                    planner=planner)
        for zone in plan.zones:
            self.obs.emit("shard_done", key=key, zone=zone.name,
                          n_tags=zone.n_tags, phase=zone.phase,
                          frame_size=zone.frame_size,
                          interference_load=zone.interference_load)
        payload = self._payload(request, key, plan, results, zone_cell)
        return encode_response(payload)

    @staticmethod
    def _payload(request: InventoryRequest, key: str, plan: ShardPlan,
                 results: list[AggregateResult],
                 zone_cell: dict[int, int]) -> dict:
        """Assemble the response: per-zone stats plus facility rollups."""
        zones_payload = []
        phase_durations = [0.0] * plan.n_phases
        for zone in plan.zones:
            cell = results[zone_cell[zone.index]]
            # The mean session length of this zone's reader, from the
            # cell's Monte-Carlo throughput (unique IDs per second).
            duration_s = zone.n_tags / cell.throughput_mean \
                if cell.throughput_mean > 0 else 0.0
            phase_durations[zone.phase] = max(phase_durations[zone.phase],
                                              duration_s)
            zones_payload.append({
                "name": zone.name,
                "n_tags": zone.n_tags,
                "exclusive_tags": zone.exclusive_tags,
                "phase": zone.phase,
                "frame_size": zone.frame_size,
                "interference_load": zone.interference_load,
                "throughput_mean": cell.throughput_mean,
                "throughput_std": cell.throughput_std,
                "total_slots_mean": cell.total_slots_mean,
                "resolved_mean": cell.resolved_mean,
                "runs": cell.runs,
                "estimated_duration_s": duration_s,
            })
        facility_read_s = sum(phase_durations)
        duplicates = sum(count for _, _, count in plan.overlap_pairs)
        return {
            "schema": "repro-inventory/1",
            "request": request.to_dict(),
            "request_key": key,
            "plan": {
                "zones": len(plan.zones),
                "phases": plan.n_phases,
                "interfered_zones": plan.interfered_zones,
                "distinct_cells": len(set(zone_cell.values())),
                "duplicate_coverage": duplicates,
            },
            "zones": zones_payload,
            "facility": {
                "unique_tags": plan.facility_tags,
                "phase_durations_s": phase_durations,
                "read_time_s": facility_read_s,
                "throughput": plan.facility_tags / facility_read_s
                if facility_read_s > 0 else 0.0,
            },
        }

    # -- observability surfaces --------------------------------------------

    def manifest(self, command: list[str] | None = None) -> RunManifest:
        """The provenance manifest of everything served so far."""
        with self._lock:
            return build_manifest(
                self.obs,
                command=command or ["python", "-m", "repro.service"],
                started_unix=self.started_unix, jobs=self.config.jobs)

    def stats(self) -> dict:
        """Counters, histograms and cache accounting for ``/stats``."""
        with self._lock:
            snapshot = self.obs.metrics.snapshot()
            payload = {
                "requests_served": self._requests_served,
                "responses_cached": self._responses_cached,
                "distinct_requests": len(self._responses),
                "uptime_s": max(time.time() - self.started_unix, 0.0),
                "jobs": self.config.jobs,
                "events": self.obs.events.counts(),
                "metrics": snapshot,
            }
            if self.config.cache is not None:
                payload["result_cache"] = self.config.cache.stats()
            return payload

    def metrics_events(self) -> list:
        """Dump the event stream, closed by a ``metrics_snapshot``.

        The snapshot is emitted onto the service's own stream -- exactly
        the terminal line the CLI's JSONL sinks write -- so a manifest
        built *after* this dump (``/metrics.jsonl`` then ``/healthz``,
        with no interleaving traffic) cross-checks clean under
        ``python -m repro.obs.report``: same cell keys, same event count.
        """
        with self._lock:
            self.obs.emit("metrics_snapshot",
                          metrics=self.obs.metrics.snapshot())
            return list(self.obs.events.events)

    def latency_quantiles(self) -> dict[str, float]:
        """p50/p90/p99 request latency from the service histograms."""
        with self._lock:
            histogram = self.obs.metrics.histogram("request.latency_s")
            return {"count": float(histogram.n),
                    "mean_s": histogram.mean,
                    "p50_s": histogram.quantile(0.50),
                    "p90_s": histogram.quantile(0.90),
                    "p99_s": histogram.quantile(0.99)}
