"""Inventory request/response schema and the canonical request address.

A request names a facility (tag count, zone count, overlap geometry), the
readers (ANC capability, runs per zone, engine) and a seed; everything a
response depends on lives in these fields, so a request has a *content
address* -- the SHA-256 of its canonical JSON rendering, built on the same
:func:`repro.experiments.result_cache.canonical_fingerprint` machinery the
cell cache keys use.  The service's warm path stores encoded responses
under this address, and its determinism contract is stated in terms of it:
same address in, same bytes out, whoever and whenever serves it.

Responses are rendered by :func:`encode_response`: sorted keys, exact
``repr`` floats (Python's ``json`` round-trips them), a trailing newline,
no timestamps -- every field is a pure function of the request.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.experiments.result_cache import canonical_fingerprint
from repro.kernels.engine import ENGINES
from repro.sim.channel import ChannelModel

__all__ = [
    "InventoryRequest",
    "encode_response",
    "request_from_dict",
]

#: Fields a request dict may carry (everything else is rejected early).
_REQUEST_FIELDS = ("n_tags", "zones", "seed", "runs", "lam", "overlap",
                   "max_phases", "engine", "precision", "channel")


@dataclass(frozen=True)
class InventoryRequest:
    """One facility inventory request, fully specifying its response."""

    #: Facility tag population to inventory.
    n_tags: int
    #: Reader/zone count the population shards across.
    zones: int
    #: Root seed; every zone cell seed derives from it deterministically.
    seed: int
    #: Monte-Carlo runs per zone cell.
    runs: int = 1
    #: ANC capability λ of the zone readers (MPR capability m).
    lam: int = 2
    #: Fraction of each zone's successor it also hears (ring geometry).
    overlap: float = 0.15
    #: Cap on schedule length; ``None`` allows a proper coloring.
    max_phases: int | None = None
    #: Simulation engine: ``"kernel"`` (default) or ``"scalar"``.
    engine: str = "kernel"
    #: Optional adaptive-planner precision; ``None`` runs the full budget.
    precision: float | None = None
    #: Ambient (non-interference) channel impairments.
    channel: ChannelModel = field(default_factory=ChannelModel)

    def __post_init__(self) -> None:
        if self.n_tags < 1:
            raise ValueError("n_tags must be >= 1")
        if self.zones < 1:
            raise ValueError("zones must be >= 1")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if self.lam < 2:
            raise ValueError("lam must be >= 2 (FCAT's ANC floor)")
        if not 0.0 <= self.overlap < 1.0:
            raise ValueError("overlap must be in [0, 1)")
        if self.max_phases is not None and self.max_phases < 1:
            raise ValueError("max_phases must be >= 1 or null")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {', '.join(ENGINES)}")
        if self.precision is not None and self.precision <= 0:
            raise ValueError("precision must be > 0 or null")

    def key(self) -> str:
        """The request's content address (SHA-256 of its canonical form)."""
        payload = json.dumps({"kind": "inventory-request",
                              **canonical_fingerprint(asdict(self))},
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """JSON-able form; the channel flattens to its four knobs."""
        payload = asdict(self)
        payload["channel"] = asdict(self.channel)
        return payload


def request_from_dict(payload: dict) -> InventoryRequest:
    """Parse and validate a request body; raises ``ValueError`` on junk."""
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
    if unknown:
        raise ValueError(f"unknown request field(s): {', '.join(unknown)}")
    missing = [name for name in ("n_tags", "zones", "seed")
               if name not in payload]
    if missing:
        raise ValueError(f"missing request field(s): {', '.join(missing)}")
    fields = dict(payload)
    channel = fields.pop("channel", None)
    if channel is not None:
        if not isinstance(channel, dict):
            raise ValueError("channel must be a JSON object of error knobs")
        try:
            fields["channel"] = ChannelModel(**channel)
        except TypeError as error:
            raise ValueError(f"bad channel knobs: {error}") from None
    for name in ("n_tags", "zones", "seed", "runs", "lam"):
        if name in fields and not isinstance(fields[name], int):
            raise ValueError(f"{name} must be an integer")
    try:
        return InventoryRequest(**fields)
    except TypeError as error:
        raise ValueError(f"bad request: {error}") from None


def encode_response(payload: dict) -> bytes:
    """Render a response payload to its canonical bytes.

    Sorted keys and a fixed separator style make the rendering a pure
    function of the payload's value; the payload itself is a pure function
    of the request, so the encoded bytes are the determinism contract's
    unit of comparison.
    """
    return (json.dumps(payload, sort_keys=True, separators=(", ", ": "))
            + "\n").encode("utf-8")
