"""Facility shard scheduler: zones, phases and MPR-aware frame sizing.

The scheduler turns one facility-scale inventory request into per-zone
reading sessions the executor can fan out:

1. **Partition** the tag population across ``zones`` readers arranged in a
   ring (each reader also hears a ``overlap`` fraction of its successor's
   tags -- the count-level mirror of
   :meth:`repro.inventory.zones.Warehouse.random_layout` with ``wrap=True``,
   so facility plans and ID-level warehouses share one geometry).
2. **Phase** the ring's interference graph by greedy coloring
   (:func:`repro.inventory.scheduling.interference_graph` logic at count
   level); when the request caps ``max_phases`` below the chromatic
   number, later colors fold onto earlier ones and the folded zones run
   concurrently with their neighbours.
3. **Derive channels**: each zone's residual overlap with concurrently
   active zones becomes a load in ``[0, 1]`` that the
   :class:`~repro.service.interference.InterferenceModel` maps onto the
   per-slot :class:`~repro.sim.channel.ChannelModel`.
4. **Size frames**: every zone reader is an MPR-capable (ANC, ``m = λ``)
   reader, so its initial frame size comes from the multi-packet-reception
   frame-sizing analysis of Pudasaini et al. (PAPERS.md): choose the frame
   length maximizing expected tags identified per slot when any slot
   carrying ``k <= m`` tags yields ``k`` IDs.

Everything here is closed-form or combinatorial -- no RNG draws -- so a
shard plan is a pure function of the request and the service's
byte-identical response contract holds by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.service.interference import DEFAULT_INTERFERENCE, InterferenceModel
from repro.sim.channel import ChannelModel

__all__ = [
    "ShardPlan",
    "ZoneShard",
    "mpr_optimal_frame_size",
    "mpr_reads_per_slot",
    "plan_shards",
]


def mpr_reads_per_slot(n_tags: int, frame_size: int, capability: int) -> float:
    """Expected tags identified per slot by an MPR-``m`` reader.

    With ``n`` tags each picking one of ``L`` slots uniformly, a slot's
    occupancy is Binomial(n, 1/L); a multi-packet-reception reader decodes
    every slot carrying ``1 <= k <= m`` tags in full, so the expectation is
    ``sum_{k=1}^{m} k * P[occupancy = k]``.  The pmf terms are built by the
    stable forward recurrence ``P(k+1) = P(k) * (n-k) / ((k+1)(L-1))`` from
    ``P(0) = (1 - 1/L)^n``, which stays exact for facility-scale ``n``
    where factorial formulas overflow.
    """
    if n_tags < 0:
        raise ValueError("n_tags must be >= 0")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    if capability < 1:
        raise ValueError("capability must be >= 1")
    if n_tags == 0:
        return 0.0
    if frame_size == 1:
        return float(n_tags) if n_tags <= capability else 0.0
    # P[occupancy = 0] via log1p for precision at large n / large L.
    probability = math.exp(n_tags * math.log1p(-1.0 / frame_size))
    expected = 0.0
    for k in range(min(capability, n_tags)):
        probability *= (n_tags - k) / ((k + 1) * (frame_size - 1))
        expected += (k + 1) * probability
    return expected


def mpr_optimal_frame_size(n_tags: int, capability: int) -> int:
    """The frame length maximizing :func:`mpr_reads_per_slot`.

    For ``m = 1`` this recovers the classical FSA optimum ``L* ~ n`` (slot
    efficiency ``1/e``); higher capabilities shift the optimum to shorter
    frames (more tags per slot become useful), which is exactly the gain
    the facility scheduler passes to each ANC-capable zone reader.  The
    search walks a 5% geometric grid over ``[1, 4n/m]`` and then refines
    the best point's neighbourhood linearly -- deterministic, and robust
    against the flat top of the efficiency curve.
    """
    if n_tags < 1:
        raise ValueError("n_tags must be >= 1")
    if capability < 1:
        raise ValueError("capability must be >= 1")
    upper = max(2, (4 * n_tags) // capability)
    candidates: set[int] = {1, upper}
    size = 1.0
    while size < upper:
        candidates.add(int(round(size)))
        size *= 1.05
    best = max(sorted(candidates),
               key=lambda L: (mpr_reads_per_slot(n_tags, L, capability), -L))
    window = max(2, best // 40)
    refined = range(max(1, best - window), min(upper, best + window) + 1)
    return max(refined,
               key=lambda L: (mpr_reads_per_slot(n_tags, L, capability), -L))


@dataclass(frozen=True)
class ZoneShard:
    """One reader's slice of the facility, ready to simulate."""

    name: str
    index: int
    #: Tags this zone's reader must identify (exclusive + borrowed).
    n_tags: int
    #: Tags heard exclusively by this zone.
    exclusive_tags: int
    #: Phase the reader is active in (phases run sequentially).
    phase: int
    #: Fraction of coverage shared with concurrently active zones.
    interference_load: float
    #: MPR-optimal initial frame size for this zone's population.
    frame_size: int
    #: The per-slot error process this zone reads through.
    channel: ChannelModel


@dataclass(frozen=True)
class ShardPlan:
    """The full facility schedule one request compiles to."""

    facility_tags: int
    zones: tuple[ZoneShard, ...]
    n_phases: int
    overlap: float
    capability: int
    #: Shared-tag counts per overlapping zone pair ``(i, j)``, i < j.
    overlap_pairs: tuple[tuple[int, int, int], ...]

    @property
    def interfered_zones(self) -> int:
        """Zones reading through a non-zero interference load."""
        return sum(1 for zone in self.zones if zone.interference_load > 0.0)

    def phase_members(self) -> list[list[ZoneShard]]:
        """Zones grouped by phase, phases in execution order."""
        members: list[list[ZoneShard]] = [[] for _ in range(self.n_phases)]
        for zone in self.zones:
            members[zone.phase].append(zone)
        return members

    def summary(self) -> str:
        return (f"shard plan: {self.facility_tags} tags over "
                f"{len(self.zones)} zones in {self.n_phases} phase(s), "
                f"{self.interfered_zones} zone(s) interfered")


def _ring_phases(n_zones: int, has_overlap: bool,
                 max_phases: int | None) -> list[int]:
    """Color the ring's interference graph, folding onto ``max_phases``.

    A ring with overlap 2-colors when even (alternate phases) and needs a
    third phase for one zone when odd; without overlap every zone shares
    phase 0.  Folding maps color ``c`` to ``c % max_phases``, which keeps
    the earlier (larger) color classes intact and concentrates the forced
    concurrency on the folded zones -- the deterministic equivalent of
    dropping the last reading rounds of a too-tight schedule.
    """
    if not has_overlap or n_zones == 1:
        colors = [0] * n_zones
    else:
        colors = [index % 2 for index in range(n_zones)]
        if n_zones % 2 == 1:
            colors[-1] = 2  # odd ring: the seam zone gets its own phase
    if max_phases is not None:
        if max_phases < 1:
            raise ValueError("max_phases must be >= 1")
        colors = [color % max_phases for color in colors]
    return colors


def plan_shards(n_tags: int, zones: int, capability: int = 2,
                overlap: float = 0.15, max_phases: int | None = None,
                base_channel: ChannelModel | None = None,
                interference: InterferenceModel = DEFAULT_INTERFERENCE,
                ) -> ShardPlan:
    """Compile a facility into a deterministic per-zone reading schedule.

    ``capability`` is the zones' MPR capability ``m`` (the ANC λ of the
    FCAT readers the service runs); ``overlap`` is the fraction of each
    zone's successor it also hears; ``max_phases`` caps the schedule
    length, trading wall-clock for interference the channel model absorbs.
    """
    if n_tags < 1:
        raise ValueError("n_tags must be >= 1")
    if zones < 1:
        raise ValueError("zones must be >= 1")
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    if n_tags < zones:
        raise ValueError(f"{zones} zones need at least {zones} tags")
    base = base_channel if base_channel is not None else ChannelModel()

    # Near-equal exclusive split, remainder spread over the head zones.
    exclusive = [n_tags // zones + (1 if i < n_tags % zones else 0)
                 for i in range(zones)]
    # Ring borrow: zone i also hears the head of zone (i+1) % zones.
    borrowed = [0] * zones
    if zones > 1 and overlap > 0.0:
        borrowed = [int(exclusive[(i + 1) % zones] * overlap)
                    for i in range(zones)]
    covered = [exclusive[i] + borrowed[i] for i in range(zones)]

    pairs = tuple((i, (i + 1) % zones, borrowed[i])
                  for i in range(zones) if borrowed[i] > 0)
    phases = _ring_phases(zones, any(borrowed), max_phases)
    n_phases = max(phases) + 1

    shards = []
    for index in range(zones):
        # Residual overlap: shared tags with zones active in my phase.
        shared = 0
        for left, right, count in pairs:
            if left == index and phases[right] == phases[index]:
                shared += count
            elif right == index and phases[left] == phases[index]:
                shared += count
        load = min(shared / covered[index], 1.0) if covered[index] else 0.0
        shards.append(ZoneShard(
            name=f"zone-{index:03d}",
            index=index,
            n_tags=covered[index],
            exclusive_tags=exclusive[index],
            phase=phases[index],
            interference_load=load,
            frame_size=mpr_optimal_frame_size(max(covered[index], 1),
                                              capability),
            channel=interference.channel_for_load(load, base),
        ))
    return ShardPlan(facility_tags=n_tags, zones=tuple(shards),
                     n_phases=n_phases, overlap=overlap,
                     capability=capability, overlap_pairs=pairs)
