"""Kodialam-Nandagopal cardinality estimators (paper reference [24]).

Closed forms over a probe frame of size ``L`` with persistence ``p`` and
load ``t = N p / L``:

* **Zero Estimator (ZE)** -- inverts ``E[n0] = L (1 - p/L)^N``:
  ``N_ZE = ln(n0/L) / ln(1 - p/L)``.  Its coefficient of variation is
  ``~ sqrt(e^t - 1) / (t sqrt(L))`` (delta method on the Poisson limit),
  minimized near ``t ~ 1.59``.
* **Collision Estimator (CE)** -- numerically inverts
  ``E[nc] = L (1 - e^{-t} (1 + t))``.

:func:`estimate_tag_count` packages them into the practical procedure:
double the frame out of saturation, size it for the sweet-spot load, then
average frames until a target accuracy is reached -- the "arbitrary
accuracy" pre-step SCAT assumes (paper section IV-C).  Probe slots only
need slot-occupancy *detection*, so they are far shorter than ID slots;
:func:`probe_time_seconds` accounts for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.estimate.probe import ProbeFrame, run_probe_frame

#: Load t = Np/L at which the Zero Estimator's variance is smallest.
ZE_OPTIMAL_LOAD = 1.59

#: Bits a probe slot needs on the air (occupancy detection, not an ID).
PROBE_SLOT_BITS = 10


def zero_estimator(frame: ProbeFrame) -> float | None:
    """ZE: invert the empty-slot count; ``None`` if the frame saturated."""
    if frame.empty == 0:
        return None  # every slot busy: the frame tells us only "N is large"
    if frame.empty == frame.frame_size:
        return 0.0
    ratio = frame.empty / frame.frame_size
    return math.log(ratio) / math.log(1.0 - frame.persistence
                                      / frame.frame_size)


def collision_estimator(frame: ProbeFrame) -> float | None:
    """CE: invert the collision-slot count; ``None`` if the frame saturated."""
    if frame.collision >= frame.frame_size:
        return None
    if frame.collision == 0:
        # No collisions: the singleton count is exact in expectation.
        return frame.singleton / frame.persistence
    target = frame.collision / frame.frame_size

    def g(load: float) -> float:
        return 1.0 - math.exp(-load) * (1.0 + load) - target

    load = optimize.brentq(g, 1e-12, 80.0)
    return load * frame.frame_size / frame.persistence


def ze_coefficient_of_variation(load: float, frame_size: int) -> float:
    """Approximate CV of one ZE reading at the given load."""
    if load <= 0:
        raise ValueError("load must be positive")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    return math.sqrt(math.exp(load) - 1.0) / (load * math.sqrt(frame_size))


@dataclass(frozen=True)
class CardinalityEstimate:
    """Result of the multi-frame estimation procedure."""

    estimate: float
    frames_used: int
    total_probe_slots: int
    achieved_cv: float
    per_frame_estimates: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.estimate < 0:
            raise ValueError("estimate must be non-negative")


def estimate_tag_count(n_tags: int, rng: np.random.Generator,
                       target_cv: float = 0.05,
                       initial_frame_size: int = 16,
                       persistence: float = 1.0,
                       estimator: str = "zero",
                       max_frames: int = 10_000) -> CardinalityEstimate:
    """Run probe frames against a (simulated) population of ``n_tags``.

    Doubles the frame size until the Zero Estimator un-saturates, re-sizes
    the frame for the ZE sweet-spot load, then keeps probing until the
    averaged estimate's CV falls below ``target_cv``.
    """
    if not 0.0 < target_cv < 1.0:
        raise ValueError("target_cv must be in (0, 1)")
    if estimator not in ("zero", "collision"):
        raise ValueError(f"unknown estimator {estimator!r}")
    invert = zero_estimator if estimator == "zero" else collision_estimator
    frame_size = initial_frame_size
    frames_used = 0
    total_slots = 0
    estimates: list[float] = []
    working: float | None = None
    while frames_used < max_frames:
        frame = run_probe_frame(n_tags, frame_size, persistence, rng)
        frames_used += 1
        total_slots += frame.frame_size
        value = invert(frame)
        if value is None or (estimator == "zero"
                             and frame.empty < 0.05 * frame.frame_size):
            # Saturated or nearly so: the ZE's log blows its bias up when
            # only a handful of slots are empty.  Treat as "N is large",
            # double the frame, and keep the reading out of the average.
            frame_size *= 2
            continue
        estimates.append(value)
        working = sum(estimates) / len(estimates)
        if working < 1.0 and len(estimates) >= 3:
            # A (near-)empty deployment: three quiet frames settle it; the
            # CV formula is meaningless at N ~ 0.
            return CardinalityEstimate(
                estimate=max(working, 0.0), frames_used=frames_used,
                total_probe_slots=total_slots, achieved_cv=target_cv,
                per_frame_estimates=tuple(estimates))
        # Re-center the frame on the sweet-spot load for the next round.
        frame_size = max(int(round(persistence * max(working, 1.0)
                                   / ZE_OPTIMAL_LOAD)), initial_frame_size)
        load = persistence * max(working, 1.0) / frame_size
        single_cv = ze_coefficient_of_variation(max(load, 1e-6), frame_size)
        achieved = single_cv / math.sqrt(len(estimates))
        if achieved <= target_cv:
            return CardinalityEstimate(
                estimate=max(working, 0.0), frames_used=frames_used,
                total_probe_slots=total_slots, achieved_cv=achieved,
                per_frame_estimates=tuple(estimates))
    raise RuntimeError("estimation did not reach the target accuracy within "
                       f"{max_frames} probe frames")


def probe_time_seconds(total_probe_slots: int, frames: int,
                       timing: TimingModel = ICODE_TIMING) -> float:
    """Air time of the pre-step: short detection slots plus frame adverts."""
    if total_probe_slots < 0 or frames < 0:
        raise ValueError("counts must be non-negative")
    slot = timing.guard_time + timing.transmission_time(PROBE_SLOT_BITS)
    return total_probe_slots * slot + frames * timing.advertisement_duration
