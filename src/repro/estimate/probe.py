"""Probe frames: framed-ALOHA rounds run only for their statistics.

A probe frame advertises a frame size ``L`` and a persistence probability
``p``; each tag responds with probability ``p`` in one uniformly chosen slot.
The reader does not decode anything -- it only needs to classify each slot
as empty / singleton / collision, which takes a short detection period
rather than a full ID slot.  Slot occupancies are i.i.d.-ish binomial
thinnings, so the empty/collision counts carry the population size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProbeFrame:
    """Observed statistics of one probe frame."""

    frame_size: int
    persistence: float
    empty: int
    singleton: int
    collision: int

    def __post_init__(self) -> None:
        if self.empty + self.singleton + self.collision != self.frame_size:
            raise ValueError("slot counts must partition the frame")

    @property
    def occupied(self) -> int:
        return self.singleton + self.collision


def run_probe_frame(n_tags: int, frame_size: int, persistence: float,
                    rng: np.random.Generator) -> ProbeFrame:
    """Simulate one probe frame over ``n_tags`` responding tags.

    Statistically identical to each tag hashing itself into a slot: the
    number of responders is binomial, their slots uniform.
    """
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    if not 0.0 < persistence <= 1.0:
        raise ValueError("persistence must be in (0, 1]")
    responders = int(rng.binomial(n_tags, persistence)) if n_tags else 0
    choices = rng.integers(0, frame_size, size=responders)
    occupancy = np.bincount(choices, minlength=frame_size)
    return ProbeFrame(
        frame_size=frame_size,
        persistence=persistence,
        empty=int((occupancy == 0).sum()),
        singleton=int((occupancy == 1).sum()),
        collision=int((occupancy >= 2).sum()),
    )
