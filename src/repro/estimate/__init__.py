"""Cardinality estimation: how many tags are out there?

The paper's SCAT needs the tag count ``N`` from a pre-step and cites
Kodialam & Nandagopal (MobiCom 2006, "Fast and Reliable Estimation Schemes
in RFID Systems") -- reference [24] -- as the way to get it "to an arbitrary
accuracy".  This package implements that substrate:

* :mod:`repro.estimate.probe` -- probe frames: framed-ALOHA rounds run purely
  for their slot-occupancy statistics.
* :mod:`repro.estimate.kodialam` -- the Zero Estimator (ZE) and Collision
  Estimator (CE) closed forms, and the multi-frame unified procedure that
  averages probe frames down to a target accuracy.

FCAT exists precisely to make this pre-step unnecessary (section V-A), but
having it lets the repo run SCAT without an oracle and quantifies what the
pre-step costs -- see the ``ablation-prestep`` experiment.
"""

from repro.estimate.kodialam import (
    CardinalityEstimate,
    collision_estimator,
    estimate_tag_count,
    zero_estimator,
)
from repro.estimate.probe import ProbeFrame, run_probe_frame

__all__ = [
    "CardinalityEstimate",
    "collision_estimator",
    "estimate_tag_count",
    "zero_estimator",
    "ProbeFrame",
    "run_probe_frame",
]
