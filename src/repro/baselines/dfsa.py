"""Dynamic Framed Slotted ALOHA (Cha & Kim, CCNC 2006) -- paper ref [6].

Tags pick one slot uniformly at random in each frame; the reader sizes the
next frame to its estimate of the unread backlog, because framed ALOHA peaks
when the frame size equals the number of contenders (then each slot is
singleton with probability 1/e).  The backlog estimate is Cha-Kim's "fast
estimation": unread ~= 2.39 * (collision slots), 2.39 being the expected
colliders per collision slot at the operating point.

The whole frame is simulated at once with a bincount, so a full read of
20 000 tags costs a handful of numpy calls.  Expected cost: ~e*N slots total,
one third each empty/singleton/collision -- the split of the paper's
Table II.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult

#: Cha-Kim backlog coefficient: E[colliders | collision] at frame size = N.
CHA_KIM_COEFFICIENT = 2.39


def _draw_captures(active: np.ndarray, choices: np.ndarray,
                   occupancy: np.ndarray, channel: ChannelModel,
                   rng: np.random.Generator) -> tuple[list[int], int]:
    """Per collision slot, maybe decode one (random) collider via capture.

    Returns the captured member indices and how many collision slots turned
    into effective singletons.
    """
    order = np.argsort(choices, kind="stable")
    sorted_choices = choices[order]
    captured: list[int] = []
    converted = 0
    slots = np.arange(occupancy.size)
    starts = np.searchsorted(sorted_choices, slots, side="left")
    ends = np.searchsorted(sorted_choices, slots, side="right")
    for slot in np.flatnonzero(occupancy >= 2):
        if channel.captured(rng):
            members = order[starts[slot]:ends[slot]]
            winner = members[int(rng.integers(0, members.size))]
            captured.append(int(active[winner]))
            converted += 1
    return captured, converted


class Dfsa(TagReadingProtocol):
    """DFSA with Cha-Kim backlog estimation.

    ``initial_frame_size=None`` seeds the first frame with the true tag count
    (the convention the paper's Table II implies: DFSA spends almost exactly
    e*N slots, leaving no room for a blind ramp-up).  Pass an integer to model
    a blind start instead; the frame size then doubles while frames come back
    all-collision.
    """

    name = "DFSA"

    def __init__(self, initial_frame_size: int | None = None,
                 max_frames: int = 100_000) -> None:
        if initial_frame_size is not None and initial_frame_size < 1:
            raise ValueError("initial_frame_size must be >= 1")
        self.initial_frame_size = initial_frame_size
        self.max_frames = max_frames

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        ids = population.ids
        active = np.arange(len(population))
        read: set[int] = set()
        if self.initial_frame_size is not None:
            frame_size = self.initial_frame_size
        else:
            frame_size = max(len(population), 1)
        for _ in range(self.max_frames):
            result.frames += 1
            result.advertisements += 1  # frame-size announcement
            frame_size = max(int(frame_size), 1)
            choices = rng.integers(0, frame_size, size=active.size)
            result.tag_transmissions += int(active.size)
            occupancy = np.bincount(choices, minlength=frame_size)
            empties = int((occupancy == 0).sum())
            collisions = int((occupancy >= 2).sum())
            result.empty_slots += empties
            # Identify the tag in each singleton slot, modulo channel errors:
            # a tag is alone exactly when its chosen slot has occupancy one.
            acked: list[int] = []
            single_mask = occupancy[choices] == 1
            singles = list(active[single_mask])
            if channel.capture_prob > 0.0 and collisions:
                # Capture effect (extension): the strongest collider of a
                # slot may decode anyway; the reader sees it as a singleton.
                captured_members, captured_count = _draw_captures(
                    active, choices, occupancy, channel, rng)
                singles.extend(captured_members)
                collisions -= captured_count
            for member in singles:
                if channel.singleton_ok(rng):
                    result.singleton_slots += 1
                    tag = ids[int(member)]
                    if tag not in read:
                        read.add(tag)
                        result.n_read += 1
                    if channel.ack_received(rng):
                        acked.append(int(member))
                else:
                    collisions += 1  # garbled singleton reads as collision
            result.collision_slots += collisions
            if acked:
                active = active[~np.isin(active, np.array(acked))]
            if empties == frame_size:
                break  # a fully silent frame: nobody is transmitting anymore
            if collisions == 0:
                # Collision-free but not silent: the backlog *looks* empty,
                # yet capture-hidden losers or ack-losers may retransmit.
                # A one-slot confirmation frame settles it (silent -> done,
                # otherwise the doubling recovery below kicks back in).
                frame_size = 1
            elif empties == 0 and len(singles) == 0:
                frame_size *= 2  # blind start: all-collision frame, double up
            else:
                frame_size = max(
                    int(round(CHA_KIM_COEFFICIENT * collisions)), 1)
        else:
            raise RuntimeError("DFSA exceeded max_frames without finishing")
        return result
