"""The EPCglobal Class-1 Gen-2 "Q algorithm" (ISO 18000-6C).

The de-facto industrial standard the paper's section II-A alludes to when it
says "contention-based time-slotted protocols have become the industrial
standards".  The reader maintains a float ``Q_fp``; each inventory round
every unread tag draws a Q-bit slot counter and the reader issues QueryRep
commands slot by slot:

* empty slot      -> ``Q_fp = max(0, Q_fp - C)``
* singleton slot  -> ``Q_fp`` unchanged (the tag is read and acknowledged)
* collision slot  -> ``Q_fp = min(15, Q_fp + C)``

Whenever ``round(Q_fp)`` changes, the reader issues QueryAdjust and the
remaining tags redraw their counters from the new ``2^Q`` range.  ``C`` is
the standard's adjustment step (0.1 <= C <= 0.5).

The slot-counter draw-and-count-down machinery is simulated faithfully but
slot-by-slot outcomes are what matter, so tags are represented by their
remaining counters in a numpy array.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult

#: The standard's bounds on the Q parameter.
MIN_Q, MAX_Q = 0, 15


class Gen2Q(TagReadingProtocol):
    """EPC C1G2 slotted random anti-collision with the Q algorithm."""

    name = "Gen2-Q"

    def __init__(self, initial_q: int = 4, c: float = 0.3,
                 max_slots: int = 2_000_000) -> None:
        if not MIN_Q <= initial_q <= MAX_Q:
            raise ValueError(f"initial_q must be in [{MIN_Q}, {MAX_Q}]")
        if not 0.1 <= c <= 0.5:
            raise ValueError("C must be in [0.1, 0.5] (the standard's range)")
        self.initial_q = initial_q
        self.c = c
        self.max_slots = max_slots

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        ids = population.ids
        read: set[int] = set()
        active = np.arange(len(population))
        q_fp = float(self.initial_q)
        q = self.initial_q
        counters = self._draw(active.size, q, rng)
        result.advertisements += 1  # the initial Query
        slots = 0
        while slots < self.max_slots:
            if active.size == 0:
                break
            slots += 1
            contenders = counters == 0
            k = int(contenders.sum())
            result.tag_transmissions += k
            if k == 0:
                result.empty_slots += 1
                q_fp = max(float(MIN_Q), q_fp - self.c)
            elif k == 1 and channel.singleton_ok(rng):
                result.singleton_slots += 1
                member = int(active[np.flatnonzero(contenders)[0]])
                tag = ids[member]
                if tag not in read:
                    read.add(tag)
                    result.n_read += 1
                if channel.ack_received(rng):
                    keep = ~contenders
                    active = active[keep]
                    counters = counters[keep]
                else:
                    counters[contenders] = self._draw(k, q, rng)
            else:
                result.collision_slots += 1
                q_fp = min(float(MAX_Q), q_fp + self.c)
                # Colliders back off by redrawing once Q adjusts; until then
                # they redraw immediately in the current range (slot redraw
                # models the standard's collided-tag arbitration).
                counters[contenders] = self._draw(k, q, rng)
            new_q = int(round(q_fp))
            if new_q != q:
                # QueryAdjust: every remaining tag redraws from 2^newQ.
                q = new_q
                counters = self._draw(active.size, q, rng)
                result.advertisements += 1
            else:
                counters = np.where(counters > 0, counters - 1, counters)
        else:
            raise RuntimeError("Gen2-Q exceeded its slot budget")
        return result

    @staticmethod
    def _draw(count: int, q: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, 1 << q, size=count, dtype=np.int64)
