"""The classic (non-adaptive) binary-tree protocol (Capetanakis) -- section VII.

Identical single-round mechanics to ABS (random-bit splitting); kept as a
separate protocol because it lacks ABS's cross-round staleness shortcut and
because the related-work benchmarks reference it by name.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.baselines.splitting import random_bit_splitter, run_splitting_tree
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class BinaryTree(TagReadingProtocol):
    """Random binary splitting, DFS over the collision tree."""

    name = "BinaryTree"

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        run_splitting_tree(result, population, random_bit_splitter(rng), rng,
                           channel,
                           initial_groups=[(np.arange(len(population)), 0)])
        return result
