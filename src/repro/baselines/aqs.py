"""Adaptive Query Splitting (Myung & Lee, MobiHoc 2006) -- paper ref [12].

A query-tree protocol whose query queue persists across reading rounds: the
first round starts from the prefixes '0' and '1' and each subsequent round
re-seeds the queue with the leaf queries (singleton and empty prefixes) of
the previous round, skipping the collision prefix work.  Within a single
round -- which is what the paper's Table I/II measures -- AQS behaves as a
query tree seeded with the two one-bit prefixes.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.baselines.query_tree import QueryTree, population_bit_matrix
from repro.baselines.splitting import id_bit_splitter, run_splitting_tree
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class AdaptiveQuerySplitting(QueryTree):
    """AQS: a query tree whose queue starts at prefixes '0' and '1'."""

    name = "AQS"
    _start_depth_one = True

    def reread(self, population: TagPopulation, rng: np.random.Generator,
               previous_leaf_depths: dict[int, int],
               channel: ChannelModel = PERFECT_CHANNEL,
               timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        """Re-read an (almost) unchanged population from remembered leaves.

        ``previous_leaf_depths`` maps each tag ID to the prefix length that
        isolated it last round.  Unchanged tags answer their remembered leaf
        query alone; tags that joined since (absent from the map) fall back to
        splitting from the root of their leaf's subtree.  Returns a fresh
        :class:`ReadingResult`; empty leaf queries from departed tags are
        charged as empty slots, as in the original protocol.
        """
        result = ReadingResult(protocol=f"{self.name}-reread",
                               n_tags=len(population), n_read=0, timing=timing)
        bits = population_bit_matrix(population)
        splitter = id_bit_splitter(bits)
        known = [i for i, tag in enumerate(population.ids)
                 if tag in previous_leaf_depths]
        unknown = np.array([i for i, tag in enumerate(population.ids)
                            if tag not in previous_leaf_depths], dtype=int)
        groups: list[tuple[np.ndarray, int]] = [
            (np.array([i], dtype=int), previous_leaf_depths[population.ids[i]])
            for i in known
        ]
        # Departed tags leave their old leaf queries empty.
        departed = len(previous_leaf_depths) - len(known)
        result.empty_slots += max(departed, 0)
        if unknown.size:
            groups.append((unknown, 0))
        run_splitting_tree(result, population, splitter, rng, channel,
                           initial_groups=groups)
        return result
