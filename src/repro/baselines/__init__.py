"""Baseline anti-collision protocols the paper compares against (section VI).

ALOHA family:

* :mod:`repro.baselines.aloha` -- p-persistent slotted ALOHA (the 1/e bound).
* :mod:`repro.baselines.fsa` -- basic framed slotted ALOHA (fixed frame).
* :mod:`repro.baselines.dfsa` -- Dynamic Framed Slotted ALOHA [6].
* :mod:`repro.baselines.edfsa` -- Enhanced DFSA [5] (capped frames + grouping).

Tree family:

* :mod:`repro.baselines.splitting` -- shared recursive-splitting engine.
* :mod:`repro.baselines.abs_protocol` -- Adaptive Binary Splitting [12].
* :mod:`repro.baselines.aqs` -- Adaptive Query Splitting [12].
* :mod:`repro.baselines.binary_tree` / :mod:`repro.baselines.query_tree` --
  the classic non-adaptive variants (section VII).

Extension:

* :mod:`repro.baselines.crdsa` -- Contention Resolution Diversity Slotted
  ALOHA [22], the satellite-access protocol with successive interference
  cancellation the paper cites in section III-C.
"""

from repro.baselines.abs_protocol import AdaptiveBinarySplitting
from repro.baselines.aloha import SlottedAloha
from repro.baselines.aqs import AdaptiveQuerySplitting
from repro.baselines.binary_tree import BinaryTree
from repro.baselines.crdsa import Crdsa
from repro.baselines.dfsa import Dfsa
from repro.baselines.edfsa import Edfsa
from repro.baselines.fsa import FramedSlottedAloha
from repro.baselines.gen2_q import Gen2Q
from repro.baselines.query_tree import QueryTree

__all__ = [
    "AdaptiveBinarySplitting",
    "SlottedAloha",
    "AdaptiveQuerySplitting",
    "BinaryTree",
    "Crdsa",
    "Dfsa",
    "Edfsa",
    "FramedSlottedAloha",
    "Gen2Q",
    "QueryTree",
]


def standard_baselines() -> list:
    """The four baselines of the paper's Table I, paper parameters."""
    return [Dfsa(), Edfsa(), AdaptiveBinarySplitting(), AdaptiveQuerySplitting()]
