"""Enhanced Dynamic Framed Slotted ALOHA (Lee, Joo & Lee, 2005) -- ref [5].

DFSA wants frame size ~ backlog, but real readers cannot advertise an
arbitrarily large frame.  EDFSA caps the frame at 256 slots and, when the
backlog exceeds what one 256-slot frame can serve efficiently, splits the
tags into ``M`` modulo groups and polls one group per frame.  Below the cap
it shrinks the frame through a threshold table.  Constants follow the EDFSA
paper: a 256-slot frame is best served by ~354 unread tags (load ~1.38 where
the *system efficiency* with the estimation overhead peaks), and frames
shrink at the backlog thresholds below.

The per-frame mechanics (bincount, Cha-Kim estimation) are shared with our
DFSA; the grouping is what is new here.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.baselines.dfsa import CHA_KIM_COEFFICIENT
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult

#: Maximum advertisable frame size (EDFSA section 3).
MAX_FRAME_SIZE = 256
#: Backlog beyond which tags are split into modulo groups.
GROUPING_THRESHOLD = 354
#: Tags a 256-slot frame is sized for once grouping kicks in.  Framed ALOHA's
#: slot efficiency peaks at frame size = contenders (load 1), which is also
#: the operating point the ICDCS paper's Table II shows for EDFSA.
GROUP_TARGET = MAX_FRAME_SIZE
#: (backlog upper bound, frame size) pairs from the EDFSA paper's Table 3.
FRAME_SIZE_TABLE: tuple[tuple[int, int], ...] = (
    (11, 8),
    (19, 16),
    (40, 32),
    (81, 64),
    (176, 128),
    (GROUPING_THRESHOLD, 256),
)


def frame_plan(backlog: float) -> tuple[int, int]:
    """Return ``(frame_size, n_groups)`` for an estimated backlog."""
    if backlog <= 0:
        return FRAME_SIZE_TABLE[0][1], 1
    if backlog > GROUPING_THRESHOLD:
        groups = int(np.ceil(backlog / GROUP_TARGET))
        return MAX_FRAME_SIZE, max(groups, 2)
    for upper, size in FRAME_SIZE_TABLE:
        if backlog <= upper:
            return size, 1
    return MAX_FRAME_SIZE, 1  # pragma: no cover - table covers the range


class Edfsa(TagReadingProtocol):
    """EDFSA: capped frames plus modulo grouping of the backlog."""

    name = "EDFSA"

    def __init__(self, initial_estimate: float | None = None,
                 max_frames: int = 200_000) -> None:
        if initial_estimate is not None and initial_estimate < 1:
            raise ValueError("initial_estimate must be >= 1")
        self.initial_estimate = initial_estimate
        self.max_frames = max_frames

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        ids = population.ids
        active = np.arange(len(population))
        read: set[int] = set()
        backlog = (self.initial_estimate if self.initial_estimate is not None
                   else float(max(len(population), 1)))
        group_index = 0
        stale_frames = 0
        for _ in range(self.max_frames):
            if active.size == 0 and stale_frames > 0:
                break
            frame_size, n_groups = frame_plan(backlog)
            result.frames += 1
            result.advertisements += 1  # frame size, group count, group index
            if n_groups > 1:
                # Tags respond when hash(ID) mod M hits the polled group; a
                # uniform draw per tag per frame is distributionally the same.
                group_draws = rng.integers(0, n_groups, size=active.size)
                participants = active[group_draws == group_index]
                group_index = (group_index + 1) % n_groups
            else:
                participants = active
            choices = rng.integers(0, frame_size, size=participants.size)
            result.tag_transmissions += int(participants.size)
            occupancy = np.bincount(choices, minlength=frame_size)
            empties = int((occupancy == 0).sum())
            collisions = int((occupancy >= 2).sum())
            result.empty_slots += empties
            acked: list[int] = []
            singles = participants[occupancy[choices] == 1]
            for member in singles:
                if channel.singleton_ok(rng):
                    result.singleton_slots += 1
                    tag = ids[int(member)]
                    if tag not in read:
                        read.add(tag)
                        result.n_read += 1
                    if channel.ack_received(rng):
                        acked.append(int(member))
                else:
                    collisions += 1
            result.collision_slots += collisions
            if acked:
                active = active[~np.isin(active, np.array(acked))]
            # Blend the carried backlog with the fresh measurement: the polled
            # group's collision count extrapolates to the whole backlog, but a
            # lucky group must not collapse the estimate while other groups
            # still hold tags.
            measured = CHA_KIM_COEFFICIENT * collisions * n_groups
            carried = backlog - len(acked)
            backlog = max(measured, carried if n_groups > 1 else 0.0, 0.0)
            if collisions == 0:
                if n_groups == 1:
                    break  # the single polled group drained: all read
                stale_frames += 1
                if stale_frames >= n_groups:
                    break  # every group came back collision-free
            else:
                stale_frames = 0
        else:
            raise RuntimeError("EDFSA exceeded max_frames without finishing")
        return result
