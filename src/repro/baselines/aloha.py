"""p-persistent slotted ALOHA (section II-A's contention-based strawman).

Every active tag transmits in every slot with probability ``p = 1/N_i``; the
singleton probability peaks at ``1/e ~ 36.8%``, the classic bound the paper
sets out to break.  The reader is given the tag count (the same oracle SCAT
gets); this protocol exists to demonstrate the ``1/(eT)`` ceiling
empirically, which benchmark A-bounds checks against
:func:`repro.analysis.bounds.aloha_throughput_bound`.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.active_set import ActiveSet
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class SlottedAloha(TagReadingProtocol):
    """Oracle-assisted p-persistent slotted ALOHA."""

    name = "SlottedALOHA"

    def __init__(self, max_report_probability: float = 0.5,
                 empty_streak_for_probe: int = 5,
                 max_slots_factor: float = 500.0) -> None:
        if not 0.0 < max_report_probability <= 1.0:
            raise ValueError("max_report_probability must be in (0, 1]")
        self.max_report_probability = max_report_probability
        self.empty_streak_for_probe = empty_streak_for_probe
        self.max_slots_factor = max_slots_factor

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        active = ActiveSet(population.ids)
        read: set[int] = set()
        total = len(population)
        max_slots = int(self.max_slots_factor * max(total, 1) + 1000)
        empty_streak = 0
        slots = 0
        while True:
            if slots >= max_slots:
                raise RuntimeError("slotted ALOHA termination is stuck")
            slots += 1
            probing = empty_streak >= self.empty_streak_for_probe
            if probing:
                p = 1.0
                empty_streak = 0
                transmitters = list(active)
            else:
                remaining = max(total - len(read), 1)
                p = min(1.0 / remaining, self.max_report_probability)
                transmitters = active.sample_binomial(p, rng)
            result.advertisements += 1
            k = len(transmitters)
            result.tag_transmissions += k
            if k == 0:
                result.empty_slots += 1
                if probing:
                    break
                empty_streak += 1
            elif k == 1 and channel.singleton_ok(rng):
                result.singleton_slots += 1
                tag = transmitters[0]
                if tag not in read:
                    read.add(tag)
                    result.n_read += 1
                if channel.ack_received(rng):
                    active.discard(tag)
                empty_streak = 0
            else:
                result.collision_slots += 1
                empty_streak = 0
        return result
