"""The memoryless query-tree protocol (Law-Lee-Siu) -- paper section VII.

The reader queries ID prefixes; every tag whose ID extends the prefix
responds with its full ID.  A collision spawns the two one-bit-longer
queries.  Throughput depends on the ID distribution; for uniformly random
IDs the classic bound is one tag per ~2.88 slots (paper ref [28]).
"""

from __future__ import annotations

import numpy as np

from repro.air.ids import ID_BITS, id_to_bits
from repro.air.timing import ICODE_TIMING, TimingModel
from repro.baselines.splitting import id_bit_splitter, run_splitting_tree
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


def population_bit_matrix(population: TagPopulation) -> np.ndarray:
    """The ``(n_tags, 96)`` MSB-first bit matrix of a population's IDs."""
    if len(population) == 0:
        return np.zeros((0, ID_BITS), dtype=np.uint8)
    return np.stack([id_to_bits(tag) for tag in population.ids])


class QueryTree(TagReadingProtocol):
    """ID-prefix splitting, starting from the root (empty-prefix) query."""

    name = "QueryTree"

    #: Query queue seed: root query only; AQS overrides with prefixes 0 and 1.
    _start_depth_one = False

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        bits = population_bit_matrix(population)
        splitter = id_bit_splitter(bits)
        members = np.arange(len(population))
        if self._start_depth_one and members.size:
            zeros = members[bits[members, 0] == 0]
            ones = members[bits[members, 0] == 1]
            groups = [(zeros, 1), (ones, 1)]
        else:
            groups = [(members, 0)]
        run_splitting_tree(result, population, splitter, rng, channel,
                           initial_groups=groups)
        return result
