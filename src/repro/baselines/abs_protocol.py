"""Adaptive Binary Splitting (Myung & Lee, MobiHoc 2006) -- paper ref [12].

Counter-based binary tree splitting: every tag keeps a counter, tags at
counter zero transmit, a collision makes each collider draw a random bit and
add it to its counter while bystanders increment theirs; readable slots make
everyone decrement.  The counter dynamics are exactly a depth-first walk of a
random binary splitting tree, which is how we simulate it (see
:mod:`repro.baselines.splitting`).

The classic analysis gives ~2.88 N slots per full read (Capetanakis, paper
ref [27]): N singletons, ~1.44 N collisions, ~0.44 N empties -- the split the
paper's Table II reports for ABS.

The *adaptive* part of ABS speeds up re-reading: a tag remembers the slot
ordinal it was identified at in the previous round and starts its counter
there, so an unchanged population re-reads with N singleton slots and no
collisions.  :meth:`AdaptiveBinarySplitting.reread` models that staleness
shortcut; it is exercised by the warehouse example and the ablation tests.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.baselines.splitting import random_bit_splitter, run_splitting_tree
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class AdaptiveBinarySplitting(TagReadingProtocol):
    """ABS: random binary splitting, one full reading round per call."""

    name = "ABS"

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        members = np.arange(len(population))
        run_splitting_tree(result, population, random_bit_splitter(rng), rng,
                           channel, initial_groups=[(members, 0)])
        return result

    def reread(self, population: TagPopulation, rng: np.random.Generator,
               channel: ChannelModel = PERFECT_CHANNEL,
               timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        """A staleness re-read of an unchanged population.

        Tags resume at the counter values of the previous round, i.e. the
        reader walks the remembered tree leaves directly: one singleton slot
        per tag (plus retries for channel errors), no collisions.
        """
        result = ReadingResult(protocol=f"{self.name}-reread",
                               n_tags=len(population), n_read=0, timing=timing)
        read: set[int] = set()
        pending = list(population.ids)
        while pending:
            tag = pending.pop()
            result.tag_transmissions += 1
            if not channel.singleton_ok(rng):
                result.collision_slots += 1  # garbled slot, tag retries
                pending.append(tag)
                continue
            result.singleton_slots += 1
            if tag not in read:
                read.add(tag)
                result.n_read += 1
            if not channel.ack_received(rng):
                pending.append(tag)
        return result
