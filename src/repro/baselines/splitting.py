"""Shared engine for tree-based anti-collision protocols (section VII).

Tree protocols resolve a collision by splitting the colliding set into two
subsets and querying each in turn; the reading process is a depth-first walk
of a binary tree whose leaves are empty or singleton slots.  The two classic
splitting criteria are

* a random bit drawn by each colliding tag (binary-tree protocols / ABS), and
* the next bit of the tag ID (query-tree protocols / AQS).

The engine below performs the walk over numpy index arrays, charging one slot
per visited node exactly as the paper's slot accounting does, and applies the
same channel-error semantics as the ALOHA simulators: a corrupted singleton
reads as a collision (the group is split again), a lost acknowledgement
leaves the tag transmitting (duplicates are discarded by the reader).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.sim.channel import ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult

#: A splitter maps (member indices, depth) -> (left subset, right subset).
Splitter = Callable[[np.ndarray, int], tuple[np.ndarray, np.ndarray]]


def random_bit_splitter(rng: np.random.Generator) -> Splitter:
    """Each colliding tag draws a fresh random bit (binary-tree protocols)."""

    def split(members: np.ndarray, depth: int) -> tuple[np.ndarray, np.ndarray]:
        bits = rng.integers(0, 2, size=members.size)
        return members[bits == 0], members[bits == 1]

    return split


def id_bit_splitter(id_bits: np.ndarray) -> Splitter:
    """Split on the next ID bit (query-tree protocols).

    ``id_bits`` is the precomputed ``(n_tags, 96)`` bit matrix of the
    population; querying prefix ``p1..pd`` partitions a colliding set by bit
    ``d``.  IDs are unique, so the recursion always terminates.
    """

    def split(members: np.ndarray, depth: int) -> tuple[np.ndarray, np.ndarray]:
        if depth >= id_bits.shape[1]:
            if members.size > 1:
                raise RuntimeError("query-tree recursion exceeded the ID "
                                   "length; tag IDs are not distinct")
            # A lone tag re-queried past its last bit (possible only under
            # repeated CRC corruption): the query cannot be narrowed further.
            return members, members[:0]
        bits = id_bits[members, depth]
        return members[bits == 0], members[bits == 1]

    return split


def run_splitting_tree(result: ReadingResult, population: TagPopulation,
                       splitter: Splitter, rng: np.random.Generator,
                       channel: ChannelModel,
                       initial_groups: list[tuple[np.ndarray, int]]) -> None:
    """Depth-first walk of the splitting tree, accumulating into ``result``.

    ``initial_groups`` seeds the walk with ``(members, depth)`` pairs:
    ``[(all tags, 0)]`` for binary-tree protocols (the first query addresses
    everyone), or the two bit-0 halves at depth 1 for query-tree protocols
    whose queue starts at prefixes '0' and '1'.  Depth travels with each
    group so the ID-bit splitter knows which bit a query's prefix reached.
    """
    ids = population.ids
    read: set[int] = set()
    # Depth-first: later-pushed groups are visited first, so push right before
    # left to query the '0' branch first, matching the usual presentation.
    stack: list[tuple[np.ndarray, int]] = list(reversed(initial_groups))
    while stack:
        members, depth = stack.pop()
        result.tag_transmissions += int(members.size)
        if members.size == 0:
            result.empty_slots += 1
            continue
        if members.size == 1 and channel.singleton_ok(rng):
            result.singleton_slots += 1
            tag = ids[int(members[0])]
            if tag not in read:
                read.add(tag)
                result.n_read += 1
            if not channel.ack_received(rng):
                # The tag missed its ack and will answer the next enclosing
                # query again; model this as one extra leaf visit for it.
                stack.append((members, depth))
            continue
        # A real collision, or a singleton whose CRC failed: split and recurse.
        result.collision_slots += 1
        left, right = splitter(members, depth)
        stack.append((right, depth + 1))
        stack.append((left, depth + 1))
