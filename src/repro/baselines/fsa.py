"""Basic Framed Slotted ALOHA -- fixed frame size every round (section VII).

The simplest industrial scheme (ISO 18000-6 type A lineage): the reader
repeats frames of a fixed size; every unread tag picks one slot per frame.
Kept as a context baseline -- it shows why DFSA's dynamic sizing matters when
the population is far from the configured frame size.
"""

from __future__ import annotations

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class FramedSlottedAloha(TagReadingProtocol):
    """BFSA with a fixed frame size (default 256 slots)."""

    def __init__(self, frame_size: int = 256, max_frames: int = 500_000) -> None:
        if frame_size < 1:
            raise ValueError("frame_size must be >= 1")
        self.frame_size = frame_size
        self.max_frames = max_frames
        self.name = f"BFSA-{frame_size}"

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        ids = population.ids
        active = np.arange(len(population))
        read: set[int] = set()
        for _ in range(self.max_frames):
            result.frames += 1
            result.advertisements += 1
            choices = rng.integers(0, self.frame_size, size=active.size)
            result.tag_transmissions += int(active.size)
            occupancy = np.bincount(choices, minlength=self.frame_size)
            result.empty_slots += int((occupancy == 0).sum())
            collisions = int((occupancy >= 2).sum())
            acked: list[int] = []
            singles = active[occupancy[choices] == 1]
            for member in singles:
                if channel.singleton_ok(rng):
                    result.singleton_slots += 1
                    tag = ids[int(member)]
                    if tag not in read:
                        read.add(tag)
                        result.n_read += 1
                    if channel.ack_received(rng):
                        acked.append(int(member))
                else:
                    collisions += 1
            result.collision_slots += collisions
            if acked:
                active = active[~np.isin(active, np.array(acked))]
            if collisions == 0:
                break
        else:
            raise RuntimeError("BFSA exceeded max_frames without finishing")
        return result
