"""CRDSA -- Contention Resolution Diversity Slotted ALOHA (Casini et al.,
IEEE Trans. Wireless Comm. 2007), the satellite random-access protocol the
paper cites in section III-C.

Each terminal (tag, here) transmits *two* replicas of its packet in two
distinct random slots of a frame; each replica carries a pointer to its twin.
The receiver decodes every singleton slot, then *cancels* the decoded
packets' twin replicas from their slots -- possibly turning collisions into
new singletons -- and iterates.  This successive interference cancellation
is a close cousin of FCAT's ANC resolution (both mine collision slots with
known-signal subtraction), which is why it earns a place in the extension
benchmarks: it shows how far replica-based cancellation gets without FCAT's
record-keeping across frames.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


class Crdsa(TagReadingProtocol):
    """CRDSA with two replicas per frame and iterative cancellation.

    ``target_load`` sets the operating point: frame size is backlog divided
    by it.  The original paper operates near 0.65 packets/slot where the
    two-replica scheme peaks at ~0.55 decoded packets per slot.
    """

    name = "CRDSA"

    def __init__(self, target_load: float = 0.65,
                 initial_estimate: float | None = None,
                 max_frames: int = 100_000) -> None:
        if not 0.0 < target_load <= 1.0:
            raise ValueError("target_load must be in (0, 1]")
        self.target_load = target_load
        self.initial_estimate = initial_estimate
        self.max_frames = max_frames

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        ids = population.ids
        active = list(range(len(population)))
        read: set[int] = set()
        backlog = (self.initial_estimate if self.initial_estimate is not None
                   else float(max(len(population), 1)))
        for _ in range(self.max_frames):
            result.frames += 1
            result.advertisements += 1
            frame_size = max(int(round(max(backlog, 1.0) / self.target_load)), 4)
            decoded = self._run_frame(result, ids, active, frame_size, rng,
                                      channel, read)
            if decoded is None:  # an all-empty frame: nothing transmits
                break
            acked = {member for member in decoded
                     if channel.ack_received(rng)}
            if acked:
                active = [member for member in active if member not in acked]
            if decoded:
                # Only acked tags actually leave; tracking by acks keeps the
                # backlog honest when acknowledgements get lost.
                backlog = max(backlog - len(acked), 1.0)
            else:
                # Occupied frame, zero decodes: the frame was undersized for
                # the surviving population (congestion collapse).  Double up,
                # mirroring DFSA's all-collision recovery.
                backlog = max(backlog * 2.0, 2.0)
        else:
            raise RuntimeError("CRDSA exceeded max_frames without finishing")
        return result

    def _run_frame(self, result: ReadingResult, ids: tuple[int, ...],
                   active: list[int], frame_size: int,
                   rng: np.random.Generator, channel: ChannelModel,
                   read: set[int]) -> list[int] | None:
        """Simulate one frame; returns decoded members, or None if silent."""
        n = len(active)
        if n == 0:
            result.empty_slots += frame_size
            return None
        result.tag_transmissions += 2 * n
        members = np.asarray(active)
        first = rng.integers(0, frame_size, size=n)
        second = (first + rng.integers(1, frame_size, size=n)) % frame_size
        slot_tags: dict[int, set[int]] = defaultdict(set)
        replica_slots: dict[int, tuple[int, int]] = {}
        for member, a, b in zip(members, first, second):
            slot_tags[int(a)].add(int(member))
            slot_tags[int(b)].add(int(member))
            replica_slots[int(member)] = (int(a), int(b))
        # Initial slot classification for the accounting.
        occupied = 0
        for tags in slot_tags.values():
            occupied += 1
            if len(tags) == 1:
                result.singleton_slots += 1
            else:
                result.collision_slots += 1
        result.empty_slots += frame_size - occupied
        # Iterative decoding: singleton slots decode; cancelling a decoded
        # packet's twin replica may expose new singletons.
        decoded: list[int] = []
        decoded_set: set[int] = set()
        pending = [slot for slot, tags in slot_tags.items() if len(tags) == 1]
        while pending:
            slot = pending.pop()
            tags = slot_tags.get(slot)
            if not tags or len(tags) != 1:
                continue
            member = next(iter(tags))
            if member in decoded_set:
                continue
            if not channel.singleton_ok(rng):
                continue  # this replica is garbled; its twin may still decode
            decoded_set.add(member)
            decoded.append(member)
            tag = ids[member]
            if tag not in read:
                read.add(tag)
                result.n_read += 1
            for replica_slot in replica_slots[member]:
                # Cancel the replica; residue may block the cancellation.
                if not channel.record_usable(rng):
                    continue
                remaining = slot_tags.get(replica_slot)
                if remaining and member in remaining:
                    remaining.discard(member)
                    if len(remaining) == 1:
                        pending.append(replica_slot)
        return decoded
