"""Collision records and the iterative resolution cascade (section IV-B).

The reader stores, for every collision slot, the mixed signal plus the slot
index.  Whenever it learns a new tag ID -- from a singleton slot or from a
previous resolution -- it can decide, via the deterministic report hash
``H(ID|j)``, which stored records that tag contributed to.  A record whose
constituents are all known but one (and whose constituent count is within the
ANC capability λ) is resolved: the known signals are subtracted, the residual
CRC-checked, and one more ID is learned, possibly unlocking further records.
This is the ``while S != empty`` loop of the paper's pseudo-code.

At protocol-simulation level the mixed signal is represented by the record's
hidden participant set.  The store only ever exposes the two operations a real
reader has: "did this (now known) ID transmit in slot j?" (the hash test,
which is exact -- see DESIGN.md) and "does the residual CRC-verify?" (true iff
exactly one unknown constituent remains and the record is within λ and not too
noisy).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass
class CollisionRecord:
    """One recorded collision slot (mixed signal + slot index)."""

    slot_index: int
    participants: frozenset[int]
    #: Whether ANC can ever work on this record (noise draw, section IV-E).
    usable: bool = True
    known: set[int] = field(default_factory=set)
    resolved: bool = False
    retired: bool = False

    @property
    def k(self) -> int:
        """Number of tags that transmitted simultaneously (the ``k`` in
        "k-collision slot")."""
        return len(self.participants)

    def unknown_participants(self) -> frozenset[int]:
        return self.participants - self.known


class RecordStore:
    """All collision records of a session plus the resolution cascade.

    ``zigzag`` enables the ZigZag decoding of Gollakota & Katabi (SIGCOMM
    2008, the paper's ref [23]): two recorded collisions of the *same* pair
    of tags are jointly decodable even when neither constituent is known
    (the differing time/phase offsets of the two mixes disambiguate them).
    At this abstraction level that means a repeated 2-collision pair
    resolves both tags on the spot.
    """

    def __init__(self, lam: int, zigzag: bool = False) -> None:
        if lam < 2:
            raise ValueError("lam must be >= 2 (ANC resolves k-collisions, k>=2)")
        self.lam = lam
        self.zigzag = zigzag
        self._records: list[CollisionRecord] = []
        self._by_tag: dict[int, list[CollisionRecord]] = {}
        self._learned: set[int] = set()
        self._pair_index: dict[frozenset[int], CollisionRecord] = {}
        self.zigzag_decodes = 0

    @property
    def records(self) -> list[CollisionRecord]:
        return self._records

    @property
    def learned_ids(self) -> frozenset[int]:
        return frozenset(self._learned)

    @property
    def learned_count(self) -> int:
        return len(self._learned)

    def is_learned(self, tag_id: int) -> bool:
        return tag_id in self._learned

    def add_record(self, slot_index: int, participants: Iterable[int],
                   usable: bool = True
                   ) -> tuple[CollisionRecord, list[tuple[int, int]]]:
        """Store the mixed signal of a fresh collision slot.

        If tags that missed an earlier acknowledgement collide again, the new
        record may be resolvable on the spot; any IDs recovered that way (and
        transitively through the cascade) are returned alongside the record.
        """
        record = CollisionRecord(slot_index=slot_index,
                                 participants=frozenset(participants),
                                 usable=usable)
        if record.k < 2:
            raise ValueError("a collision record needs at least 2 participants")
        if not usable or record.k > self.lam:
            # The ANC step can never succeed on this record (noise, or more
            # constituents than the decoder handles): the residual CRC will
            # reject every attempt.  A real reader would keep the signal and
            # burn cycles on it; the simulation retires it at creation, which
            # is observationally identical and keeps the per-tag index small
            # (a p=1 termination probe can record thousands of participants).
            record.retired = True
            self._records.append(record)
            return record, []
        # Constituents already known (e.g. a tag that missed its ack and
        # collided again) are credited immediately.
        record.known = set(record.participants & self._learned)
        self._records.append(record)
        # Indexing a record under each unknown tag mutates shared dicts:
        # per-record bookkeeping, not a numeric loop.
        # repro: allow-vectorization-antipattern -- bookkeeping, not numeric
        for tag in record.unknown_participants():
            self._by_tag.setdefault(tag, []).append(record)
        resolved: list[tuple[int, int]] = []
        recovered = self._maybe_resolve(record)  # may already be one-unknown
        if recovered is not None:
            resolved.append((recovered, record.slot_index))
            resolved.extend(self.learn(recovered))
        elif self.zigzag and record.k == 2 and not record.retired:
            resolved.extend(self._try_zigzag(record))
        return record, resolved

    def _try_zigzag(self, record: CollisionRecord) -> list[tuple[int, int]]:
        """Joint decoding of a repeated 2-collision pair (ref [23])."""
        key = record.participants
        prior = self._pair_index.get(key)
        if prior is None or prior.retired:
            self._pair_index[key] = record
            return []
        prior.resolved = prior.retired = True
        record.resolved = record.retired = True
        self.zigzag_decodes += 1
        resolved: list[tuple[int, int]] = []
        slots = (prior.slot_index, record.slot_index)
        for tag, slot in zip(sorted(key), slots):
            if not self.is_learned(tag):
                resolved.append((tag, slot))
                resolved.extend(self.learn(tag))
        return resolved

    def learn(self, tag_id: int) -> list[tuple[int, int]]:
        """Feed a newly learned ID into the cascade.

        Returns ``(resolved_tag_id, record_slot_index)`` pairs in resolution
        order -- every ID recovered from a collision record as a consequence
        of learning ``tag_id``, directly or transitively.
        """
        if tag_id in self._learned:
            return []
        self._learned.add(tag_id)
        resolved: list[tuple[int, int]] = []
        queue = [tag_id]
        # Zigzag decoding is a worklist fixpoint: each newly learned tag can
        # unlock more records, so iterations are inherently ordered.
        # repro: allow-vectorization-antipattern -- worklist fixpoint
        while queue:
            current = queue.pop()
            for record in self._by_tag.pop(current, []):
                if record.retired:
                    continue
                record.known.add(current)
                recovered = self._maybe_resolve(record)
                if recovered is not None:
                    self._learned.add(recovered)
                    resolved.append((recovered, record.slot_index))
                    queue.append(recovered)
        return resolved

    def _maybe_resolve(self, record: CollisionRecord) -> int | None:
        """Apply the ANC resolvability rule to one record; retire if spent.

        Only reachable for usable records with ``k <= lam`` -- everything
        else was retired at creation.
        """
        unknown = record.unknown_participants()
        if not unknown:
            record.retired = True  # nothing left to learn from it
            return None
        if len(unknown) > 1:
            return None
        recovered = next(iter(unknown))
        record.known.add(recovered)
        record.resolved = True
        record.retired = True
        if recovered in self._learned:
            # The residual decodes to an ID learned moments ago through
            # another record; a real reader discards the duplicate.
            return None
        return recovered

    def outstanding_records(self) -> int:
        """Number of stored records that could still resolve."""
        return sum(1 for r in self._records if not r.retired)

    def resolved_count(self) -> int:
        return sum(1 for r in self._records if r.resolved)
