"""The paper's contribution: collision-aware tag identification.

* :mod:`repro.core.optimal` -- the optimal load ``omega* = (lambda!)^(1/lambda)``
  and report probability (section IV-C).
* :mod:`repro.core.collision` -- collision records and the ANC resolution
  cascade (section IV-B).
* :mod:`repro.core.estimator` -- FCAT's embedded tag-count estimator
  (section V-C).
* :mod:`repro.core.scat` / :mod:`repro.core.fcat` -- the SCAT and FCAT
  protocols (sections IV and V).
"""

from repro.core.collision import CollisionRecord, RecordStore
from repro.core.estimator import (
    EmbeddedEstimator,
    invert_collision_count,
    invert_collision_count_exact,
)
from repro.core.fcat import Fcat, FcatConfig
from repro.core.optimal import (
    optimal_omega,
    optimal_omega_exact,
    optimal_report_probability,
    slot_type_probabilities,
    useful_slot_probability,
    useful_slot_probability_binomial,
)
from repro.core.scat import Scat, ScatConfig

__all__ = [
    "CollisionRecord",
    "RecordStore",
    "EmbeddedEstimator",
    "invert_collision_count",
    "invert_collision_count_exact",
    "Fcat",
    "FcatConfig",
    "optimal_omega",
    "optimal_omega_exact",
    "optimal_report_probability",
    "slot_type_probabilities",
    "useful_slot_probability",
    "useful_slot_probability_binomial",
    "Scat",
    "ScatConfig",
]
