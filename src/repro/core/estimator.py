"""FCAT's embedded tag-count estimator (paper section V-C).

After each frame the reader counts the collision slots ``n_c`` and inverts the
expectation

    E(n_c) = f * (1 - (1-p)^(N-1) * (1 - p + N p))          (Eq. 10)

to estimate the number ``N_i`` of tags that participated in the frame.  The
paper's closed form (Eq. 12) substitutes the nominal load ``omega`` for
``N_i * p_i``:

    N_hat = [ln(1 - n_c/f) - ln(1 - p + omega)] / ln(1 - p) + 1

Two quantities are maintained:

* a **responsive** estimate of the tags still participating, used to set the
  next frame's report probability.  By default it is an EWMA over the
  per-frame inversions; per-frame estimates have relative standard deviation
  ``sqrt(V(N_hat/N)) ~ 18%`` (appendix, Eq. 25), plenty for choosing ``p``
  because the useful-slot probability is flat around the optimum, and --
  crucially -- the estimate tracks the population as tags leave.  (A
  cumulative average, mode ``"average"``, matches the paper's variance
  discussion verbatim but reacts too slowly in the endgame: a +1% error on
  N = 10 000 total is a +100 error on the last handful of tags, which starves
  the tail with near-zero report probabilities.)
* the paper's cumulative average of total-population samples
  ``N* = N_hat + already-identified``, whose variance decays as frames
  accumulate (section V-C); exposed as :attr:`EmbeddedEstimator.total_estimate`.

Boundary frames the formula cannot invert are handled explicitly: an
all-collision frame means the current guess is far too low (double and
re-probe -- this is how the protocol bootstraps from a blind initial guess).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from scipy import optimize

_ESTIMATOR_METHODS = ("paper", "exact")
_ESTIMATOR_MODES = ("ewma", "last", "average")
_ESTIMATOR_SOURCES = ("collision", "empty")


# repro: pure
def invert_empty_count(n_0: int, frame_size: int, p: float) -> float:
    """Estimate N from the empty-slot count: ``E(n0) = f (1-p)^N`` (Eq. 7).

    Valid for ``0 < n_0 <= frame_size``; a frame with no empty slots carries
    only the message "N is large".
    """
    if not 0 < n_0 <= frame_size:
        raise ValueError("n_0 must be in (0, frame_size]")
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    return math.log(n_0 / frame_size) / math.log(1.0 - p)


def _invert_paper(n_c: float, frame_size: int, p: float,
                  omega: float) -> float:
    numerator = math.log(1.0 - n_c / frame_size) - math.log(1.0 - p + omega)
    return numerator / math.log(1.0 - p) + 1.0


def _invert_exact(n_c: float, frame_size: int, p: float) -> float:
    if n_c == 0:
        return 0.0
    target = 1.0 - n_c / frame_size

    def g(x: float) -> float:
        return (1.0 + x) * math.exp(-x) - target

    load = optimize.brentq(g, 1e-12, 60.0)
    return load / p


# repro: pure
def invert_collision_count(n_c: int, frame_size: int, p: float,
                           omega: float) -> float:
    """The paper's closed-form estimator N_hat (Eq. 12).

    Valid for ``0 <= n_c < frame_size`` and ``0 < p < 1``.
    """
    if not 0 <= n_c < frame_size:
        raise ValueError("n_c must be in [0, frame_size)")
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    return _invert_paper(float(n_c), frame_size, p, omega)


# repro: pure
def invert_collision_count_exact(n_c: int, frame_size: int, p: float) -> float:
    """Exact inversion of the Poisson-form expectation.

    Solves ``(1 + x) e^{-x} = 1 - n_c/f`` for the load ``x = N p`` (the
    left-hand side is strictly decreasing for ``x > 0``), then returns
    ``x / p``.  Unlike Eq. 12 this does not assume the frame ran at the
    nominal load omega, so it stays unbiased while the estimate converges.
    """
    if not 0 <= n_c < frame_size:
        raise ValueError("n_c must be in [0, frame_size)")
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    return _invert_exact(float(n_c), frame_size, p)


@dataclass
class EmbeddedEstimator:
    """Running estimate of how many tags are still participating.

    One instance lives inside an FCAT session.  Call :meth:`remaining` before
    each frame to size the report probability, and :meth:`update` after each
    frame with the observed collision count and identification progress.
    """

    omega: float
    frame_size: int
    initial_guess: float = 64.0
    #: Inversion formula: "paper" (Eq. 12) or "exact" (numerical).
    method: str = "paper"
    #: How per-frame estimates combine: "ewma", "last" or "average".
    mode: str = "ewma"
    #: Which slot count to invert: "collision" (the paper's choice, lowest
    #: variance) or "empty" (higher variance -- section V-C notes this --
    #: but immune to the capture effect, which silently converts collision
    #: slots into apparent singletons and biases the collision count).
    source: str = "collision"
    #: Weight of the newest frame in "ewma" mode.
    ewma_weight: float = 0.6
    #: Total-population samples N* (one per informative frame, section V-C).
    samples: list[float] = field(default_factory=list)
    _remaining: float = field(init=False)

    def __post_init__(self) -> None:
        if self.initial_guess < 1:
            raise ValueError("initial_guess must be >= 1")
        if self.frame_size < 1:
            raise ValueError("frame_size must be >= 1")
        if self.method not in _ESTIMATOR_METHODS:
            raise ValueError(f"unknown estimator method {self.method!r}")
        if self.mode not in _ESTIMATOR_MODES:
            raise ValueError(f"unknown estimator mode {self.mode!r}")
        if not 0.0 < self.ewma_weight <= 1.0:
            raise ValueError("ewma_weight must be in (0, 1]")
        if self.source not in _ESTIMATOR_SOURCES:
            raise ValueError(f"unknown estimator source {self.source!r}")
        self._remaining = float(self.initial_guess)

    @property
    def total_estimate(self) -> float:
        """The paper's estimate of the total tag count: the average of N*."""
        if not self.samples:
            return self._remaining
        return sum(self.samples) / len(self.samples)

    def remaining(self) -> float:
        """Estimated number of tags still participating (never below 1)."""
        return max(self._remaining, 1.0)

    # repro: effects(mutates-args)
    def update(self, n_c: int, p: float, identified_at_frame_start: int,
               identified_at_frame_end: int,
               n_empty: int | None = None) -> None:
        """Fold one frame's slot counts into the running estimate.

        ``n_empty`` is only needed when ``source == "empty"``.
        """
        if identified_at_frame_end < identified_at_frame_start:
            raise ValueError("identification count cannot decrease")
        newly_identified = identified_at_frame_end - identified_at_frame_start
        if self.source == "empty" and n_empty is None:
            raise ValueError('source == "empty" requires n_empty')
        saturated = (n_c >= self.frame_size if self.source == "collision"
                     else n_empty == 0)
        if saturated and not self.samples:
            # Saturated frame while still blind: the population dwarfs the
            # guess.  Double and re-probe (no invertible signal yet).
            self._remaining = max(self._remaining * 2.0, 2.0)
            return
        if p <= 0.0 or p >= 1.0:
            return  # degenerate advertisement; nothing to invert
        if self.source == "empty":
            # Invert E(n0) = f (1-p)^N; a saturated (no-empties) frame is
            # inverted at the half-count boundary, as below.
            effective_n0 = max(float(n_empty), 0.5)  # type: ignore[arg-type]
            participating = (math.log(effective_n0 / self.frame_size)
                             / math.log(1.0 - p))
        else:
            if saturated:
                # Post-bootstrap saturated frame (common for tiny f, where
                # P(all slots collide) is non-negligible): ln(1 - n_c/f)
                # cannot be evaluated, so invert at the half-count boundary
                # instead of doubling -- doubling on every sixth frame at
                # f = 2 would pump the estimate into a livelock.
                effective_nc = self.frame_size - 0.5
            else:
                effective_nc = float(n_c)
            if self.method == "paper":
                participating = _invert_paper(effective_nc, self.frame_size,
                                              p, self.omega)
            else:
                participating = _invert_exact(effective_nc, self.frame_size,
                                              p)
        participating = max(participating, 0.0)
        self.samples.append(participating + identified_at_frame_start)
        fresh = max(participating - newly_identified, 0.0)
        if self.mode == "last":
            self._remaining = fresh
        elif self.mode == "ewma":
            prior = max(self._remaining - newly_identified, 0.0)
            self._remaining = (self.ewma_weight * fresh
                               + (1.0 - self.ewma_weight) * prior)
        else:  # "average": the paper-literal cumulative estimate
            self._remaining = max(
                self.total_estimate - identified_at_frame_end, 0.0)

    # repro: effects(mutates-args)
    def force_at_least(self, remaining: float) -> None:
        """Raise the estimate after external evidence of survivors.

        Used after a termination probe hits a collision: at least ``remaining``
        tags are provably still active even if the estimate says none are.
        """
        self._remaining = max(self._remaining, remaining)
