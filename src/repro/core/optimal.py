"""Optimal report probability (paper section IV-C).

With ``N_i`` participating tags each transmitting with probability ``p_i``, the
transmitter count is ``Binomial(N_i, p_i)`` and a slot is *useful* when 1..λ
tags transmit (a singleton yields an ID now; a k-collision with ``k <= λ``
yields one later).  In the Poisson limit with ``ω = N_i p_i`` the useful-slot
probability is ``sum_{k=1..λ} ω^k / k! * e^{-ω}``; differentiating gives the
beautifully compact optimality condition

    ω^λ = λ!   ⇒   ω* = (λ!)^{1/λ}

which yields the paper's constants 1.414 (λ=2), 1.817 (λ=3), 2.213 (λ=4).
This module provides the closed form, the Poisson objective itself, and an
exact finite-``N`` optimisation of the binomial objective for validation
(Table IV checks the closed form against exhaustive search).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize, stats


def optimal_omega(lam: int) -> float:
    """The Poisson-limit optimal load ``ω* = (λ!)^{1/λ}``."""
    if lam < 1:
        raise ValueError("lam must be >= 1")
    return math.factorial(lam) ** (1.0 / lam)


def useful_slot_probability(omega: float, lam: int) -> float:
    """P(1 <= X <= λ) for ``X ~ Poisson(ω)`` -- Eq. 4 generalized to any λ."""
    if omega < 0:
        raise ValueError("omega must be non-negative")
    if lam < 1:
        raise ValueError("lam must be >= 1")
    return float(sum(omega ** k / math.factorial(k) for k in range(1, lam + 1))
                 * math.exp(-omega))


def useful_slot_probability_binomial(p: float, n: int, lam: int) -> float:
    """Exact P(1 <= X <= λ) for ``X ~ Binomial(n, p)`` -- Eq. 2."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if n < 0 or lam < 1:
        raise ValueError("n must be >= 0 and lam >= 1")
    upper = min(lam, n)
    return float(sum(stats.binom.pmf(k, n, p) for k in range(1, upper + 1)))


def optimal_report_probability(lam: int, n_remaining: float,
                               cap: float = 1.0) -> float:
    """The per-slot report probability ``p_i = ω*/N_i``, capped.

    The cap matters in the endgame: with two tags left and ``p = 1`` both
    would transmit in *every* slot, producing an endless stream of identical,
    unresolvable 2-collisions.  Any ``cap < 1`` breaks the symmetry.
    """
    if not 0.0 < cap <= 1.0:
        raise ValueError("cap must be in (0, 1]")
    if n_remaining <= 0:
        raise ValueError("n_remaining must be positive")
    return min(optimal_omega(lam) / n_remaining, cap)


def optimal_omega_exact(lam: int, n: int) -> float:
    """Numerically maximize the exact binomial objective; returns ``n * p*``.

    Validates that the Poisson-limit constant is accurate for realistic
    populations (for ``n >= 100`` the two agree to three decimals).
    """
    if n < 1:
        raise ValueError("n must be >= 1")

    def negative_objective(p: float) -> float:
        return -useful_slot_probability_binomial(p, n, lam)

    upper = min(1.0, 5.0 * max(lam, 1) / n) if n > 5 * lam else 1.0
    solution = optimize.minimize_scalar(
        negative_objective, bounds=(1e-9, upper), method="bounded",
        options={"xatol": upper * 1e-6})
    return float(solution.x) * n


def slot_type_probabilities(omega: float) -> tuple[float, float, float]:
    """Poisson-limit (empty, singleton, collision) slot probabilities."""
    if omega < 0:
        raise ValueError("omega must be non-negative")
    empty = math.exp(-omega)
    singleton = omega * math.exp(-omega)
    return empty, singleton, 1.0 - empty - singleton


def expected_slots_per_tag(omega: float, lam: int,
                           resolvable_fraction: float = 1.0) -> float:
    """Expected slots consumed per identified tag at load ``ω``.

    Each useful slot (1..λ transmitters, resolvable) eventually yields exactly
    one ID, so slots-per-tag is the reciprocal of the useful-slot probability;
    ``resolvable_fraction`` discounts collision slots lost to noise.
    """
    if not 0.0 <= resolvable_fraction <= 1.0:
        raise ValueError("resolvable_fraction must be in [0, 1]")
    singleton = omega * math.exp(-omega)
    collisions = useful_slot_probability(omega, lam) - singleton
    useful = singleton + collisions * resolvable_fraction
    if useful <= 0:
        return float("inf")
    return 1.0 / useful


def np_vectorized_useful_probability(omegas: np.ndarray, lam: int) -> np.ndarray:
    """Vectorized :func:`useful_slot_probability` for plotting sweeps."""
    omegas = np.asarray(omegas, dtype=np.float64)
    total = np.zeros_like(omegas)
    for k in range(1, lam + 1):
        total += omegas ** k / math.factorial(k)
    return total * np.exp(-omegas)
