"""FCAT -- the Framed Collision-Aware Tag identification protocol (section V).

The paper's main protocol.  Time is divided into frames of ``f`` slots; the
reader advertises the frame index and report probability once per frame; every
active tag then transmits, in each slot of the frame, with probability
``p_i = omega / N_hat_i``.  Singleton slots yield IDs immediately; collision
slots are recorded and resolved later through analog network coding
(:class:`~repro.core.collision.RecordStore`).  Tags identified by resolving a
collision record are dismissed by broadcasting the 23-bit *slot index* of the
record rather than the 96-bit ID (section V-A, third inefficiency).

The number of still-participating tags is estimated inside the protocol from
each frame's collision-slot count (:class:`~repro.core.estimator.EmbeddedEstimator`),
so no pre-estimation step is needed.  Termination follows section IV-A: after
a fully empty frame the reader probes one slot at ``p = 1``; silence means
every tag has been read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.collision import RecordStore
from repro.core.estimator import EmbeddedEstimator
from repro.core.optimal import optimal_omega
from repro.obs import scope
from repro.sim.active_set import ActiveSet
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult
from repro.sim.trace import SessionTrace, SlotEvent, SlotKind


@dataclass(frozen=True)
class FcatConfig:
    """Tunable parameters of an FCAT session.

    ``lam`` is the ANC capability λ: the largest collision the decoder can
    resolve.  ``omega`` defaults to the optimal load ``(λ!)^{1/λ}`` of section
    IV-C.  ``max_report_probability`` caps ``p_i`` below 1 so that an endgame
    pair of tags cannot deadlock in identical 2-collisions (see DESIGN.md).
    """

    lam: int = 2
    frame_size: int = 30
    omega: float | None = None
    initial_estimate: float = 64.0
    max_report_probability: float = 0.5
    estimator_method: str = "paper"
    estimator_mode: str = "ewma"
    #: Slot statistic the estimator inverts: "collision" (the paper's
    #: choice) or "empty" (capture-robust; see the estimator's docs).
    estimator_source: str = "collision"
    #: Weight of the newest frame in the EWMA estimator mode.
    estimator_ewma_weight: float = 0.6
    #: While bootstrapping (no informative frame seen yet), abort a frame
    #: early after this many consecutive collision slots and double the
    #: estimate right away instead of burning the rest of the frame.  ``None``
    #: disables the shortcut (the paper-literal behaviour).
    bootstrap_abort_after: int | None = None
    #: ZigZag decoding (ref [23]): a repeated 2-collision pair resolves both
    #: constituents jointly.  Off by default (the paper does not use it).
    zigzag: bool = False
    #: Abort (raise) if a session exceeds ``factor * N + 1000`` slots.
    max_slots_factor: float = 200.0

    def __post_init__(self) -> None:
        if self.lam < 2:
            raise ValueError("lam must be >= 2")
        if self.frame_size < 1:
            raise ValueError("frame_size must be >= 1")
        if self.omega is not None and self.omega <= 0:
            raise ValueError("omega must be positive")
        if not 0.0 < self.max_report_probability <= 1.0:
            raise ValueError("max_report_probability must be in (0, 1]")
        if self.bootstrap_abort_after is not None \
                and self.bootstrap_abort_after < 1:
            raise ValueError("bootstrap_abort_after must be >= 1 or None")

    @property
    def effective_omega(self) -> float:
        return self.omega if self.omega is not None else optimal_omega(self.lam)


class Fcat(TagReadingProtocol):
    """Framed Collision-Aware Tag identification (the paper's main protocol)."""

    def __init__(self, lam: int = 2, frame_size: int = 30,
                 omega: float | None = None, *,
                 initial_estimate: float = 64.0,
                 max_report_probability: float = 0.5,
                 estimator_method: str = "paper",
                 estimator_mode: str = "ewma",
                 estimator_source: str = "collision",
                 estimator_ewma_weight: float = 0.6,
                 bootstrap_abort_after: int | None = None,
                 zigzag: bool = False,
                 max_slots_factor: float = 200.0) -> None:
        self.config = FcatConfig(
            lam=lam, frame_size=frame_size, omega=omega,
            initial_estimate=initial_estimate,
            max_report_probability=max_report_probability,
            estimator_method=estimator_method,
            estimator_mode=estimator_mode,
            estimator_source=estimator_source,
            estimator_ewma_weight=estimator_ewma_weight,
            bootstrap_abort_after=bootstrap_abort_after,
            zigzag=zigzag,
            max_slots_factor=max_slots_factor)
        self.name = f"FCAT-{lam}" + ("+zz" if zigzag else "")

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING,
                 trace: SessionTrace | None = None) -> ReadingResult:
        """Run one session; pass a :class:`SessionTrace` to log every slot."""
        session = _FcatSession(self.name, self.config, population, rng,
                               channel, timing, trace)
        return session.run()


class _FcatSession:
    """State of one FCAT reading session (one reader, one population)."""

    def __init__(self, name: str, config: FcatConfig,
                 population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel, timing: TimingModel,
                 trace: SessionTrace | None = None) -> None:
        self.config = config
        self.rng = rng
        self.channel = channel
        self.omega = config.effective_omega
        self.active = ActiveSet(population.ids)
        self.store = RecordStore(config.lam, zigzag=config.zigzag)
        self.estimator = EmbeddedEstimator(
            omega=self.omega, frame_size=config.frame_size,
            initial_guess=config.initial_estimate,
            method=config.estimator_method,
            mode=config.estimator_mode,
            source=config.estimator_source,
            ewma_weight=config.estimator_ewma_weight)
        self.result = ReadingResult(protocol=name, n_tags=len(population),
                                    n_read=0, timing=timing)
        self.slot_index = 0
        self.max_slots = int(config.max_slots_factor * max(len(population), 1)
                             + 1000)
        self.trace = trace
        self._learned_this_slot: list[int] = []
        #: The active observability collector, fetched once per session so
        #: the disabled path costs one ``is None`` test per frame.
        self.obs = scope.active()
        self.name = name

    def run(self) -> ReadingResult:
        # The frame cascade sizes each frame from the previous frame's
        # outcome (paper Sec. IV): serial by protocol design; batching
        # happens across sessions, not within one.  This loop is the
        # *scalar reference*: ``repro.kernels.fcat`` replays the same
        # process frame-at-once, and ``engine="kernel"`` routes the hot
        # BENCH cells there -- what remains here is the bit-pinned
        # golden path and the ZigZag/trace configurations the kernel
        # does not implement.
        # repro: allow-vectorization-antipattern -- scalar reference; hot path lives in repro.kernels.fcat
        while True:
            empty_slots_in_frame = self._run_frame()
            if empty_slots_in_frame == self.config.frame_size:
                if self._termination_probe():
                    break
        if self.config.zigzag:
            self.result.extra["zigzag_decodes"] = self.store.zigzag_decodes
        return self.result

    # -- frame mechanics ---------------------------------------------------

    def _run_frame(self) -> int:
        """Run one frame; returns the number of empty slots observed."""
        identified_at_start = self.store.learned_count
        remaining = self.estimator.remaining()
        p = min(self.omega / remaining, self.config.max_report_probability)
        self.result.advertisements += 1  # pre-frame advertisement
        self.result.frames += 1
        abort_after = self.config.bootstrap_abort_after
        bootstrapping = abort_after is not None and not self.estimator.samples
        n_collision = n_empty = slots_run = 0
        for _ in range(self.config.frame_size):
            slot = self._next_slot()
            transmitters = self.active.sample_binomial(p, self.rng)
            outcome = self._observe(slot, transmitters)
            self._trace_slot(slot, outcome, p)
            slots_run += 1
            if outcome == "empty":
                n_empty += 1
            elif outcome == "collision":
                n_collision += 1
            if bootstrapping and n_collision == slots_run \
                    and n_collision >= abort_after:
                # Still blind and the frame is wall-to-wall collisions: cut
                # it short, double the estimate, and re-advertise.
                self.estimator.update(self.config.frame_size, p,
                                      identified_at_start,
                                      self.store.learned_count, n_empty=0)
                self._observe_frame(p, slots_run, n_empty, n_collision)
                return n_empty
        self.estimator.update(n_collision, p, identified_at_start,
                              self.store.learned_count, n_empty=n_empty)
        self.result.estimate_trace.append(self.estimator.remaining())
        if self.trace is not None:
            self.trace.record_estimate(self.result.frames - 1,
                                       self.estimator.remaining())
        self._observe_frame(p, slots_run, n_empty, n_collision)
        return n_empty

    def _observe_frame(self, p: float, slots_run: int, n_empty: int,
                       n_collision: int) -> None:
        """Telemetry for one finished (or bootstrap-aborted) frame."""
        obs = self.obs
        if obs is None:
            return
        frame_index = self.result.frames - 1
        obs.emit("frame", protocol=self.name, frame_index=frame_index,
                 report_probability=p, empty=n_empty,
                 singleton=slots_run - n_empty - n_collision,
                 collision=n_collision)
        estimate = self.estimator.remaining()
        actual = len(self.active)
        obs.emit("estimator_update", protocol=self.name,
                 frame_index=frame_index, estimate=estimate,
                 actual_remaining=actual, error=estimate - actual)
        obs.observe_value("estimator.rel_error",
                          abs(estimate - actual) / max(actual, 1))

    def _next_slot(self) -> int:
        if self.slot_index >= self.max_slots:
            raise RuntimeError(
                f"FCAT session exceeded {self.max_slots} slots -- "
                "estimator or termination logic is stuck")
        slot = self.slot_index
        self.slot_index += 1
        return slot

    def _observe(self, slot: int, transmitters: list[int]) -> str:
        """Classify one slot and apply the reader's per-slot operations."""
        self._learned_this_slot = []
        k = len(transmitters)
        self.result.tag_transmissions += k
        if k == 0:
            self.result.empty_slots += 1
            return "empty"
        if k == 1 and self.channel.singleton_ok(self.rng):
            self._handle_singleton(transmitters[0])
            return "singleton"
        if k >= 2 and self.channel.captured(self.rng):
            # Capture effect (extension): the strongest collider decodes, so
            # the reader sees a CRC-valid ID and treats the slot as a
            # singleton -- then subtracts the decoded signal and keeps the
            # residual as a (k-1)-collision record (capture + ANC synergy).
            captured = transmitters[int(self.rng.integers(0, k))]
            rest = [tag for tag in transmitters if tag != captured]
            self._handle_singleton(captured)
            if len(rest) >= 2:
                usable = self.channel.record_usable(self.rng)
                _, resolved = self.store.add_record(slot, rest, usable)
                self._apply_resolutions(resolved)
            elif self.channel.record_usable(self.rng) \
                    and not self.store.is_learned(rest[0]):
                # One constituent left in the residual: it decodes outright,
                # exactly like resolving a 2-collision record on the spot.
                cascade = self.store.learn(rest[0])
                self._apply_resolutions([(rest[0], slot)] + cascade)
            return "singleton"
        self.result.collision_slots += 1
        if k >= 2:
            usable = self.channel.record_usable(self.rng)
            _, resolved = self.store.add_record(slot, transmitters, usable)
            self._apply_resolutions(resolved)
        # k == 1 but corrupted: the CRC fails, the reader keeps an opaque
        # record it can never verify; it still counts as a collision slot.
        return "collision"

    def _trace_slot(self, slot: int, outcome: str, p: float,
                    probe: bool = False) -> None:
        if self.trace is None:
            return
        self.trace.record(SlotEvent(
            slot_index=slot,
            frame_index=self.result.frames - 1,
            kind=SlotKind(outcome),
            report_probability=p,
            learned=tuple(self._learned_this_slot),
            probe=probe,
        ))

    def _handle_singleton(self, tag: int) -> None:
        self.result.singleton_slots += 1
        if not self.store.is_learned(tag):
            self.result.n_read += 1
            self._learned_this_slot.append(tag)
        resolved = self.store.learn(tag)
        self._ack(tag)  # positive acknowledgement in this slot's ack segment
        self._apply_resolutions(resolved)

    def _apply_resolutions(self, resolved: list[tuple[int, int]]) -> None:
        """Account for IDs recovered from collision records.

        Each resolved record is announced by its 23-bit slot index in the next
        acknowledgement segment (section V-B); the tag that transmitted in that
        slot recognizes the index and stops participating.
        """
        for tag, _record_slot in resolved:
            self.result.n_read += 1
            self.result.resolved_from_collision += 1
            self.result.index_announcements += 1
            self._learned_this_slot.append(tag)
            self._ack(tag)
        if self.obs is not None and resolved:
            self.obs.emit("anc_resolution", protocol=self.name,
                          slot_index=self.slot_index - 1,
                          resolved=len(resolved))

    def _ack(self, tag: int) -> None:
        if self.channel.ack_received(self.rng):
            self.active.discard(tag)

    # -- termination -------------------------------------------------------

    def _termination_probe(self) -> bool:
        """One ``p = 1`` slot after an all-empty frame (section IV-A).

        Returns True when the probe is silent, i.e. every tag has been read
        and acknowledged.
        """
        self.result.advertisements += 1  # advertise p = 1
        slot = self._next_slot()
        transmitters = list(self.active)
        outcome = self._observe(slot, transmitters)
        self._trace_slot(slot, outcome, 1.0, probe=True)
        if self.obs is not None:
            self.obs.emit("termination_probe", protocol=self.name,
                          slot_index=slot, outcome=outcome)
        if outcome == "empty":
            return True
        if outcome == "collision":
            # The reader cannot count the colliders, but a collision at p = 1
            # proves at least two survivors: pull the estimate back up so the
            # next frames run at a sensible report probability.
            self.estimator.force_at_least(2.0)
        return False
