"""SCAT -- the Slotted Collision-Aware Tag identification protocol (section IV).

The unframed precursor of FCAT.  Every slot carries its own advertisement
(slot index + report probability), resolved tags are announced by their full
96-bit IDs, and the reader is assumed to know the tag count ``N`` from a
pre-estimation step (the paper cites Kodialam-Nandagopal; section V removes
this assumption).  SCAT exists in the paper to establish the collision-aware
mechanics and the optimal report probability; FCAT then strips its overheads.
Reproducing it lets the benchmarks show *why* the framed version wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.air.timing import ICODE_TIMING, TimingModel
from repro.core.collision import RecordStore
from repro.core.optimal import optimal_omega
from repro.estimate.kodialam import estimate_tag_count, probe_time_seconds
from repro.obs import scope
from repro.sim.active_set import ActiveSet
from repro.sim.base import TagReadingProtocol
from repro.sim.channel import PERFECT_CHANNEL, ChannelModel
from repro.sim.population import TagPopulation
from repro.sim.result import ReadingResult


@dataclass(frozen=True)
class ScatConfig:
    """Tunable parameters of a SCAT session."""

    lam: int = 2
    omega: float | None = None
    #: Probe with p = 1 after this many consecutive empty slots (section IV-A).
    empty_streak_for_probe: int = 5
    max_report_probability: float = 0.5
    #: ``None``: the reader is handed the true N (the paper's assumption).
    #: A float: run the Kodialam-Nandagopal pre-step to this coefficient of
    #: variation and pay for its probe frames in the session time.
    pre_estimate_cv: float | None = None
    max_slots_factor: float = 200.0

    def __post_init__(self) -> None:
        if self.lam < 2:
            raise ValueError("lam must be >= 2")
        if self.omega is not None and self.omega <= 0:
            raise ValueError("omega must be positive")
        if self.empty_streak_for_probe < 1:
            raise ValueError("empty_streak_for_probe must be >= 1")
        if not 0.0 < self.max_report_probability <= 1.0:
            raise ValueError("max_report_probability must be in (0, 1]")
        if self.pre_estimate_cv is not None \
                and not 0.0 < self.pre_estimate_cv < 1.0:
            raise ValueError("pre_estimate_cv must be in (0, 1) or None")

    @property
    def effective_omega(self) -> float:
        return self.omega if self.omega is not None else optimal_omega(self.lam)


class Scat(TagReadingProtocol):
    """Slotted Collision-Aware Tag identification (paper section IV)."""

    def __init__(self, lam: int = 2, omega: float | None = None, *,
                 empty_streak_for_probe: int = 5,
                 max_report_probability: float = 0.5,
                 pre_estimate_cv: float | None = None,
                 max_slots_factor: float = 200.0) -> None:
        self.config = ScatConfig(
            lam=lam, omega=omega,
            empty_streak_for_probe=empty_streak_for_probe,
            max_report_probability=max_report_probability,
            pre_estimate_cv=pre_estimate_cv,
            max_slots_factor=max_slots_factor)
        self.name = f"SCAT-{lam}"

    def read_all(self, population: TagPopulation, rng: np.random.Generator,
                 channel: ChannelModel = PERFECT_CHANNEL,
                 timing: TimingModel = ICODE_TIMING) -> ReadingResult:
        config = self.config
        omega = config.effective_omega
        active = ActiveSet(population.ids)
        store = RecordStore(config.lam)
        result = ReadingResult(protocol=self.name, n_tags=len(population),
                               n_read=0, timing=timing)
        # Section IV-C: N comes from a pre-step; the reader then tracks
        # N_i = N - n_i as tags are identified.  Default is the paper's
        # oracle; with pre_estimate_cv set, the Kodialam-Nandagopal probe
        # frames are actually run and paid for.
        if config.pre_estimate_cv is None:
            total: float = len(population)
        else:
            pre = estimate_tag_count(len(population), rng,
                                     target_cv=config.pre_estimate_cv)
            total = pre.estimate
            result.presession_s = probe_time_seconds(
                pre.total_probe_slots, pre.frames_used, timing)
            result.extra["pre_estimate"] = pre.estimate
            result.extra["pre_probe_slots"] = pre.total_probe_slots
        max_slots = int(config.max_slots_factor * max(len(population), 1)
                        + 1000)
        obs = scope.active()  # one None test per resolution while disabled
        slot_index = 0
        empty_streak = 0
        # If the pre-step under-counted, the reader may believe only a tag
        # or two remain while hundreds jam every slot -- and a jammed slot
        # yields no singletons to recover with.  A long collision streak is
        # (at the nominal load) astronomically unlikely, so treat it as
        # evidence the belief is low and double it.
        collision_streak = 0
        correction = 0.0

        def ack(tag: int) -> None:
            if channel.ack_received(rng):
                active.discard(tag)

        def apply_resolutions(resolved: list[tuple[int, int]]) -> None:
            for tag, _slot in resolved:
                result.n_read += 1
                result.resolved_from_collision += 1
                # SCAT announces the recovered ID itself (96 bits) so the tag
                # knows to stop (section IV-A; V-A improves on this).
                result.id_announcements += 1
                ack(tag)
            if obs is not None and resolved:
                obs.emit("anc_resolution", protocol=self.name,
                         slot_index=slot, resolved=len(resolved))

        # SCAT's slot walk feeds collision outcomes back into the next
        # slot's split decision: serial by protocol design; batching
        # happens across sessions, not within one.  This loop is the
        # *scalar reference*: ``repro.kernels.scat`` replays the same
        # belief process with block-at-once draws on draw-free channels,
        # so what remains hot here is the impaired-channel and
        # pre-estimation configurations the kernel routes back.
        # repro: allow-vectorization-antipattern -- scalar reference; hot path lives in repro.kernels.scat
        while True:
            if slot_index >= max_slots:
                raise RuntimeError(
                    f"SCAT session exceeded {max_slots} slots -- "
                    "termination logic is stuck")
            probing = empty_streak >= config.empty_streak_for_probe
            if probing:
                p = 1.0
                empty_streak = 0
            else:
                remaining = max(total - store.learned_count, 1.0) + correction
                p = min(omega / remaining, config.max_report_probability)
            result.advertisements += 1  # per-slot advertisement <i, p_i>
            slot = slot_index
            slot_index += 1
            transmitters = (list(active) if p >= 1.0
                            else active.sample_binomial(p, rng))
            k = len(transmitters)
            result.tag_transmissions += k
            if k == 0:
                result.empty_slots += 1
                collision_streak = 0
                correction *= 0.9  # empties are evidence the belief is high
                if probing:
                    break  # silence at p = 1: every ID is collected
                empty_streak += 1
                continue
            empty_streak = 0
            captured_slot = k >= 2 and channel.captured(rng)
            if captured_slot:
                # Capture effect (extension): the strongest collider decodes;
                # the residual becomes a (k-1)-record, as in FCAT.
                captured = transmitters[int(rng.integers(0, k))]
                rest = [tag for tag in transmitters if tag != captured]
                result.singleton_slots += 1
                if not store.is_learned(captured):
                    result.n_read += 1
                resolved = store.learn(captured)
                ack(captured)
                apply_resolutions(resolved)
                if len(rest) >= 2:
                    _, more = store.add_record(slot, rest,
                                               channel.record_usable(rng))
                    apply_resolutions(more)
                elif channel.record_usable(rng) \
                        and not store.is_learned(rest[0]):
                    cascade = store.learn(rest[0])
                    apply_resolutions([(rest[0], slot)] + cascade)
            elif k == 1 and channel.singleton_ok(rng):
                result.singleton_slots += 1
                collision_streak = 0
                tag = transmitters[0]
                if not store.is_learned(tag):
                    result.n_read += 1
                resolved = store.learn(tag)
                ack(tag)
                apply_resolutions(resolved)
            else:
                result.collision_slots += 1
                collision_streak += 1
                if collision_streak >= 15 and not probing:
                    # Fifteen collisions in a row happen with probability
                    # ~2e-6 at the nominal load: the believed count must be
                    # low (an under-counting pre-step).  Double the belief;
                    # the decay on empty slots heals any overshoot.
                    believed = max(total - store.learned_count, 1.0) \
                        + correction
                    correction += max(believed, 10.0)
                    collision_streak = 0
                if k >= 2:
                    usable = channel.record_usable(rng)
                    _, resolved = store.add_record(slot, transmitters, usable)
                    apply_resolutions(resolved)
            if captured_slot:
                collision_streak = 0
        return result
