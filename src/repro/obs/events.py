"""Structured event stream: declared schemas, validation, JSONL sink.

Every telemetry event the simulator can emit is declared up front in
:data:`EVENT_SCHEMA` -- event name to :class:`EventSpec` (field name to
field kind).  Emission validates against the spec, so an event stream that
reached a sink is guaranteed to parse back; the lint engine's
``event-schema`` rule (R9) statically pins every ``emit("name", ...)`` call
site in the source tree to this registry, so the schema and its emitters
cannot drift apart.

The on-disk form is JSONL: one event per line as
``{"seq": n, "event": name, <field>: <value>...}``.  ``seq`` is assigned by
the owning :class:`EventStream` -- when the parallel executor folds worker
streams back into the parent, events are re-sequenced in deterministic
chunk order, so a serial run and a parallel run produce the same ordering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = [
    "EVENT_SCHEMA",
    "Event",
    "EventSpec",
    "EventStream",
    "read_jsonl",
    "validate_event",
    "write_jsonl",
]

#: Field kinds an event schema may declare, mapped to accepting types.
#: ``bool`` precedes the numeric kinds because it subclasses ``int``.
_KINDS: dict[str, tuple[type, ...]] = {
    "str": (str,),
    "bool": (bool,),
    "int": (int,),
    "float": (int, float),
    "mapping": (dict,),
}


@dataclass(frozen=True)
class EventSpec:
    """Declared shape of one event: ``((field, kind), ...)``."""

    fields: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        for name, kind in self.fields:
            if kind not in _KINDS:
                raise ValueError(f"unknown field kind {kind!r} for {name!r}")

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)


def _spec(**fields: str) -> EventSpec:
    return EventSpec(fields=tuple(fields.items()))


#: The full event vocabulary.  Keys must be string literals: the R9 lint
#: rule reads this dict statically to check every ``emit()`` call site.
EVENT_SCHEMA: dict[str, EventSpec] = {
    # One complete reading session (emitted by the shared protocol hook).
    "session": _spec(protocol="str", n_tags="int", n_read="int",
                     empty_slots="int", singleton_slots="int",
                     collision_slots="int", resolved_from_collision="int",
                     frames="int", duration_s="float"),
    # One FCAT frame: the slot-outcome mix at the advertised probability.
    "frame": _spec(protocol="str", frame_index="int",
                   report_probability="float", empty="int", singleton="int",
                   collision="int"),
    # The embedded estimator after a frame: belief vs ground truth.
    "estimator_update": _spec(protocol="str", frame_index="int",
                              estimate="float", actual_remaining="int",
                              error="float"),
    # IDs recovered by resolving ANC collision records in one slot.
    "anc_resolution": _spec(protocol="str", slot_index="int",
                            resolved="int"),
    # The p = 1 probe that decides session termination.
    "termination_probe": _spec(protocol="str", slot_index="int",
                               outcome="str"),
    # One sweep cell finished (computed or served from the result cache).
    "cell_done": _spec(key="str", protocol="str", n_tags="int", runs="int",
                       seed="int", elapsed_s="float", cached="bool"),
    # Result-cache accounting; ``key`` is the cell's content address.
    "cache_hit": _spec(key="str"),
    "cache_miss": _spec(key="str"),
    "cache_invalidated": _spec(path="str", reason="str"),
    # Executor mechanics: pool spin-up and per-chunk worker accounting.
    "pool_start": _spec(workers="int", tasks="int", start_method="str"),
    "chunk_done": _spec(cell_index="int", chunk_index="int", runs="int",
                        duration_s="float", queue_wait_s="float"),
    # Adaptive planner: one batch of one cell folded into its Welford
    # state.  ``rel_half_width`` is -1.0 while undefined (fewer than two
    # runs), never infinity -- JSON sinks must round-trip.
    "planner_batch": _spec(protocol="str", n_tags="int", seed="int",
                           batch_index="int", start="int", runs="int",
                           cached="bool", mean="float",
                           rel_half_width="float"),
    # Adaptive planner: a cell closed.  ``reason`` is ``"precision"``,
    # ``"max_runs"`` or ``"budget"``.
    "planner_stop": _spec(protocol="str", n_tags="int", seed="int",
                          reason="str", runs_used="int", nominal_runs="int",
                          simulated_runs="int", cached_runs="int",
                          mean="float", rel_half_width="float"),
    # Inventory service: one request entered the compute lane.
    "request_start": _spec(key="str", n_tags="int", zones="int",
                           seed="int"),
    # Inventory service: a request was answered (``cached`` marks the
    # warm path -- response bytes served without touching the executor).
    "request_done": _spec(key="str", elapsed_s="float", cached="bool"),
    # Inventory service: the shard schedule a request compiled to.
    "shard_plan": _spec(key="str", zones="int", phases="int",
                        distinct_cells="int", interfered_zones="int"),
    # Inventory service: one zone's reading session accounted for.
    "shard_done": _spec(key="str", zone="str", n_tags="int", phase="int",
                        frame_size="int", interference_load="float"),
    # Final registry snapshot, appended as the last line of a JSONL sink.
    "metrics_snapshot": _spec(metrics="mapping"),
}


def validate_event(name: str, fields: dict) -> None:
    """Raise ``ValueError`` unless (name, fields) matches the schema."""
    spec = EVENT_SCHEMA.get(name)
    if spec is None:
        raise ValueError(f"undeclared event {name!r}; add it to EVENT_SCHEMA")
    declared = spec.field_names
    if tuple(sorted(fields)) != tuple(sorted(declared)):
        missing = set(declared) - set(fields)
        extra = set(fields) - set(declared)
        raise ValueError(
            f"event {name!r} fields mismatch: missing {sorted(missing)}, "
            f"unexpected {sorted(extra)}")
    for field_name, kind in spec.fields:
        value = fields[field_name]
        accepted = _KINDS[kind]
        if kind in ("int", "float") and isinstance(value, bool):
            raise ValueError(
                f"event {name!r} field {field_name!r} must be {kind}, "
                "got bool")
        if not isinstance(value, accepted):
            raise ValueError(
                f"event {name!r} field {field_name!r} must be {kind}, "
                f"got {type(value).__name__}")


@dataclass(frozen=True)
class Event:
    """One emitted event, already validated against its spec."""

    seq: int
    name: str
    fields: dict

    def to_json(self) -> dict:
        return {"seq": self.seq, "event": self.name, **self.fields}


class EventStream:
    """Append-only, schema-validated event log with stable sequencing."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def emit(self, name: str, **fields) -> Event:
        validate_event(name, fields)
        event = Event(seq=len(self._events), name=name, fields=fields)
        self._events.append(event)
        return event

    def extend(self, events: Iterable[Event]) -> None:
        """Fold another stream's events in, re-sequencing as they land."""
        for event in events:
            validate_event(event.name, event.fields)
            self._events.append(Event(seq=len(self._events),
                                      name=event.name, fields=event.fields))

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def counts(self) -> dict[str, int]:
        """Events seen per name, sorted by name."""
        tally: dict[str, int] = {}
        for event in self._events:
            tally[event.name] = tally.get(event.name, 0) + 1
        return dict(sorted(tally.items()))


def write_jsonl(path: Path | str, stream: EventStream) -> int:
    """Write the stream to ``path`` as JSONL; returns the line count."""
    lines = [json.dumps(event.to_json(), sort_keys=True)
             for event in stream.events]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""),
                          encoding="utf-8")
    return len(lines)


def read_jsonl(path: Path | str) -> list[Event]:
    """Parse and re-validate a JSONL sink written by :func:`write_jsonl`."""
    events: list[Event] = []
    for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{lineno}: not JSON: {error}") from None
        if not isinstance(payload, dict) or "event" not in payload \
                or "seq" not in payload:
            raise ValueError(f"{path}:{lineno}: missing seq/event keys")
        name = payload["event"]
        fields = {key: value for key, value in payload.items()
                  if key not in ("seq", "event")}
        try:
            validate_event(name, fields)
        except ValueError as error:
            raise ValueError(f"{path}:{lineno}: {error}") from None
        events.append(Event(seq=payload["seq"], name=name, fields=fields))
    return events
