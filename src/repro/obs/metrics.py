"""Counters, gauges and fixed-bucket histograms for the simulator.

The registry is the in-memory half of the observability layer
(:mod:`repro.obs`): instrumentation points increment counters, set gauges
and feed histograms; :mod:`repro.obs.report` renders the snapshot and the
executor merges per-worker registries back into the parent.

Two properties drive the design:

* **Cheap when disabled.**  Instrumented code holds an
  :class:`~repro.obs.scope.Observation` (or ``None``); the disabled path is
  a single ``is None`` test, and no instrument object is ever constructed.
* **Order-independent merge.**  The parallel executor collects one registry
  per worker chunk and folds them into the parent.  Counter merge is
  addition, histogram merge is per-bucket addition, gauge merge keeps the
  maximum -- all commutative and associative, so the folded snapshot does
  not depend on chunk completion order (the same discipline that keeps
  parallel sweeps bit-for-bit identical to serial ones).

Histograms use *fixed* bucket bounds chosen at creation: merging two
histograms never requires re-bucketing, and the p50/p90/p99 summaries are
deterministic functions of the counts (linear interpolation inside the
bucket that crosses the rank).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds: log-ish spacing covering
#: microseconds-to-minutes durations and small-to-huge counts alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0, 10000.0, 50000.0,
)


@dataclass
class Counter:
    """A monotone sum (events seen, slots observed, cache hits...)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a gauge")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class Gauge:
    """A last-known level (worker count, active cells).

    Merging keeps the **maximum**: "last write" depends on chunk completion
    order, so it would break the executor's order-independent fold; for the
    levels we track (pool width, peak queue depth) the high-water mark is
    the useful aggregate anyway.
    """

    name: str
    value: float = 0.0
    #: True once ``set`` was called; an unset gauge merges as identity.
    touched: bool = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.touched = True

    def merge(self, other: "Gauge") -> None:
        if other.touched:
            self.value = max(self.value, other.value) if self.touched \
                else other.value
            self.touched = True


@dataclass
class Histogram:
    """Fixed-bucket histogram with rank-interpolated percentile summaries."""

    name: str
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    #: Observations above the last bound land in the overflow bucket.
    overflow: int = 0
    total: float = 0.0
    n: int = 0
    min_seen: float = float("inf")
    max_seen: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be non-empty ascending")
        if not self.counts:
            self.counts = [0] * len(self.bounds)
        elif len(self.counts) != len(self.bounds):
            raise ValueError("counts must align with bounds")

    def observe(self, value: float) -> None:
        value = float(value)
        self.n += 1
        self.total += value
        self.min_seen = min(self.min_seen, value)
        self.max_seen = max(self.max_seen, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Rank-``q`` estimate from the bucket counts.

        Linear interpolation inside the bucket that crosses the rank; the
        overflow bucket reports the true maximum seen (it has no upper
        bound to interpolate toward).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.n == 0:
            return 0.0
        rank = q * self.n
        cumulative = 0
        lower = max(self.min_seen, 0.0) if self.min_seen != float("inf") \
            else 0.0
        for index, bound in enumerate(self.bounds):
            count = self.counts[index]
            if count and cumulative + count >= rank:
                inside = max(rank - cumulative, 0.0)
                return lower + (bound - lower) * (inside / count)
            if count:
                lower = bound
            cumulative += count
        return self.max_seen

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.overflow += other.overflow
        self.total += other.total
        self.n += other.n
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)

    def summary(self) -> dict:
        return {
            "count": self.n,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "min": self.min_seen if self.n else 0.0,
            "max": self.max_seen if self.n else 0.0,
        }


class MetricsRegistry:
    """Named instruments, created on first use, merged order-independently."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (create on first touch) ---------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with other bounds")
        return instrument

    # -- folding -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (commutative, associative)."""
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def snapshot(self) -> dict:
        """Plain sorted-key dict of every instrument (JSON-ready)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)
                       if self._gauges[name].touched},
            "histograms": {name: self._histograms[name].summary()
                           for name in sorted(self._histograms)},
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
