"""repro.obs -- metrics, events and run manifests for the simulator.

The observability layer the production-scale executor reports through:

* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket histograms
  in a :class:`MetricsRegistry` whose merge is order-independent (so
  per-worker registries fold back into the parent without disturbing the
  parallel == serial guarantee);
* :mod:`repro.obs.events` -- a schema-checked structured event stream
  (slot outcomes, frame boundaries, estimator updates, ANC resolutions,
  cache traffic, executor chunk accounting) with a JSONL sink;
* :mod:`repro.obs.manifest` -- one provenance document per experiment
  invocation: command, git SHA, python/numpy versions, wall time, and the
  config fingerprint (``cell_key``) plus timing of every sweep cell;
* :mod:`repro.obs.scope` -- the ``with observe(...):`` context manager that
  turns collection on; instrumentation points cost one ``is None`` check
  while disabled;
* :mod:`repro.obs.report` -- text summaries and the CI validator
  (``python -m repro.obs.report metrics.jsonl --manifest manifest.json``).

Usage::

    from repro.obs import observe, write_jsonl

    with observe() as obs:
        run_many(Fcat(lam=2), population, runs=10, seed=7)
    write_jsonl("metrics.jsonl", obs.events)
    print(obs.metrics.snapshot()["counters"]["sessions"])

See ``docs/observability.md`` for the event schema table and overhead
numbers.
"""

from repro.obs.events import (
    EVENT_SCHEMA,
    Event,
    EventSpec,
    EventStream,
    read_jsonl,
    validate_event,
    write_jsonl,
)
from repro.obs.manifest import (
    CellRun,
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.scope import Observation, active, enabled, observe

# repro.obs.report is deliberately NOT imported here: it is the
# ``python -m repro.obs.report`` entry point, and importing it from the
# package would trigger runpy's double-import RuntimeWarning.  Its API
# (``summarize``, ``render_report``, ``cross_check_manifest``) lives in
# the submodule's own ``__all__``.

__all__ = [
    "EVENT_SCHEMA",
    "Event",
    "EventSpec",
    "EventStream",
    "read_jsonl",
    "validate_event",
    "write_jsonl",
    "CellRun",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "build_manifest",
    "read_manifest",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "active",
    "enabled",
    "observe",
]
