"""Text summaries and validation of observability artefacts.

``render_report`` turns a metrics JSONL sink (and optionally a run
manifest) into the short human-readable summary the CLI prints; run as a
module it doubles as the CI validator::

    python -m repro.obs.report metrics.jsonl --manifest manifest.json

Validation is structural and cross-artefact: every JSONL line must parse
and match its :data:`~repro.obs.events.EVENT_SCHEMA` spec (enforced by
:func:`~repro.obs.events.read_jsonl`), and when a manifest is given, the
set of cell config fingerprints it records must equal the set of ``key``
fields carried by the stream's ``cell_done`` events -- the two artefacts
describe the same run or the tool exits non-zero.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.events import Event, read_jsonl
from repro.obs.manifest import RunManifest, read_manifest

__all__ = [
    "cross_check_manifest",
    "main",
    "render_report",
    "summarize",
]


def _metrics_lines(snapshot: dict) -> list[str]:
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            rendered = f"{value:g}"
            lines.append(f"  {name:<34} {rendered}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name:<34} {value:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms (count / mean / p50 / p90 / p99):")
        for name, summary in histograms.items():
            lines.append(
                f"  {name:<34} {summary['count']} / {summary['mean']:.4g} / "
                f"{summary['p50']:.4g} / {summary['p90']:.4g} / "
                f"{summary['p99']:.4g}")
    return lines


def summarize(events: list[Event],
              manifest: RunManifest | None = None) -> str:
    """The human-readable digest of one observed run."""
    lines = [f"observability report: {len(events)} events"]
    tally: dict[str, int] = {}
    snapshot: dict | None = None
    for event in events:
        tally[event.name] = tally.get(event.name, 0) + 1
        if event.name == "metrics_snapshot":
            snapshot = event.fields["metrics"]
    lines.append("events by type:")
    for name in sorted(tally):
        lines.append(f"  {name:<34} {tally[name]}")
    cells = [event for event in events if event.name == "cell_done"]
    if cells:
        cached = sum(1 for event in cells if event.fields["cached"])
        busy = sum(event.fields["elapsed_s"] for event in cells)
        lines.append(f"cells: {len(cells)} total, {cached} cache-served, "
                     f"{busy:.2f}s compute attributed")
        for event in cells:
            fields = event.fields
            mark = "cache" if fields["cached"] else f"{fields['runs']} runs"
            lines.append(
                f"  {fields['protocol']:<10} N={fields['n_tags']:<6} "
                f"{fields['elapsed_s']:8.3f}s  ({mark})  "
                f"{fields['key'][:12]}")
    if snapshot is not None:
        lines.extend(_metrics_lines(snapshot))
    if manifest is not None:
        lines.append(
            f"manifest: {' '.join(manifest.command)!r} on "
            f"{manifest.platform} (git {manifest.git_sha or 'unknown'}), "
            f"python {manifest.python_version} / numpy "
            f"{manifest.numpy_version}, jobs={manifest.jobs}, "
            f"wall {manifest.wall_time_s:.2f}s")
    return "\n".join(lines)


def cross_check_manifest(events: list[Event],
                         manifest: RunManifest) -> list[str]:
    """Mismatches between a stream and a manifest (empty = consistent).

    The manifest's per-cell config fingerprints and the stream's
    ``cell_done`` keys must be the same set: each is derived independently
    (manifest from the executor's :class:`~repro.obs.manifest.CellRun`
    records, events from the emission path), so agreement means neither
    artefact dropped or invented a cell.
    """
    event_keys = {event.fields["key"] for event in events
                  if event.name == "cell_done"}
    manifest_keys = {cell.key for cell in manifest.cells}
    problems: list[str] = []
    for key in sorted(manifest_keys - event_keys):
        problems.append(f"manifest cell {key[:16]}... has no cell_done event")
    for key in sorted(event_keys - manifest_keys):
        problems.append(f"cell_done event {key[:16]}... missing from the "
                        "manifest")
    if manifest.event_count != len(events):
        problems.append(
            f"manifest records {manifest.event_count} events but the "
            f"stream holds {len(events)}")
    return problems


def render_report(jsonl_path: Path | str,
                  manifest_path: Path | str | None = None) -> str:
    """Load, validate and summarize the artefacts of one run."""
    events = read_jsonl(jsonl_path)
    manifest = read_manifest(manifest_path) if manifest_path is not None \
        else None
    return summarize(events, manifest)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Validate and summarize a metrics JSONL sink")
    parser.add_argument("jsonl", type=Path, help="metrics JSONL file")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="run manifest to cross-check against")
    args = parser.parse_args(argv)
    try:
        events = read_jsonl(args.jsonl)
    except (OSError, ValueError) as error:
        print(f"invalid event stream: {error}", file=sys.stderr)
        return 1
    manifest = None
    if args.manifest is not None:
        try:
            manifest = read_manifest(args.manifest)
        except (OSError, ValueError) as error:
            print(f"invalid manifest: {error}", file=sys.stderr)
            return 1
        problems = cross_check_manifest(events, manifest)
        if problems:
            for problem in problems:
                print(f"mismatch: {problem}", file=sys.stderr)
            return 1
    print(summarize(events, manifest))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
