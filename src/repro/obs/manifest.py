"""Run manifests: what ran, on what, from which configs, for how long.

A manifest is the provenance half of observability: one JSON document per
experiment invocation recording the command, the environment (git revision,
python/numpy versions, platform, CPU count), wall time, and one record per
sweep cell -- including the cell's *config fingerprint*, the same
content-address :func:`repro.experiments.result_cache.cell_key` computes,
so a manifest entry can be matched against cache entries and ``cell_done``
events byte-for-byte.

Manifests round-trip: :func:`read_manifest` restores exactly what
:func:`write_manifest` stored, and the schema test pins the field set.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.scope import Observation

__all__ = [
    "CellRun",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "build_manifest",
    "environment_info",
    "git_revision",
    "read_manifest",
    "write_manifest",
]

#: Bump when the manifest layout changes.
MANIFEST_SCHEMA = "repro-manifest/1"


@dataclass(frozen=True)
class CellRun:
    """One sweep cell as the executor ran (or cache-served) it."""

    #: Content address of the cell's canonical config fingerprint
    #: (``repro.experiments.result_cache.cell_key``).
    key: str
    protocol: str
    n_tags: int
    runs: int
    seed: int
    #: Compute time attributed to the cell: the sum of its chunks' worker
    #: time (CPU-seconds, not wall-clock) -- or the lookup time when cached.
    elapsed_s: float
    cached: bool


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one observed experiment invocation."""

    schema: str
    command: list[str]
    started_unix: float
    wall_time_s: float
    jobs: int
    git_sha: str | None
    repro_version: str
    python_version: str
    numpy_version: str
    platform: str
    cpu_count: int
    cells: list[CellRun] = field(default_factory=list)
    event_count: int = 0

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["cells"] = [dataclasses.asdict(cell) for cell in self.cells]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        cells = [CellRun(**cell) for cell in payload.get("cells", [])]
        fields = {f.name: payload[f.name]
                  for f in dataclasses.fields(cls) if f.name != "cells"}
        return cls(cells=cells, **fields)


def git_revision(root: Path | str | None = None) -> str | None:
    """The checkout's HEAD SHA, or ``None`` outside a git work tree."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True, text=True, timeout=5, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def environment_info() -> dict:
    """Interpreter / library / machine identity for the manifest."""
    import numpy

    import repro

    try:
        import os
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        import os
        cpus = os.cpu_count() or 1
    return {
        "repro_version": repro.__version__,
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        "platform": platform.platform(),
        "cpu_count": cpus,
    }


def build_manifest(observation: "Observation", command: list[str],
                   started_unix: float, jobs: int,
                   wall_time_s: float | None = None) -> RunManifest:
    """Assemble the manifest for one observed run.

    ``observation.cells`` supplies the per-cell records the executor
    appended; ``wall_time_s`` defaults to now-minus-start.
    """
    if wall_time_s is None:
        wall_time_s = max(time.time() - started_unix, 0.0)
    return RunManifest(
        schema=MANIFEST_SCHEMA,
        command=list(command),
        started_unix=started_unix,
        wall_time_s=wall_time_s,
        jobs=jobs,
        git_sha=git_revision(),
        cells=list(observation.cells),
        event_count=len(observation.events),
        **environment_info(),
    )


def write_manifest(path: Path | str, manifest: RunManifest) -> None:
    Path(path).write_text(json.dumps(manifest.to_dict(), indent=2) + "\n",
                          encoding="utf-8")


def read_manifest(path: Path | str) -> RunManifest:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"unsupported manifest schema {payload.get('schema')!r}")
    return RunManifest.from_dict(payload)
