"""The ``with observe(...):`` scope that turns telemetry on.

Observability is off by default and costs one ``is None`` test per
instrumentation point.  Entering :func:`observe` installs an
:class:`Observation` -- a metrics registry, an event stream and the list of
per-cell timing records the run manifest is built from -- as the process's
current collector; instrumented code fetches it once via :func:`active` and
writes through it.

The scope nests (the executor re-enters it inside worker processes to give
each chunk a private collector it can ship back for the order-independent
parent merge) and always restores the previous collector on exit, even on
error.  Module-level helpers (:func:`emit`, :func:`inc`, :func:`observe_value`,
:func:`set_gauge`) are one-liner conveniences for cold instrumentation
points; hot loops should hold the :class:`Observation` and guard on ``None``
themselves.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.events import Event, EventStream
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Observation",
    "active",
    "emit",
    "enabled",
    "inc",
    "observe",
    "observe_value",
    "set_gauge",
]


@dataclass
class Observation:
    """Everything one observed run collects."""

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    events: EventStream = field(default_factory=EventStream)
    #: Per-cell :class:`~repro.obs.manifest.CellRun` records, appended by
    #: the sweep executor, consumed by ``build_manifest``.
    cells: list = field(default_factory=list)

    # -- write-through conveniences ---------------------------------------

    def emit(self, name: str, **fields) -> Event:
        return self.events.emit(name, **fields)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def observe_value(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def merge(self, other: "Observation") -> None:
        """Fold a worker's observation in (order-independent for metrics;
        events append in the caller-chosen deterministic order)."""
        self.metrics.merge(other.metrics)
        self.events.extend(other.events.events)
        self.cells.extend(other.cells)


#: The process-wide current collector; ``None`` means observability is off.
_current: Observation | None = None


def active() -> Observation | None:
    """The installed collector, or ``None`` when observability is off.

    Hot paths call this once (per session / per chunk) and keep the result.
    """
    return _current


def enabled() -> bool:
    return _current is not None


@contextmanager
def observe(target: Observation | MetricsRegistry | None = None
            ) -> Iterator[Observation]:
    """Install a collector for the duration of the ``with`` block.

    ``target`` may be a full :class:`Observation`, a bare
    :class:`~repro.obs.metrics.MetricsRegistry` (wrapped into a fresh
    observation, the ``with observe(registry):`` one-liner), or ``None``
    for a fresh observation.  Yields the installed observation; the
    previous collector is restored on exit.
    """
    global _current
    if target is None:
        observation = Observation()
    elif isinstance(target, MetricsRegistry):
        observation = Observation(metrics=target)
    else:
        observation = target
    previous = _current
    _current = observation
    try:
        yield observation
    finally:
        _current = previous


# -- module-level one-liners (no-ops while disabled) -----------------------

def emit(name: str, **fields) -> None:
    if _current is not None:
        _current.events.emit(name, **fields)


def inc(name: str, amount: float = 1.0) -> None:
    if _current is not None:
        _current.metrics.counter(name).inc(amount)


def observe_value(name: str, value: float) -> None:
    if _current is not None:
        _current.metrics.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    if _current is not None:
        _current.metrics.gauge(name).set(value)
