"""Hotspot ranking: which loops should the kernel PR vectorize first.

``repro-lint --hotspots`` turns the dependence layer's loop summaries
into a work-list.  A loop matters when it is *hot* -- its enclosing
function is call-graph reachable from a BENCH cell entry point
(``LintConfig.hotspot_entry_points``) -- and its rank grows with how
much work each iteration hides and how hard batching it will be:

``score = reach * (1 + antipatterns + classification bonus + downstream)``

* ``reach`` counts the entry points that reach the enclosing function,
* the classification bonus is 2 for serially-dependent loops and 1 for
  reductions (both need restructuring; already-vectorizable loops only
  score through their antipatterns),
* ``downstream`` counts the functions transitively reachable from the
  call sites inside the loop body -- the per-iteration interpreter work
  a batched kernel would amortize (``run_many``'s session loop reaches
  entire protocol sessions, so it outranks a tight arithmetic loop even
  though its body is four lines).

Only loops in ``vectorization_dirs`` are ranked -- that is the
sim/core/phy surface the ROADMAP's batching item owns.
"""

from __future__ import annotations

from repro.devtools.config import LintConfig, path_has_dir
from repro.devtools.dependence import CLASS_REDUCTION, CLASS_SERIAL

HOTSPOT_SCHEMA = "repro-hotspots/1"

_CLASS_BONUS = {CLASS_SERIAL: 2, CLASS_REDUCTION: 1}


def reach_counts(index, config: LintConfig,
                 graph: dict[str, set[str]] | None = None
                 ) -> dict[str, int]:
    """Function path -> number of entry points that reach it."""
    graph = index.call_graph() if graph is None else graph
    counts: dict[str, int] = {}
    for root in config.hotspot_entry_points:
        for path in _reachable(graph, [root]):
            counts[path] = counts.get(path, 0) + 1
    return counts


def _reachable(graph: dict[str, set[str]], roots: list[str]) -> set[str]:
    seen: set[str] = set()
    frontier = list(roots)
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(sorted(graph.get(current, ())))
    return seen


def rank_hotspots(index, config: LintConfig) -> dict:
    """The ``--hotspots`` payload: hot loops, highest score first."""
    graph = index.call_graph()
    reach = reach_counts(index, config, graph)
    entries: list[dict] = []
    for module, info in index.all_functions():
        if not info.loops:
            continue
        if not any(path_has_dir(module.relpath, directory)
                   for directory in config.vectorization_dirs):
            continue
        path = f"{module.dotted}:{info.qualname}"
        weight = reach.get(path, 0)
        if weight == 0:
            continue
        for loop in info.loops:
            callees = {callee.path
                       for call in info.calls
                       if loop.lineno <= call.lineno <= loop.end_lineno
                       for callee in index.resolve_call(module, info, call)}
            downstream = len(_reachable(graph, sorted(callees)) - {path})
            score = weight * (1 + len(loop.antipatterns)
                              + _CLASS_BONUS.get(loop.classification, 0)
                              + downstream)
            entries.append({
                "path": module.relpath,
                "line": loop.lineno,
                "function": path,
                "kind": loop.kind,
                "classification": loop.classification,
                "carried": list(loop.carried),
                "antipatterns": list(loop.antipatterns),
                "calls_in_loop": loop.n_calls,
                "downstream": downstream,
                "reach": weight,
                "score": score,
            })
    entries.sort(key=lambda e: (-e["score"], e["path"], e["line"]))
    return {"schema": HOTSPOT_SCHEMA,
            "entry_points": list(config.hotspot_entry_points),
            "hotspots": entries}


def render_hotspots_text(payload: dict) -> str:
    """Human-readable ranking, one loop per line."""
    lines = [f"hotspots ({len(payload['hotspots'])} hot loops, "
             f"entry points: {', '.join(payload['entry_points'])})"]
    for rank, entry in enumerate(payload["hotspots"], start=1):
        notes = [entry["classification"]]
        if entry["carried"]:
            notes.append("carried: " + ", ".join(entry["carried"]))
        if entry["antipatterns"]:
            notes.append("anti: " + ", ".join(entry["antipatterns"]))
        notes.append(f"downstream: {entry['downstream']}")
        lines.append(f"{rank:3d}. [{entry['score']:5d}] "
                     f"{entry['path']}:{entry['line']} "
                     f"{entry['function'].split(':', 1)[1]} "
                     f"({'; '.join(notes)})")
    return "\n".join(lines)
