"""Hotspot ranking: which loops should the kernel PR vectorize first.

``repro-lint --hotspots`` turns the dependence layer's loop summaries
into a work-list.  A loop matters when it is *hot* -- its enclosing
function is call-graph reachable from a BENCH cell entry point
(``LintConfig.hotspot_entry_points``) -- and its rank grows with how
much work each iteration hides and how hard batching it will be:

``score = reach * (1 + antipatterns + classification bonus + downstream)``

* ``reach`` counts the entry points that reach the enclosing function,
* the classification bonus is 2 for serially-dependent loops and 1 for
  reductions (both need restructuring; already-vectorizable loops only
  score through their antipatterns),
* ``downstream`` counts the functions transitively reachable from the
  call sites inside the loop body -- the per-iteration interpreter work
  a batched kernel would amortize (``run_many``'s session loop reaches
  entire protocol sessions, so it outranks a tight arithmetic loop even
  though its body is four lines).

Only loops in ``vectorization_dirs`` are ranked -- that is the
sim/core/phy surface the ROADMAP's batching item owns.

A loop leaves the *pending* work-list once a kernel covers it: every
``# repro: kernel scalar=... test=...`` registration (lint rule R15)
names the scalar reference its kernel stays equivalent to, and a loop
whose enclosing function is such a reference -- or a same-module helper
the reference drives -- is ranked in a separate ``kernelized`` section
instead of ``hotspots``.  The payload therefore *is* the regression
gate: CI asserts the pre-kernel top loops stay out of the pending
top-3, and a kernel losing its registration puts its scalar loop
straight back.
"""

from __future__ import annotations

import re

from repro.devtools.config import LintConfig, path_has_dir
from repro.devtools.dependence import CLASS_REDUCTION, CLASS_SERIAL
from repro.devtools.effects import iter_comments

HOTSPOT_SCHEMA = "repro-hotspots/2"

#: Loose match first, strict parse second: a ``repro: kernel`` comment
#: that does not carry well-formed ``scalar=``/``test=`` fields is
#: malformed (rule R15 reports it), not an ignored comment.
KERNEL_MARKER = re.compile(r"#\s*repro:\s*kernel\b(?P<rest>.*)$")
KERNEL_CONTRACT = re.compile(
    r"^\s+scalar=(?P<scalar>[\w.]+:[\w.]+)\s+test=(?P<test>\S+)\s*$")


def parse_kernel_contracts(source: str) -> tuple[
        dict[int, tuple[str, str]], list[tuple[int, str]]]:
    """``# repro: kernel`` registrations in one module's source.

    Returns ``(line -> (scalar, test), malformed)``; shared between the
    R15 rule (which validates) and the hotspot ranking (which uses the
    scalar references to split off kernelized loops).
    """
    contracts: dict[int, tuple[str, str]] = {}
    malformed: list[tuple[int, str]] = []
    for lineno, text in iter_comments(source):
        marker = KERNEL_MARKER.search(text)
        if marker is None:
            continue
        fields = KERNEL_CONTRACT.match(marker.group("rest"))
        if fields is None:
            malformed.append((lineno, marker.group("rest")))
        else:
            contracts[lineno] = (fields.group("scalar"),
                                 fields.group("test"))
    return contracts, malformed


def kernel_scalar_refs(sources: "dict[str, str] | list") -> set[str]:
    """Every scalar reference registered by a kernel contract.

    Accepts either ``{name: source}`` or an iterable of objects with a
    ``source`` attribute (the lint engine's module contexts).
    """
    if isinstance(sources, dict):
        texts = list(sources.values())
    else:
        texts = [module.source for module in sources]
    refs: set[str] = set()
    for text in texts:
        contracts, _ = parse_kernel_contracts(text)
        refs.update(scalar for scalar, _test in contracts.values())
    return refs

_CLASS_BONUS = {CLASS_SERIAL: 2, CLASS_REDUCTION: 1}


def reach_counts(index, config: LintConfig,
                 graph: dict[str, set[str]] | None = None
                 ) -> dict[str, int]:
    """Function path -> number of entry points that reach it."""
    graph = index.call_graph() if graph is None else graph
    counts: dict[str, int] = {}
    for root in config.hotspot_entry_points:
        for path in _reachable(graph, [root]):
            counts[path] = counts.get(path, 0) + 1
    return counts


def _reachable(graph: dict[str, set[str]], roots: list[str]) -> set[str]:
    seen: set[str] = set()
    frontier = list(roots)
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(sorted(graph.get(current, ())))
    return seen


def _kernelized_functions(graph: dict[str, set[str]],
                          scalar_refs: set[str]) -> set[str]:
    """Scalar references plus the same-module helpers they drive.

    Coverage deliberately stops at the module boundary: a kernel
    registration vouches for the scalar implementation it mirrors, not
    for everything that implementation happens to call (a shared record
    store, say, may still have uncovered hot paths of its own).
    """
    covered: set[str] = set()
    for ref in scalar_refs:
        ref_module = ref.partition(":")[0]
        covered.update(
            path for path in _reachable(graph, [ref])
            if path.partition(":")[0] == ref_module)
    return covered


def rank_hotspots(index, config: LintConfig,
                  scalar_refs: set[str] | None = None) -> dict:
    """The ``--hotspots`` payload: pending hot loops, highest score first.

    ``scalar_refs`` are the kernel contracts' registered scalar
    references (:func:`kernel_scalar_refs`); their loops are reported
    under ``kernelized`` instead of ``hotspots``.
    """
    graph = index.call_graph()
    reach = reach_counts(index, config, graph)
    covered = _kernelized_functions(graph, scalar_refs or set())
    entries: list[dict] = []
    kernelized: list[dict] = []
    for module, info in index.all_functions():
        if not info.loops:
            continue
        if not any(path_has_dir(module.relpath, directory)
                   for directory in config.vectorization_dirs):
            continue
        path = f"{module.dotted}:{info.qualname}"
        weight = reach.get(path, 0)
        if weight == 0:
            continue
        for loop in info.loops:
            callees = {callee.path
                       for call in info.calls
                       if loop.lineno <= call.lineno <= loop.end_lineno
                       for callee in index.resolve_call(module, info, call)}
            downstream = len(_reachable(graph, sorted(callees)) - {path})
            score = weight * (1 + len(loop.antipatterns)
                              + _CLASS_BONUS.get(loop.classification, 0)
                              + downstream)
            bucket = kernelized if path in covered else entries
            bucket.append({
                "path": module.relpath,
                "line": loop.lineno,
                "function": path,
                "kind": loop.kind,
                "classification": loop.classification,
                "carried": list(loop.carried),
                "antipatterns": list(loop.antipatterns),
                "calls_in_loop": loop.n_calls,
                "downstream": downstream,
                "reach": weight,
                "score": score,
            })
    order = lambda e: (-e["score"], e["path"], e["line"])  # noqa: E731
    entries.sort(key=order)
    kernelized.sort(key=order)
    return {"schema": HOTSPOT_SCHEMA,
            "entry_points": list(config.hotspot_entry_points),
            "hotspots": entries,
            "kernelized": kernelized}


def render_hotspots_text(payload: dict) -> str:
    """Human-readable ranking, one loop per line."""
    lines = [f"hotspots ({len(payload['hotspots'])} pending hot loops, "
             f"entry points: {', '.join(payload['entry_points'])})"]
    lines.extend(_render_entries(payload["hotspots"]))
    kernelized = payload.get("kernelized", [])
    if kernelized:
        lines.append(f"kernelized ({len(kernelized)} loops covered by a "
                     "registered kernel)")
        lines.extend(_render_entries(kernelized))
    return "\n".join(lines)


def _render_entries(entries: list[dict]) -> list[str]:
    lines = []
    for rank, entry in enumerate(entries, start=1):
        notes = [entry["classification"]]
        if entry["carried"]:
            notes.append("carried: " + ", ".join(entry["carried"]))
        if entry["antipatterns"]:
            notes.append("anti: " + ", ".join(entry["antipatterns"]))
        notes.append(f"downstream: {entry['downstream']}")
        lines.append(f"{rank:3d}. [{entry['score']:5d}] "
                     f"{entry['path']}:{entry['line']} "
                     f"{entry['function'].split(':', 1)[1]} "
                     f"({'; '.join(notes)})")
    return lines
