"""Conservative interval evaluation of AST expressions (for R6).

``interval_of_expr`` maps an expression to a ``(low, high)`` pair when its
value range is statically provable, or ``None`` when it is not.  Only
constructs whose bounds are certain are evaluated -- numeric literals,
unary minus, ``+ - * / // %`` on evaluable operands, ``min``/``max``
(partial knowledge is kept: ``min(x, 0.5)`` is ``(-inf, 0.5)``), ``abs``,
and names bound to evaluable module constants or single-assignment locals.
Everything else is unknown, so the probability-domain rule only ever fires
on values that are *provably* outside ``[0, 1]``.

Intervals are plain tuples so the project index can serialize them into
the on-disk cache.
"""

from __future__ import annotations

import ast
import math
from typing import Mapping

Interval = tuple[float, float]

_INF = math.inf


def _mul(a: Interval, b: Interval) -> Interval | None:
    products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    # ``0 * inf`` is NaN: the true corner value depends on how each factor
    # approaches its bound, so no corner product is trustworthy.  Strict
    # soundness: any NaN corner makes the whole product unknown (the old
    # code dropped NaNs and crashed on ``min([])`` when all four were).
    if any(math.isnan(p) for p in products):
        return None
    return (min(products), max(products))


def _div(a: Interval, b: Interval) -> Interval | None:
    if b[0] <= 0.0 <= b[1]:
        return None  # denominator may be zero: no provable bounds
    if math.isinf(b[0]) and math.isinf(b[1]):
        return None  # 1/inf collapses to (0, 0); NaN via _mul otherwise
    inverted = (1.0 / b[1], 1.0 / b[0])
    return _mul(a, inverted)


def _binop(op: ast.operator, left: Interval,
           right: Interval) -> Interval | None:
    if isinstance(op, ast.Add):
        return (left[0] + right[0], left[1] + right[1])
    if isinstance(op, ast.Sub):
        return (left[0] - right[1], left[1] - right[0])
    if isinstance(op, ast.Mult):
        return _mul(left, right)
    if isinstance(op, ast.Div):
        return _div(left, right)
    if isinstance(op, ast.FloorDiv):
        divided = _div(left, right)
        if divided is None:
            return None
        return (math.floor(divided[0]), math.floor(divided[1]))
    if isinstance(op, ast.Mod):
        # x % m for m > 0 lies in [0, m); for m < 0 in (m, 0].
        if right[0] > 0:
            return (0.0, right[1])
        if right[1] < 0:
            return (right[0], 0.0)
        return None
    if isinstance(op, ast.Pow):
        # Only the easy, certain case: non-negative base, constant exponent.
        if left[0] >= 0 and right[0] == right[1] and right[0] >= 0:
            return (left[0] ** right[0], left[1] ** right[0])
        return None
    return None


def interval_of_expr(node: ast.expr,
                     env: Mapping[str, Interval] | None = None
                     ) -> Interval | None:
    """Provable value range of ``node``, or None when unprovable.

    ``env`` maps names (module constants, single-assignment locals) to
    already-proved intervals.
    """
    env = env or {}
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return (float(node.value), float(node.value))
        if isinstance(node.value, (int, float)) \
                and not isinstance(node.value, complex):
            value = float(node.value)
            return (value, value)
        return None
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp):
        operand = interval_of_expr(node.operand, env)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return (-operand[1], -operand[0])
        if isinstance(node.op, ast.UAdd):
            return operand
        return None
    if isinstance(node, ast.BinOp):
        left = interval_of_expr(node.left, env)
        right = interval_of_expr(node.right, env)
        if left is None or right is None:
            return None
        return _binop(node.op, left, right)
    if isinstance(node, ast.IfExp):
        body = interval_of_expr(node.body, env)
        orelse = interval_of_expr(node.orelse, env)
        if body is None or orelse is None:
            return None
        return (min(body[0], orelse[0]), max(body[1], orelse[1]))
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "clip" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in ("np", "numpy"):
            # np.clip(x, lo, hi) narrows like the builtin.  The method form
            # (arr.clip(lo, hi)) is NOT matched: its first positional is a
            # bound, not the value, and conflating the two would narrow
            # unsoundly.
            name = "clip"
        else:
            return None
        if name == "clip":
            args = _clip_call_args(node, env)
            return None if args is None else _call_interval(name, args)
        if node.keywords:
            return None
        return _call_interval(name,
                              [interval_of_expr(arg, env)
                               for arg in node.args])
    return None


#: ``np.clip`` bound-keyword spellings (classic ``a_min``/``a_max`` plus
#: the array-API aliases ``min``/``max``) -> positional slot.
_CLIP_KEYWORD_SLOTS = {"a_min": 1, "min": 1, "a_max": 2, "max": 2}


def _clip_call_args(node: ast.Call, env: dict[str, Interval]
                    ) -> list[Interval | None] | None:
    """``[x, lo, hi]`` intervals for a clip call, honouring keyword forms.

    An omitted bound clips nothing on its side and becomes the matching
    infinite constant; unknown keywords, ``**kwargs`` and double-filled
    slots bail to None (no narrowing).
    """
    if not node.args or len(node.args) + len(node.keywords) > 3:
        return None
    slots: list[Interval | None] = [None, None, None]
    filled = set(range(len(node.args)))
    for position, arg in enumerate(node.args[:3]):
        slots[position] = interval_of_expr(arg, env)
    for keyword in node.keywords:
        slot = _CLIP_KEYWORD_SLOTS.get(keyword.arg or "")
        if slot is None or slot in filled:
            return None
        filled.add(slot)
        slots[slot] = interval_of_expr(keyword.value, env)
    if 1 not in filled:
        slots[1] = (-_INF, -_INF)
    if 2 not in filled:
        slots[2] = (_INF, _INF)
    return slots


def _call_interval(name: str,
                   args: list[Interval | None]) -> Interval | None:
    if not args:
        return None
    if name == "abs" and len(args) == 1 and args[0] is not None:
        low, high = args[0]
        if low >= 0:
            return (low, high)
        if high <= 0:
            return (-high, -low)
        return (0.0, max(-low, high))
    if name in ("float", "int") and len(args) == 1:
        return args[0]
    if name == "min":
        # Every known argument caps the result from above; the floor is
        # only known when every argument is known.
        known = [arg for arg in args if arg is not None]
        if not known:
            return None
        high = min(arg[1] for arg in known)
        low = min(arg[0] for arg in known) if len(known) == len(args) \
            else -_INF
        return (low, high)
    if name == "max":
        known = [arg for arg in args if arg is not None]
        if not known:
            return None
        low = max(arg[0] for arg in known)
        high = max(arg[1] for arg in known) if len(known) == len(args) \
            else _INF
        return (low, high)
    if name == "clip" and len(args) == 3:
        # clip(x, lo, hi) narrows to [lo, hi] even when x is unknown.
        x, lo, hi = args
        if lo is None or hi is None:
            return None
        x = x if x is not None else (-_INF, _INF)
        return (min(max(x[0], lo[0]), hi[0]),
                min(max(x[1], lo[1]), hi[1]))
    return None


def provably_outside_unit(interval: Interval) -> bool:
    """True when every value in ``interval`` is outside ``[0, 1]``."""
    return interval[0] > 1.0 or interval[1] < 0.0
