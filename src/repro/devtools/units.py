"""Quantity-kind registry for the R5 units analysis (and R6's name matcher).

The simulator moves three physical quantities across call boundaries --
**seconds** (durations, ``air/timing.py``), **bits** (payload sizes) and
**slots** (frame/slot counts) -- plus dimensionless ratios such as report
probabilities.  Mixing them compiles fine and silently corrupts Table I, so
the analyzer classifies every parameter, attribute and local it can and
flags provably mixed arithmetic and call arguments.

Classification has two layers:

* **naming conventions** -- a name's ``_``-separated tokens are scanned
  right to left and the first recognized token decides the kind
  (``slot_duration`` -> ``duration`` -> seconds; ``index_bits`` -> bits;
  ``max_slots`` -> slots).  Unrecognized names stay unclassified, which is
  always safe: the rules only fire on *provable* mismatches.
* **the explicit annotation registry** below -- qualified overrides for
  names whose convention-derived kind would be wrong or missing.  Entries
  are ``"<module>.<Class>.<func>.<param>"`` (or shorter suffixes; matching
  is suffix-based on dotted segments) mapped to a kind or ``None`` to
  force-unclassify.

Probability-typed names (the R6 domain) are matched here too so the two
rule families agree on what a probability is.
"""

from __future__ import annotations

KIND_SECONDS = "seconds"
KIND_BITS = "bits"
KIND_SLOTS = "slots"
KIND_DIMENSIONLESS = "dimensionless"

#: Kinds whose mixture in ``+``/``-`` or across a call boundary is an error.
HARD_KINDS = frozenset({KIND_SECONDS, KIND_BITS, KIND_SLOTS})

#: Name tokens -> kind, applied right-to-left over ``_``-split tokens.
TOKEN_KINDS: dict[str, str] = {
    "seconds": KIND_SECONDS,
    "secs": KIND_SECONDS,
    "sec": KIND_SECONDS,
    "duration": KIND_SECONDS,
    "durations": KIND_SECONDS,
    "time": KIND_SECONDS,
    "times": KIND_SECONDS,
    "elapsed": KIND_SECONDS,
    "bits": KIND_BITS,
    "slots": KIND_SLOTS,
    "probability": KIND_DIMENSIONLESS,
    "prob": KIND_DIMENSIONLESS,
}

#: ``_s`` is a seconds suffix (``presession_s``) but only as a *suffix*
#: token, never as a whole name.
SUFFIX_ONLY_TOKEN_KINDS: dict[str, str] = {
    "s": KIND_SECONDS,
}

#: Explicit annotation registry: dotted-suffix -> kind (or None to opt a
#: name out of classification entirely).  Keep entries rare; prefer naming
#: things so the convention layer gets them right.
QUALIFIED_KINDS: dict[str, str | None] = {
    # `TimingModel.transmission_time(bits)` / `announcement_duration(...,
    # bits_each)` take bit *counts*; the convention already agrees, these
    # pin the core timing contract explicitly.
    "repro.air.timing.TimingModel.transmission_time.bits": KIND_BITS,
    "repro.air.timing.TimingModel.announcement_duration.bits_each": KIND_BITS,
    "repro.air.timing.TimingModel.session_seconds.slots": KIND_SLOTS,
    # `time.time()` returns a wall-clock stamp, not a simulated duration;
    # the CLI's elapsed arithmetic is wall-clock bookkeeping, not model
    # time, but its kind is still seconds -- leave convention in force.
}

#: Whole names that must never be classified (convention false friends).
IGNORED_NAMES = frozenset({
    "time",       # usually the stdlib module, not a duration
    "datetime",
})

#: Parameter/variable names that denote probabilities when no hard kind
#: claims the name first (`probability_bits` is bits, not a probability).
PROBABILITY_NAMES = frozenset({"p", "p_i", "q_probability"})
PROBABILITY_TOKENS = frozenset({"prob", "probability", "probabilities"})


def name_tokens(name: str) -> list[str]:
    return [token for token in name.lower().split("_") if token]


def kind_of_name(name: str) -> str | None:
    """Convention-layer classification of one bare name (or attribute)."""
    if name in IGNORED_NAMES:
        return None
    tokens = name_tokens(name)
    for position, token in enumerate(reversed(tokens)):
        kind = TOKEN_KINDS.get(token)
        if kind is not None:
            return kind
        if position == 0 and len(tokens) > 1:
            kind = SUFFIX_ONLY_TOKEN_KINDS.get(token)
            if kind is not None:
                return kind
    return None


def registered_kind(qualified: str) -> str | None | bool:
    """Registry lookup by dotted suffix; ``False`` means "no entry".

    ``qualified`` is e.g. ``repro.air.timing.TimingModel.transmission_time.
    bits``; any entry that is a whole-segment suffix of it wins (longest
    entry first, so more specific overrides beat generic ones).
    """
    matches = [entry for entry in QUALIFIED_KINDS
               if qualified == entry or qualified.endswith("." + entry)]
    if not matches:
        return False
    best = max(matches, key=len)
    return QUALIFIED_KINDS[best]


def kind_of_qualified(qualified: str) -> str | None:
    """Kind of a fully qualified parameter/attribute name.

    Registry entries override the naming convention; the convention is
    applied to the last dotted segment.
    """
    registered = registered_kind(qualified)
    if registered is not False:
        return registered
    return kind_of_name(qualified.rsplit(".", 1)[-1])


def is_probability_name(name: str) -> bool:
    """True when ``name`` denotes a probability by convention.

    A hard quantity kind always wins: ``probability_bits`` advertises the
    *width* of the quantized probability field, so it is bits, not a
    probability.
    """
    if kind_of_name(name) in HARD_KINDS:
        return False
    if name in PROBABILITY_NAMES:
        return True
    return bool(PROBABILITY_TOKENS.intersection(name_tokens(name)))
