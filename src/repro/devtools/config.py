"""Per-rule configuration for the repro lint engine.

Everything path-like is matched against POSIX-style paths relative to the
scan root (for ``src`` scans that means paths such as
``repro/experiments/runner.py``), so the same config drives both the real
tree and the small fixture trees the rule tests build under ``tmp_path``.
"""

from __future__ import annotations

from dataclasses import dataclass


def path_has_dir(relpath: str, directory: str) -> bool:
    """True when ``directory`` names one of ``relpath``'s parent segments."""
    return directory.strip("/") in relpath.split("/")[:-1]


def path_matches(relpath: str, suffix: str) -> bool:
    """Suffix match on whole path segments (``sim/base.py`` style)."""
    return relpath == suffix or relpath.endswith("/" + suffix)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for the repo-specific rules (see docs/static_analysis.md)."""

    # --- R1: determinism -------------------------------------------------
    #: Files allowed to construct Generators/SeedSequences.  Everything else
    #: must take randomness as an explicit ``rng: np.random.Generator``.
    rng_entry_points: tuple[str, ...] = (
        "sim/base.py",
        "experiments/runner.py",
        "repro/__init__.py",
    )
    #: numpy.random constructors that mint fresh random state.
    rng_factories: tuple[str, ...] = ("default_rng", "SeedSequence")
    #: ``np.random.<name>`` attributes that are *not* the legacy global-state
    #: API and therefore stay legal everywhere (types, not draw functions).
    rng_benign_attrs: tuple[str, ...] = (
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "default_rng",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    )
    #: Accepted annotations for parameters named ``rng``.
    rng_annotations: tuple[str, ...] = (
        "np.random.Generator",
        "numpy.random.Generator",
        "Generator",
    )

    # --- R2: protocol conformance ---------------------------------------
    #: Simple name of the shared ABC every reading protocol subclasses.
    protocol_base: str = "TagReadingProtocol"
    #: Directories whose protocol classes must honour the contract.
    protocol_dirs: tuple[str, ...] = ("baselines", "core")
    #: The shared read-session entry point.
    protocol_method: str = "read_all"
    #: Leading positional parameters, in order.
    protocol_required_params: tuple[str, ...] = ("self", "population", "rng")
    #: Extra parameters a protocol may add, all of which need defaults.
    protocol_optional_params: tuple[str, ...] = ("channel", "timing", "trace")

    # --- R3: numeric hygiene --------------------------------------------
    #: Directories where ``== <float literal>`` comparisons are banned.
    float_equality_dirs: tuple[str, ...] = ("phy", "analysis", "core")

    # --- R4: public-API consistency -------------------------------------
    #: Test module (relative to the repo root) whose ``PACKAGES`` list must
    #: agree with the packages that actually exist.
    api_packages_test: str = "tests/test_public_api.py"
    #: Docs (relative to the repo root) whose ``from repro... import`` lines
    #: must only name exported symbols.
    api_doc_paths: tuple[str, ...] = ("docs/api_reference.md", "README.md")
    #: Dotted-name depth up to which packages must appear in ``PACKAGES``
    #: (``repro.core`` is depth 1; ``repro.devtools.rules`` is depth 2 and
    #: only gets the per-module ``__all__`` checks).
    api_packages_max_depth: int = 1
    #: Plain modules (not package ``__init__``s) that are public API
    #: surfaces in their own right: their ``__all__`` gets the same checks
    #: and they may be listed in the ``PACKAGES`` manifest.
    api_export_modules: tuple[str, ...] = (
        "repro/experiments/executor.py",
        "repro/experiments/planner.py",
        "repro/obs/events.py",
        "repro/obs/manifest.py",
        "repro/obs/metrics.py",
        "repro/obs/report.py",
        "repro/obs/scope.py",
        "repro/service/client.py",
        "repro/service/core.py",
        "repro/service/frontend.py",
        "repro/service/interference.py",
        "repro/service/requests.py",
        "repro/service/sharding.py",
    )

    # --- R5: units/dimension analysis -----------------------------------
    #: Directories whose arithmetic and call arguments are kind-checked
    #: (the packages that move seconds/bits/slots across call boundaries).
    units_dirs: tuple[str, ...] = ("air", "analysis", "core", "sim",
                                   "dynamics", "estimate")

    # --- R6: probability-domain interval analysis -----------------------
    #: Probability checks run tree-wide; directories here additionally
    #: check dataclass-field defaults (the config-object hot spots).
    probability_dirs: tuple[str, ...] = ("core", "analysis", "sim",
                                         "dynamics", "baselines")

    # --- R7: whole-program RNG reachability ------------------------------
    #: Helper functions that mint Generators from seeds; a function calling
    #: one of these (or a raw factory) roots the rng-flow reachability walk.
    rng_mint_helpers: tuple[str, ...] = ("rng_from_seed",)
    #: Additional reachability roots (``module.dotted:qualname``): public
    #: stochastic APIs that outside callers (tests, notebooks, downstream
    #: code) drive with their own Generator.
    rng_public_roots: tuple[str, ...] = (
        # The sweep executor's worker entry point: in a pool worker process
        # this is the outermost frame above the seeded simulation path.
        "repro.experiments.executor:run_chunk",
        # The adaptive planner's loop: outside callers drive it directly
        # (scripts/bench.py, the CLI's --precision path) and every batch
        # it schedules flows into the seeded executor fan-out.
        "repro.experiments.planner:plan_cells",
        "repro.analysis.link_budget:simulated_ber",
        "repro.analysis.link_budget:channel_model_from_snr",
        "repro.baselines.abs_protocol:AdaptiveBinarySplitting.reread",
        "repro.baselines.aqs:AdaptiveQuerySplitting.reread",
        "repro.inventory.manager:run_inventory_round",
        "repro.inventory.scheduling:run_parallel_round",
        "repro.inventory.zones:Warehouse.random_layout",
        "repro.phy.anc:alice_bob_exchange",
        # The inventory service's request entry point: every request flows
        # into the seeded executor fan-out (cell seeds derive from the
        # request seed by SERVICE_CELL_STRIDE).
        "repro.service.core:InventoryService.handle",
    )

    # --- R8: experiment-registry completeness ----------------------------
    #: Module filename stems (under ``experiments/``) that must be wired in.
    experiment_stem_prefixes: tuple[str, ...] = ("fig", "table")
    #: The CLI module holding the experiment registry dict.
    experiment_cli: str = "experiments/cli.py"
    #: Name of the registry dict in the CLI module.
    experiment_registry: str = "EXPERIMENTS"
    #: Document (relative to the repo root) that must mention every
    #: experiment by its registry name.
    experiment_doc: str = "EXPERIMENTS.md"

    # --- R9: event-schema conformance ------------------------------------
    #: Module holding the observability event schema.
    event_schema_module: str = "obs/events.py"
    #: Name of the schema dict (event name -> spec) in that module.
    event_schema_registry: str = "EVENT_SCHEMA"

    # --- R10: rng order-sensitivity ---------------------------------------
    #: Call tails (beyond ``rng_factories``/``rng_mint_helpers``) whose
    #: result carries draw-order state.
    rng_value_sources: tuple[str, ...] = ("spawn_run_seeds", "spawn")

    # --- R11: fork-safety -------------------------------------------------
    #: Functions (``module.dotted:qualname``) that run inside pool workers;
    #: everything reachable from them crosses the fork boundary.
    worker_roots: tuple[str, ...] = (
        "repro.experiments.executor:run_chunk",
        # The planner loop: pool workers fork from the parent mid-round,
        # so everything its frame reaches crosses the fork boundary too.
        "repro.experiments.planner:plan_cells",
        # The service computes under an installed observe() scope and a
        # held compute lock; its executor fan-out forks from that frame.
        "repro.service.core:InventoryService._compute",
    )
    #: Module globals (``module.dotted:name``) audited as fork-safe: either
    #: re-initialized per worker or merged back through ChunkOutcome.
    fork_safe_globals: tuple[str, ...] = (
        # The ambient Observation slot: every worker enters observe()
        # fresh, and the captured counters return via
        # ChunkOutcome.observation for a deterministic parent-side merge.
        "repro.obs.scope:_current",
    )

    # --- R12: shape/dtype contracts ---------------------------------------
    #: Directories whose array code is shape/dtype checked.
    shape_dirs: tuple[str, ...] = ("phy", "core", "sim")

    # --- R13: vectorization antipatterns ----------------------------------
    #: Directories whose hot loops are checked (the batching candidates,
    #: plus the kernels themselves -- a serial loop sneaking back into a
    #: batched engine should be just as visible as one in the reference).
    vectorization_dirs: tuple[str, ...] = ("sim", "core", "phy", "kernels")
    #: BENCH cell entry points (``module.dotted:qualname``): a loop is
    #: "hot" when its function is call-graph reachable from one of these.
    #: run_chunk is its own root because the pool passes it as a value;
    #: run_many is the public top-level batch API (exported from
    #: ``repro`` itself) that outside callers drive directly.
    hotspot_entry_points: tuple[str, ...] = (
        "repro.experiments.runner:run_cell",
        "repro.experiments.runner:sweep",
        "repro.experiments.executor:run_chunk",
        # The adaptive planner's sequential-stopping loop: with
        # --precision this is the frame every bench/CLI cell runs under.
        "repro.experiments.planner:plan_cells",
        "repro.sim.base:run_many",
        # The kernel engine's chunk entry: under engine="kernel" this is
        # what the BENCH cells actually spend their time in.
        "repro.kernels.engine:run_batch",
    )

    # --- R15: kernel-equivalence registry ---------------------------------
    #: Name markers identifying vectorized kernels: a leading-underscore-
    #: free marker ending in ``_`` is a prefix, otherwise a suffix.
    kernel_name_markers: tuple[str, ...] = ("batched_", "_kernel")


DEFAULT_CONFIG = LintConfig()
