"""Lightweight shape/dtype inference for numpy arrays (for R12).

The ANC residual-cascade math in ``phy/`` lives or dies on dtype
discipline: a complex128 residual silently widened to complex from a
float64 buffer, or narrowed through ``.real``, changes the decoded bits
without raising.  This module gives the shape-contract rule a conservative
abstract domain:

* :class:`ShapeInfo` -- ``(dims, dtype)`` where ``dims`` is a tuple of
  symbolic dimension names (``("n", "2")``) or ``None`` for unknown rank,
  and ``dtype`` is a canonical numpy dtype name or ``None``.
* :func:`parse_shape_contracts` -- the ``# repro: shape(...)`` comment
  syntax.  ``# repro: shape(n, m) dtype=complex128`` on an assignment
  declares the target; on a parameter line it declares the parameter; on
  a ``def`` line it declares the return value.  ``shape(any)`` declares
  the dtype only.
* :func:`infer_expr` -- bottom-up inference over the constructors that
  pin a dtype exactly (``np.zeros``/``empty``/``full``/``asarray`` with a
  dtype argument, ``astype``, ``.real``/``.imag``, ``np.abs``) and the
  arithmetic that combines them.  Anything else is unknown, so the rule
  only fires on *provable* contract violations.

Inference never guesses: an unknown operand makes the result's dtype
unknown, and unknown never conflicts with any contract.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Mapping

#: Widening order.  A value of higher rank stored where a lower rank was
#: declared is a provable contract violation; equal-or-lower is fine.
DTYPE_RANK = {
    "bool": 0,
    "int8": 1, "uint8": 1,
    "int16": 2, "uint16": 2,
    "int32": 3, "uint32": 3,
    "int64": 4, "uint64": 4, "int": 4, "intp": 4,
    "float32": 5,
    "float64": 6, "float": 6,
    "complex64": 7,
    "complex128": 8, "complex": 8,
}

_COMPLEX_RANK = DTYPE_RANK["complex64"]

#: ``np.abs``/``.real``/``.imag`` of a complex array yields its real twin.
_REAL_OF = {"complex64": "float32", "complex128": "float64"}

_CONTRACT = re.compile(
    r"#\s*repro:\s*shape\(([^)]*)\)(?:\s+dtype=([\w.]+))?")


def normalize_dtype(text: str | None) -> str | None:
    """``np.complex128``/``"complex128"`` -> ``complex128``; else None."""
    if text is None:
        return None
    name = text.strip().strip("\"'").rsplit(".", 1)[-1]
    return name if name in DTYPE_RANK else None


def is_complex_dtype(dtype: str | None) -> bool:
    rank = DTYPE_RANK.get(dtype or "")
    return rank is not None and rank >= _COMPLEX_RANK


@dataclass(frozen=True)
class ShapeInfo:
    """Abstract value of an array expression (None fields = unknown)."""

    dims: tuple[str, ...] | None = None
    dtype: str | None = None

    def describe(self) -> str:
        dims = "any" if self.dims is None else ", ".join(self.dims)
        dtype = self.dtype or "?"
        return f"shape({dims}) dtype={dtype}"

    def to_dict(self) -> dict:
        return {"dims": list(self.dims) if self.dims is not None else None,
                "dtype": self.dtype}

    @classmethod
    def from_dict(cls, data: dict) -> "ShapeInfo":
        dims = data.get("dims")
        return cls(dims=tuple(dims) if dims is not None else None,
                   dtype=data.get("dtype"))


def parse_shape_contracts(source: str) -> dict[int, ShapeInfo]:
    """Line number -> declared :class:`ShapeInfo` for contract comments."""
    contracts: dict[int, ShapeInfo] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _CONTRACT.search(line)
        if match is None:
            continue
        dims_text = match.group(1).strip()
        if dims_text.lower() == "any":
            dims: tuple[str, ...] | None = None
        else:
            dims = tuple(part.strip() for part in dims_text.split(",")
                         if part.strip())
        contracts[lineno] = ShapeInfo(dims=dims,
                                      dtype=normalize_dtype(match.group(2)))
    return contracts


# ---------------------------------------------------------------------------
# conflict checks

def dtype_conflict(declared: str | None,
                   inferred: str | None) -> str | None:
    """Human-readable conflict when ``inferred`` violates ``declared``."""
    if declared is None or inferred is None:
        return None
    declared_rank = DTYPE_RANK.get(declared)
    inferred_rank = DTYPE_RANK.get(inferred)
    if declared_rank is None or inferred_rank is None:
        return None
    if inferred_rank <= declared_rank:
        return None
    if is_complex_dtype(inferred) and not is_complex_dtype(declared):
        return (f"complex value ({inferred}) flows into a slot declared "
                f"{declared}: real/complex mixing in a residual path "
                "changes decoded bits silently")
    return (f"dtype widens from declared {declared} to {inferred}; "
            "widening on a hot path doubles memory traffic and breaks "
            "byte-identical artefacts")


def dims_conflict(declared: tuple[str, ...] | None,
                  inferred: tuple[str, ...] | None) -> str | None:
    """Conflict when both shapes are known and provably incompatible."""
    if declared is None or inferred is None:
        return None
    if len(declared) != len(inferred):
        return (f"rank mismatch: declared {len(declared)}-d "
                f"({', '.join(declared) or 'scalar'}) but value is "
                f"{len(inferred)}-d ({', '.join(inferred) or 'scalar'})")
    for want, got in zip(declared, inferred):
        if want.isdigit() and got.isdigit() and want != got:
            return f"dimension mismatch: declared {want}, got {got}"
    return None


# ---------------------------------------------------------------------------
# inference

#: numpy constructors whose dtype defaults to float64 without a ``dtype=``.
_FLOAT_CTORS = {"zeros", "ones", "empty", "full"}
_LIKE_CTORS = {"zeros_like", "ones_like", "empty_like", "full_like"}
_CAST_CTORS = {"asarray", "array", "ascontiguousarray", "asfarray"}
_ABS_FUNCS = {"abs", "absolute"}


def _dims_of_shape_arg(node: ast.expr) -> tuple[str, ...] | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return (str(node.value),)
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return (node.attr,)
    if isinstance(node, (ast.Tuple, ast.List)):
        dims = []
        for element in node.elts:
            part = _dims_of_shape_arg(element)
            if part is None or len(part) != 1:
                return None
            dims.append(part[0])
        return tuple(dims)
    return None


def _dtype_kwarg(node: ast.Call) -> str | None:
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            try:
                return normalize_dtype(ast.unparse(keyword.value))
            except Exception:  # pragma: no cover - malformed dtype expr
                return None
    return None


def infer_expr(node: ast.expr, env: Mapping[str, ShapeInfo],
               numpy_names: frozenset[str] = frozenset(("np", "numpy")),
               ) -> ShapeInfo | None:
    """Abstract shape/dtype of ``node`` under ``env``, or None if unknown."""
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Call):
        return _infer_call(node, env, numpy_names)
    if isinstance(node, ast.Attribute):
        if node.attr in ("real", "imag"):
            base = infer_expr(node.value, env, numpy_names)
            if base is None:
                return None
            return ShapeInfo(dims=base.dims,
                             dtype=_REAL_OF.get(base.dtype or "",
                                                base.dtype))
        if node.attr == "T":
            base = infer_expr(node.value, env, numpy_names)
            if base is None:
                return None
            dims = tuple(reversed(base.dims)) if base.dims else base.dims
            return ShapeInfo(dims=dims, dtype=base.dtype)
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)):
        return infer_expr(node.operand, env, numpy_names)
    if isinstance(node, ast.Subscript):
        base = infer_expr(node.value, env, numpy_names)
        if base is None:
            return None
        return ShapeInfo(dims=None, dtype=base.dtype)
    if isinstance(node, ast.BinOp):
        return _infer_binop(node, env, numpy_names)
    return None


def _infer_call(node: ast.Call, env: Mapping[str, ShapeInfo],
                numpy_names: frozenset[str]) -> ShapeInfo | None:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id in numpy_names:
        name = func.attr
        if name in _FLOAT_CTORS and node.args:
            return ShapeInfo(dims=_dims_of_shape_arg(node.args[0]),
                             dtype=_dtype_kwarg(node) or "float64")
        if name in _LIKE_CTORS and node.args:
            base = infer_expr(node.args[0], env, numpy_names)
            dims = base.dims if base else None
            dtype = _dtype_kwarg(node) or (base.dtype if base else None)
            return ShapeInfo(dims=dims, dtype=dtype)
        if name in _CAST_CTORS and node.args:
            base = infer_expr(node.args[0], env, numpy_names)
            dtype = _dtype_kwarg(node)
            if dtype is None and len(node.args) > 1:
                try:
                    dtype = normalize_dtype(ast.unparse(node.args[1]))
                except Exception:  # pragma: no cover
                    dtype = None
            if dtype is None and base is not None:
                dtype = base.dtype
            return ShapeInfo(dims=base.dims if base else None, dtype=dtype)
        if name in _ABS_FUNCS and node.args:
            base = infer_expr(node.args[0], env, numpy_names)
            if base is None:
                return None
            return ShapeInfo(dims=base.dims,
                             dtype=_REAL_OF.get(base.dtype or "",
                                                base.dtype))
        if name in ("conj", "conjugate") and node.args:
            return infer_expr(node.args[0], env, numpy_names)
        return None
    if isinstance(func, ast.Attribute) and func.attr == "astype" \
            and node.args:
        base = infer_expr(func.value, env, numpy_names)
        try:
            dtype = normalize_dtype(ast.unparse(node.args[0]))
        except Exception:  # pragma: no cover
            dtype = None
        return ShapeInfo(dims=base.dims if base else None, dtype=dtype)
    if isinstance(func, ast.Attribute) and func.attr in ("copy", "ravel",
                                                         "flatten"):
        base = infer_expr(func.value, env, numpy_names)
        if base is None:
            return None
        if func.attr in ("ravel", "flatten"):
            return ShapeInfo(dims=None, dtype=base.dtype)
        return base
    return None


def _infer_binop(node: ast.BinOp, env: Mapping[str, ShapeInfo],
                 numpy_names: frozenset[str]) -> ShapeInfo | None:
    left = infer_expr(node.left, env, numpy_names)
    right = infer_expr(node.right, env, numpy_names)
    # A plain scalar literal never changes the array dtype class we track
    # conservatively; treat `arr * 2.0` as the array's info when the other
    # operand is a numeric constant of equal-or-lower rank.
    left = left or _const_info(node.left)
    right = right or _const_info(node.right)
    if left is None or right is None:
        return None
    if isinstance(node.op, ast.MatMult):
        dims: tuple[str, ...] | None = None
    elif left.dims is not None and right.dims is not None:
        dims = left.dims if left.dims == right.dims else None
        if dims is None and (left.dims == () or right.dims == ()):
            dims = left.dims if right.dims == () else right.dims
    elif left.dims == () or right.dims == ():
        dims = right.dims if left.dims == () else left.dims
    else:
        dims = None
    if left.dtype is None or right.dtype is None:
        dtype = None
    else:
        dtype = max(left.dtype, right.dtype,
                    key=lambda name: DTYPE_RANK.get(name, -1))
        if isinstance(node.op, ast.Div) \
                and DTYPE_RANK.get(dtype, 9) < DTYPE_RANK["float32"]:
            dtype = "float64"  # true division promotes integers
    return ShapeInfo(dims=dims, dtype=dtype)


def _const_info(node: ast.expr) -> ShapeInfo | None:
    if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)):
        return _const_info(node.operand)
    if not isinstance(node, ast.Constant):
        return None
    if isinstance(node.value, bool):
        return ShapeInfo(dims=(), dtype="bool")
    if isinstance(node.value, int):
        return ShapeInfo(dims=(), dtype="int64")
    if isinstance(node.value, float):
        return ShapeInfo(dims=(), dtype="float64")
    if isinstance(node.value, complex):
        return ShapeInfo(dims=(), dtype="complex128")
    return None
