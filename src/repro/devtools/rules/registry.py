"""Rule registry: rules self-register at import via the @register decorator."""

from __future__ import annotations

from typing import Iterable, Type, TypeVar

from repro.devtools.rules.base import Rule

_REGISTRY: dict[str, Type[Rule]] = {}

RuleT = TypeVar("RuleT", bound=Type[Rule])


def register(rule_class: RuleT) -> RuleT:
    """Class decorator adding a rule to the global registry by its name."""
    name = getattr(rule_class, "name", None)
    if not name:
        raise ValueError(f"{rule_class.__name__} must define a `name`")
    if name in _REGISTRY and _REGISTRY[name] is not rule_class:
        raise ValueError(f"duplicate rule name {name!r}")
    _REGISTRY[name] = rule_class
    return rule_class


def rule_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def describe_rules() -> dict[str, str]:
    return {name: _REGISTRY[name].description for name in rule_names()}


def create_rules(select: Iterable[str] = ()) -> list[Rule]:
    """Instantiate the selected rules (all of them when ``select`` is empty)."""
    selected = tuple(select) or rule_names()
    unknown = [name for name in selected if name not in _REGISTRY]
    if unknown:
        known = ", ".join(rule_names())
        raise KeyError(f"unknown rule(s) {unknown}; known rules: {known}")
    return [_REGISTRY[name]() for name in selected]
