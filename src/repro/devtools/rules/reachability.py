"""R7 -- whole-program RNG reachability.

R1 polices randomness per file: no global state, Generators minted only in
the seed entry points, ``rng`` parameters annotated.  What a per-file rule
cannot see is a *stochastic orphan*: a function that takes an ``rng`` but
is never on any call path from a place that actually mints one.  Orphans
are either dead stochastic code or -- worse -- code wired around the
seeding discipline (a caller somewhere fabricating its own Generator would
be caught by R1, but a caller passing something else entirely would not).

The rule walks the pass-1 call graph.  **Roots** are functions (or module
top-level code) that call a Generator factory (``default_rng`` /
``SeedSequence``) or a designated mint helper (``rng_from_seed``), plus any
``module:qualname`` listed in ``LintConfig.rng_public_roots`` (public
stochastic APIs whose callers live outside the scanned tree).  Every
function with an ``rng`` parameter must be reachable from a root.  Method
calls resolve name-based (every class's ``read_all`` is a candidate target
of ``protocol.read_all(...)``), which over-approximates reachability --
exactly the conservative direction: a reported orphan really has no caller
chain back to a seed.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.devtools.config import LintConfig, path_matches
from repro.devtools.findings import Finding
from repro.devtools.index import MODULE_SCOPE, ProjectIndex
from repro.devtools.rules.base import ProjectContext, Rule
from repro.devtools.rules.registry import register


@register
class RngReachability(Rule):
    """Every rng-taking function must be reachable from a seed root."""

    name = "rng-reachability"
    description = ("a function taking `rng` that no seed entry point can "
                   "reach is a stochastic orphan: dead code or a path "
                   "wired around the seeding discipline")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        index = project.index
        if index is None:
            return
        roots = self._roots(index, config)
        reachable = self._reachable(index, roots)
        entry_points = ", ".join(config.rng_entry_points)
        for module, function in index.all_functions():
            if not function.has_rng_param:
                continue
            path = f"{module.dotted}:{function.qualname}"
            if path in reachable:
                continue
            yield self.finding(
                module.relpath, function.lineno,
                f"stochastic function `{function.qualname}` takes `rng` "
                "but is unreachable from every seed entry point "
                f"({entry_points}); wire it into a seeded path, or list it "
                "in LintConfig.rng_public_roots if outside callers drive it")

    def _roots(self, index: ProjectIndex, config: LintConfig) -> set[str]:
        factories = set(config.rng_factories)
        helpers = set(config.rng_mint_helpers)
        roots = set(config.rng_public_roots)
        for module, function in index.all_functions():
            minted = any(
                call.raw.rsplit(".", 1)[-1] in factories
                or call.raw.rsplit(".", 1)[-1] in helpers
                for call in function.calls)
            entry_module = any(path_matches(module.relpath, entry)
                               for entry in config.rng_entry_points)
            if minted or (entry_module
                          and function.qualname == MODULE_SCOPE):
                roots.add(f"{module.dotted}:{function.qualname}")
        return roots

    @staticmethod
    def _reachable(index: ProjectIndex, roots: set[str]) -> set[str]:
        edges = index.call_graph()
        seen = set(roots)
        queue = deque(root for root in roots if root in edges)
        while queue:
            source = queue.popleft()
            for target in edges.get(source, ()):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen
