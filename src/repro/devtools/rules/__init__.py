"""Lint rules for the repro codebase, grouped by invariant.

Importing this package populates the registry: each rule module applies the
:func:`~repro.devtools.rules.registry.register` decorator at import time.
R1--R4 are the per-file/per-project families from the first devtools
iteration; R5--R8 (units, probability domain, rng reachability, experiment
registry) are the whole-program families that run over the pass-1 index;
R9 (event-schema) pins observability emit sites to the declared schema;
R10--R12 (rng order-sensitivity, fork-safety, shape/dtype contracts) are
the data-flow families built on :mod:`repro.devtools.dataflow` and
:mod:`repro.devtools.shapes`; R13--R15 (vectorization antipatterns,
effect contracts, kernel equivalence) are the vectorization-readiness
families built on :mod:`repro.devtools.dependence` and
:mod:`repro.devtools.effects`.
"""

from repro.devtools.rules.base import (
    ModuleContext,
    ProjectContext,
    Rule,
)
from repro.devtools.rules.registry import (
    create_rules,
    describe_rules,
    register,
    rule_names,
)

# Importing for side effect: these modules register their rules.
from repro.devtools.rules import api as _api
from repro.devtools.rules import concurrency as _concurrency
from repro.devtools.rules import determinism as _determinism
from repro.devtools.rules import experiments as _experiments
from repro.devtools.rules import numeric as _numeric
from repro.devtools.rules import observability as _observability
from repro.devtools.rules import probability as _probability
from repro.devtools.rules import protocol as _protocol
from repro.devtools.rules import reachability as _reachability
from repro.devtools.rules import shapes as _shapes
from repro.devtools.rules import units as _units
from repro.devtools.rules import vectorization as _vectorization

__all__ = [
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "create_rules",
    "describe_rules",
    "register",
    "rule_names",
]
