"""Lint rules for the repro codebase, grouped by invariant.

Importing this package populates the registry: each rule module applies the
:func:`~repro.devtools.rules.registry.register` decorator at import time.
"""

from repro.devtools.rules.base import (
    ModuleContext,
    ProjectContext,
    Rule,
)
from repro.devtools.rules.registry import (
    create_rules,
    describe_rules,
    register,
    rule_names,
)

# Importing for side effect: these modules register their rules.
from repro.devtools.rules import api as _api
from repro.devtools.rules import determinism as _determinism
from repro.devtools.rules import numeric as _numeric
from repro.devtools.rules import protocol as _protocol

__all__ = [
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "create_rules",
    "describe_rules",
    "register",
    "rule_names",
]
