"""R4 -- public-API consistency.

``docs/api_reference.md`` and ``tests/test_public_api.py`` both promise a
surface; this rule pins each package's ``__all__`` to that promise from the
other side, statically:

* every package ``__init__`` declares a literal ``__all__`` with no
  duplicates and no entries that don't resolve to an import or definition;
* every symbol imported from a ``repro.*`` submodule into a package
  ``__init__`` is exported (re-export completeness);
* the ``PACKAGES`` manifest in the public-API test names exactly the
  shallow packages that exist under the scan root;
* every ``from repro... import name`` line in the docs names an exported
  symbol;
* standalone modules listed in ``LintConfig.api_export_modules`` (e.g. the
  sweep executor) get the same ``__all__`` checks and may appear in the
  ``PACKAGES`` manifest, minus re-export completeness -- unlike an
  ``__init__``, a module legitimately imports internals it doesn't export.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register

_DOC_IMPORT = re.compile(r"^from\s+(repro(?:\.\w+)*)\s+import\s+([\w\s,()]+)$")


def _literal_all(module: ModuleContext) -> tuple[list[str] | None, int]:
    """The module's literal ``__all__`` and its line (list, line)."""
    for node in module.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts):
                    return [e.value for e in value.elts], node.lineno
                return None, node.lineno
    return None, 0


def _defined_names(module: ModuleContext) -> set[str]:
    names: set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


@register
class PublicApiConsistency(Rule):
    """``__all__`` must agree with the code, the docs and the API test."""

    name = "public-api"
    description = ("each package __all__ must be a literal, resolvable, "
                   "duplicate-free export list that covers its repro.* "
                   "imports and matches docs/api_reference.md and "
                   "tests/test_public_api.py")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        exports: dict[str, list[str]] = {}
        for module in project.package_inits():
            yield from self._check_init(module, exports)
        # Designated standalone API modules get the same __all__ checks,
        # minus re-export completeness: unlike an __init__, a module
        # legitimately imports internals it does not re-export.
        for relpath in config.api_export_modules:
            module = project.module_at(relpath)
            if module is not None and not module.is_package_init:
                yield from self._check_init(module, exports,
                                            require_reexports=False)
        if project.repo_root is not None:
            yield from self._check_packages_manifest(project, exports, config)
            yield from self._check_docs(project, exports, config)

    def _check_init(self, module: ModuleContext,
                    exports: dict[str, list[str]],
                    require_reexports: bool = True) -> Iterable[Finding]:
        declared, line = _literal_all(module)
        if line == 0:
            yield self.finding(
                module, 1,
                f"package `{module.dotted_name}` declares no __all__")
            return
        if declared is None:
            yield self.finding(
                module, line,
                "__all__ must be a literal list/tuple of strings so the "
                "export surface is statically checkable")
            return
        exports[module.dotted_name] = declared
        seen: set[str] = set()
        for entry in declared:
            if entry in seen:
                yield self.finding(
                    module, line, f"duplicate __all__ entry `{entry}`")
            seen.add(entry)
        defined = _defined_names(module)
        for entry in declared:
            if entry not in defined:
                yield self.finding(
                    module, line,
                    f"__all__ entry `{entry}` does not resolve to any "
                    "import or definition in the package")
        if not require_reexports:
            return
        for node in module.tree.body:
            if not (isinstance(node, ast.ImportFrom) and node.module
                    and node.module.split(".")[0] == "repro"):
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                if not bound.startswith("_") and bound not in seen:
                    yield self.finding(
                        module, node.lineno,
                        f"`{bound}` is imported from `{node.module}` but "
                        "missing from __all__; export it or alias it with "
                        "a leading underscore")

    def _check_packages_manifest(self, project: ProjectContext,
                                 exports: dict[str, list[str]],
                                 config: LintConfig) -> Iterable[Finding]:
        assert project.repo_root is not None
        test_path = project.repo_root / config.api_packages_test
        if not test_path.is_file():
            return
        try:
            tree = ast.parse(test_path.read_text())
        except SyntaxError as error:
            yield self.finding(config.api_packages_test, error.lineno or 1,
                               f"cannot parse API test: {error.msg}")
            return
        listed: list[str] = []
        line = 1
        for node in tree.body:
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "PACKAGES"
                            for t in node.targets)
                    and isinstance(node.value, (ast.List, ast.Tuple))):
                line = node.lineno
                listed = [e.value for e in node.value.elts
                          if isinstance(e, ast.Constant)
                          and isinstance(e.value, str)]
        if not listed:
            return
        shallow = {name for name in exports
                   if name.count(".") <= config.api_packages_max_depth}
        for package in listed:
            if package not in exports:
                yield self.finding(
                    config.api_packages_test, line,
                    f"PACKAGES lists `{package}` but no such package (with "
                    "an __all__) exists under the scan root")
        for package in sorted(shallow):
            if package not in listed:
                yield self.finding(
                    config.api_packages_test, line,
                    f"package `{package}` is missing from the PACKAGES "
                    "manifest, so the public-API test never covers it")

    def _check_docs(self, project: ProjectContext,
                    exports: dict[str, list[str]],
                    config: LintConfig) -> Iterable[Finding]:
        assert project.repo_root is not None
        for doc_rel in config.api_doc_paths:
            doc_path = project.repo_root / doc_rel
            if not doc_path.is_file():
                continue
            for lineno, line in enumerate(
                    doc_path.read_text().splitlines(), start=1):
                match = _DOC_IMPORT.match(line.strip())
                if match is None:
                    continue
                package, names = match.groups()
                declared = exports.get(package)
                if declared is None:
                    continue  # import from a plain module, not a package
                for raw in names.replace("(", "").replace(")", "").split(","):
                    name = raw.split(" as ")[0].strip()
                    if name and name not in declared:
                        yield self.finding(
                            doc_rel, lineno,
                            f"doc imports `{name}` from `{package}` but it "
                            "is not in that package's __all__")
