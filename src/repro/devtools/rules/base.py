"""Rule interface and the contexts rules receive.

A rule sees either one parsed module at a time (:meth:`Rule.check_module`)
or the whole project at once (:meth:`Rule.check_project`) for cross-file
invariants such as protocol conformance and public-API consistency.  Rules
yield :class:`~repro.devtools.findings.Finding` objects; the engine decides
suppression afterwards, so rules never need to look at comments.
"""

from __future__ import annotations

import ast
from abc import ABC
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Iterator

from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding


@dataclass
class ModuleContext:
    """One parsed Python file plus its lint-relevant metadata."""

    path: Path
    #: POSIX path relative to the scan root, e.g. ``repro/core/fcat.py``.
    relpath: str
    source: str
    tree: ast.Module
    #: line -> rule names that ``# repro: allow-<rule>`` comments cover.
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def is_package_init(self) -> bool:
        return self.relpath.endswith("__init__.py")

    @property
    def dotted_name(self) -> str:
        """``repro/sim/__init__.py`` -> ``repro.sim``; modules keep stems."""
        parts = self.relpath[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


@dataclass
class ProjectContext:
    """All modules of one scan, plus where the repository itself lives."""

    #: The scan root the relpaths hang off (typically ``src``).
    root: Path
    modules: list[ModuleContext]
    #: Directory containing ``pyproject.toml``; None when scanning a bare
    #: fixture tree, which disables the repo-level (docs/tests) checks.
    repo_root: Path | None = None

    def package_inits(self) -> Iterator[ModuleContext]:
        for module in self.modules:
            if module.is_package_init:
                yield module


class Rule(ABC):
    """Base class every lint rule registers under a unique ``name``."""

    name: ClassVar[str]
    description: ClassVar[str]

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        return ()

    def finding(self, module_or_path: ModuleContext | str, line: int,
                message: str) -> Finding:
        path = (module_or_path.relpath
                if isinstance(module_or_path, ModuleContext)
                else module_or_path)
        return Finding(path=path, line=line, rule=self.name, message=message)
