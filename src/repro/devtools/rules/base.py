"""Rule interface and the contexts rules receive.

A rule sees either one parsed module at a time (:meth:`Rule.check_module`)
or the whole project at once (:meth:`Rule.check_project`) for cross-file
invariants.  Project rules get both the parsed modules *and* the pass-1
:class:`~repro.devtools.index.ProjectIndex` (symbol tables, signatures with
quantity kinds, call records) on ``project.index``.  Rules yield
:class:`~repro.devtools.findings.Finding` objects; the engine decides
suppression and baselining afterwards, so rules never look at comments.

Module ASTs are parsed lazily: on a warm cache run, pass 1 is replayed from
the cache and a module's ``tree`` is only materialized if a project rule
actually touches it.
"""

from __future__ import annotations

import ast
from abc import ABC
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, TYPE_CHECKING

from repro.devtools.config import LintConfig
from repro.devtools.findings import SEVERITY_ERROR, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.devtools.index import ProjectIndex


class ModuleContext:
    """One Python file plus its lint-relevant metadata.

    ``tree`` parses on first access.  Cache-hit modules skip eager parsing;
    they parsed cleanly when the entry was written and the content hash
    guarantees the source is unchanged, so lazy parsing cannot fail where
    eager parsing would have succeeded.
    """

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module | None = None,
                 suppressions: dict[int, set[str]] | None = None) -> None:
        self.path = path
        #: POSIX path relative to the scan root, e.g. ``repro/core/fcat.py``.
        self.relpath = relpath
        self.source = source
        self._tree = tree
        #: line -> rule names that ``# repro: allow-<rule>`` comments cover.
        self.suppressions: dict[int, set[str]] = suppressions or {}

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    @property
    def is_parsed(self) -> bool:
        return self._tree is not None

    @property
    def is_package_init(self) -> bool:
        return self.relpath.endswith("__init__.py")

    @property
    def dotted_name(self) -> str:
        """``repro/sim/__init__.py`` -> ``repro.sim``; modules keep stems."""
        parts = self.relpath[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


class ProjectContext:
    """All modules of one scan, plus where the repository itself lives."""

    def __init__(self, root: Path, modules: list[ModuleContext],
                 repo_root: Path | None = None,
                 index: "ProjectIndex | None" = None) -> None:
        #: The scan root the relpaths hang off (typically ``src``).
        self.root = root
        self.modules = modules
        #: Directory containing ``pyproject.toml``; None when scanning a bare
        #: fixture tree, which disables the repo-level (docs/tests) checks.
        self.repo_root = repo_root
        #: Pass-1 whole-program index; always present after engine builds.
        self.index = index

    def package_inits(self) -> Iterator[ModuleContext]:
        for module in self.modules:
            if module.is_package_init:
                yield module

    def module_at(self, relpath: str) -> ModuleContext | None:
        for module in self.modules:
            if module.relpath == relpath or \
                    module.relpath.endswith("/" + relpath):
                return module
        return None


class Rule(ABC):
    """Base class every lint rule registers under a unique ``name``."""

    name: ClassVar[str]
    description: ClassVar[str]

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        return ()

    def finding(self, module_or_path: ModuleContext | str, line: int,
                message: str, severity: str = SEVERITY_ERROR) -> Finding:
        path = (module_or_path.relpath
                if isinstance(module_or_path, ModuleContext)
                else module_or_path)
        return Finding(path=path, line=line, rule=self.name, message=message,
                       severity=severity)
