"""R5 -- units/dimension analysis.

``air/timing.py`` hands out seconds, protocols count slots, announcement
budgets are bits; all three are plain floats/ints at runtime, so a mixed-up
argument (guard *time* where a bit *count* belongs) changes Table I without
any exception.  Names are classified into quantity kinds by the conventions
and registry in :mod:`repro.devtools.units`; this module flags the two
provable mistakes:

* ``units-arithmetic`` (per module): ``+``/``-`` whose operands have
  *different* hard kinds -- adding seconds to bits never means anything.
* ``units-call`` (whole program): a call argument whose inferred kind
  contradicts the callee parameter's kind, resolved through the pass-1
  project index (aliases, ``self``-methods, annotated receivers, dataclass
  constructors).  Probability-typed parameters reject hard-kind arguments
  too: a duration is never a report probability.

Only provable mismatches fire; unclassified names never do.  When a name's
convention-derived kind is wrong, register the true kind in
``repro/devtools/units.py`` instead of suppressing.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.devtools.config import LintConfig, path_has_dir
from repro.devtools.findings import Finding
from repro.devtools.index import (
    ArgInfo,
    Callee,
    CallInfo,
    FunctionInfo,
    ModuleIndex,
    kind_of_expr,
)
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register
from repro.devtools.units import HARD_KINDS, kind_of_qualified

import ast


def _in_units_scope(relpath: str, config: LintConfig) -> bool:
    return any(path_has_dir(relpath, d) for d in config.units_dirs)


@register
class UnitsArithmetic(Rule):
    """No ``+``/``-`` across different quantity kinds."""

    name = "units-arithmetic"
    description = ("adding or subtracting different quantity kinds "
                   "(seconds/bits/slots) is a dimension error; convert "
                   "explicitly via the timing model")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        if not _in_units_scope(module.relpath, config):
            return
        for scope_name, scope, param_kinds in _function_scopes(module):
            mismatches: list[tuple[ast.BinOp, str, str]] = []
            for statement in scope:
                for expr in _statement_exprs(statement):
                    kind_of_expr(expr, param_kinds, mismatches)
            for node, left, right in mismatches:
                operator = "+" if isinstance(node.op, ast.Add) else "-"
                yield self.finding(
                    module, node.lineno,
                    f"`{ast.unparse(node)}` mixes {left} {operator} {right}"
                    f" in `{scope_name}`; operands of +/- must share a "
                    "quantity kind")


def _function_scopes(module: ModuleContext) -> Iterator[
        tuple[str, list[ast.stmt], dict[str, str | None]]]:
    """Yield (name, body, param kinds) per function/method, plus module."""
    dotted = module.dotted_name
    top_level = [node for node in module.tree.body
                 if not isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef))]
    if top_level:
        yield "<module>", top_level, {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node.body, _param_kinds(dotted, node.name, node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{item.name}"
                    yield (qualname, item.body,
                           _param_kinds(dotted, qualname, item))


def _param_kinds(dotted: str, qualname: str,
                 node: ast.FunctionDef | ast.AsyncFunctionDef
                 ) -> dict[str, str | None]:
    kinds: dict[str, str | None] = {}
    args = node.args
    for param in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if param.arg in ("self", "cls"):
            continue
        kinds[param.arg] = kind_of_qualified(
            f"{dotted}.{qualname}.{param.arg}")
    return kinds


def _statement_exprs(statement: ast.stmt) -> Iterator[ast.expr]:
    """Top-level expressions of one statement (bodies handled separately).

    Nested function/class definitions are *not* descended into here; their
    bodies come back through :func:`_function_scopes` or, for closures, are
    walked with the enclosing function's parameter kinds.
    """
    for node in ast.iter_child_nodes(statement):
        if isinstance(node, ast.expr):
            yield node
        elif isinstance(node, ast.stmt):
            yield from _statement_exprs(node)


@register
class UnitsCallArguments(Rule):
    """Call arguments must match the callee parameter's quantity kind."""

    name = "units-call"
    description = ("an argument whose quantity kind (seconds/bits/slots) "
                   "contradicts the callee parameter's kind is a "
                   "cross-module dimension error")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        index = project.index
        if index is None:
            return
        for module, function in index.all_functions():
            if not _in_units_scope(module.relpath, config):
                continue
            for call in function.calls:
                candidates = index.resolve_call(module, function, call)
                yield from self._check_call(module, call, candidates)

    def _check_call(self, module: ModuleIndex, call: CallInfo,
                    candidates: list[Callee]) -> Iterator[Finding]:
        verdicts: list[list[tuple[str, str, str | None]]] = []
        for callee in candidates:
            mismatches = list(_call_mismatches(call, callee.function))
            if callee.name_based and len(candidates) > 1 and not mismatches:
                # Several same-named methods and at least one accepts the
                # call: give the call the benefit of the doubt.
                return
            verdicts.append(mismatches)
        if not verdicts:
            return
        # With several candidates, only report mismatches every candidate
        # agrees on (pure name-based matches can be the wrong function).
        agreed = verdicts[0]
        for other in verdicts[1:]:
            agreed = [entry for entry in agreed if entry in other]
        for param_name, arg_kind, param_kind in agreed:
            target = candidates[0].function.qualname
            expected = param_kind or "a probability in [0, 1]"
            yield self.finding(
                module.relpath, call.lineno,
                f"`{call.raw}(...)` passes a {arg_kind}-kind value to "
                f"parameter `{param_name}` of `{target}`, which expects "
                f"{expected}")


def _call_mismatches(call: CallInfo, callee: FunctionInfo
                     ) -> Iterator[tuple[str, str, str | None]]:
    """(param, arg kind, param kind) per provable kind contradiction."""
    positional = [p for p in callee.params if not p.kwonly]
    pairs: list[tuple[str, ArgInfo]] = []
    if not call.has_star and not callee.has_varargs:
        for param, arg in zip(positional, call.args):
            pairs.append((param.name, arg))
    for name, arg in call.kwargs.items():
        param = callee.param(name)
        if param is not None:
            pairs.append((name, arg))
    for name, arg in pairs:
        param = callee.param(name)
        if param is None or arg.kind is None:
            continue
        if arg.kind not in HARD_KINDS:
            continue
        if param.kind in HARD_KINDS and param.kind != arg.kind:
            yield (name, arg.kind, param.kind)
        elif param.probability:
            yield (name, arg.kind, None)
