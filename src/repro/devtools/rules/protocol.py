"""R2 -- protocol conformance.

Every Table I-IV comparison assumes all protocols run the *same* read
session: one population in, one :class:`ReadingResult` out, randomness and
channel effects injected through the same parameters.  A baseline that
drifts from the shared ``read_all`` contract silently stops being
comparable, so this rule checks the signature of every
``TagReadingProtocol`` subclass in the protocol directories.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.devtools.config import LintConfig, path_has_dir
from repro.devtools.findings import Finding
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register


@dataclass
class _ClassInfo:
    module: ModuleContext
    node: ast.ClassDef
    bases: tuple[str, ...]
    in_protocol_dir: bool

    def method(self, name: str) -> ast.FunctionDef | None:
        for item in self.node.body:
            if isinstance(item, ast.FunctionDef) and item.name == name:
                return item
        return None


def _base_names(node: ast.ClassDef) -> tuple[str, ...]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


@register
class ProtocolConformance(Rule):
    """Protocol classes must implement the shared read-session interface."""

    name = "protocol-conformance"
    description = ("every TagReadingProtocol subclass in baselines/ and "
                   "core/ must define read_all(self, population, rng, "
                   "channel=..., timing=..., [trace=...])")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        classes: dict[str, _ClassInfo] = {}
        for module in project.modules:
            in_dir = any(path_has_dir(module.relpath, d)
                         for d in config.protocol_dirs)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = _ClassInfo(
                        module=module, node=node, bases=_base_names(node),
                        in_protocol_dir=in_dir)

        def is_protocol(name: str, seen: frozenset[str] = frozenset()) -> bool:
            if name == config.protocol_base:
                return True
            info = classes.get(name)
            if info is None or name in seen:
                return False
            return any(is_protocol(base, seen | {name})
                       for base in info.bases)

        def inherited_read_all(info: _ClassInfo) -> ast.FunctionDef | None:
            """The read_all this class actually uses, walking its bases."""
            own = info.method(config.protocol_method)
            if own is not None:
                return own
            for base in info.bases:
                if base == config.protocol_base:
                    continue  # the ABC only holds the abstract stub
                parent = classes.get(base)
                if parent is not None:
                    found = inherited_read_all(parent)
                    if found is not None:
                        return found
            return None

        for name, info in sorted(classes.items()):
            if not info.in_protocol_dir or name == config.protocol_base:
                continue
            if not any(is_protocol(base) for base in info.bases):
                continue
            own = info.method(config.protocol_method)
            if own is None:
                if inherited_read_all(info) is None:
                    yield self.finding(
                        info.module, info.node.lineno,
                        f"protocol class `{name}` neither defines nor "
                        f"inherits `{config.protocol_method}`")
                continue
            yield from self._check_signature(info, own, config)

    def _check_signature(self, info: _ClassInfo, func: ast.FunctionDef,
                         config: LintConfig) -> Iterable[Finding]:
        qualname = f"{info.node.name}.{func.name}"
        args = func.args
        if args.vararg is not None or args.kwarg is not None:
            yield self.finding(
                info.module, func.lineno,
                f"`{qualname}` must not take *args/**kwargs; the read "
                "contract is explicit")
        positional = [param.arg for param in (*args.posonlyargs, *args.args)]
        required = list(config.protocol_required_params)
        if positional[:len(required)] != required:
            expected = ", ".join(required)
            yield self.finding(
                info.module, func.lineno,
                f"`{qualname}` must start with ({expected}); got "
                f"({', '.join(positional) or 'nothing'})")
            return
        allowed = set(config.protocol_optional_params)
        extras = positional[len(required):] + [p.arg for p in args.kwonlyargs]
        for extra in extras:
            if extra not in allowed:
                yield self.finding(
                    info.module, func.lineno,
                    f"`{qualname}` adds non-contract parameter `{extra}` "
                    f"(allowed extras: {', '.join(sorted(allowed))})")
        # Every parameter beyond the required triple needs a default so all
        # protocols stay callable as read_all(population, rng).
        n_extra_positional = len(positional) - len(required)
        if n_extra_positional > len(args.defaults):
            yield self.finding(
                info.module, func.lineno,
                f"`{qualname}` has extra positional parameters without "
                "defaults; sessions must run as read_all(population, rng)")
        for param, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is None:
                yield self.finding(
                    info.module, func.lineno,
                    f"`{qualname}` keyword-only parameter `{param.arg}` "
                    "needs a default")
