"""R6 -- probability-domain interval analysis.

The protocols thread report probabilities (``p_i = omega / N_i``) through
many layers -- config objects, estimator state, channel models, sampling
helpers.  A single value outside ``[0, 1]`` does not crash anything; numpy
happily draws ``binomial(n, 1.3)``-adjacent nonsense out of downstream
arithmetic, and the session quietly stops matching Eq. 10/12.  This family
propagates *provable* value intervals (literals, arithmetic over literals
and module constants, ``min``/``max`` envelopes -- see
:mod:`repro.devtools.intervals`) and flags any value that cannot be a
probability yet flows into a probability-named slot:

* ``probability-domain`` (per module): literal defaults of
  probability-named parameters and dataclass fields, and assignments of
  provably out-of-range values to probability-named locals/attributes.
* ``probability-call`` (whole program): call arguments provably outside
  ``[0, 1]`` passed to probability-named parameters anywhere in the
  project, resolved through the pass-1 index.

Unknown intervals never fire; this is a one-sided, zero-false-positive
check by construction (modulo what "probability-named" catches -- see
``repro.devtools.units.is_probability_name``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding
from repro.devtools.intervals import (
    Interval,
    interval_of_expr,
    provably_outside_unit,
)
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register
from repro.devtools.units import is_probability_name


def _format(interval: Interval) -> str:
    if interval[0] == interval[1]:
        return f"{interval[0]:g}"
    return f"[{interval[0]:g}, {interval[1]:g}]"


@register
class ProbabilityDomain(Rule):
    """Probability-named values must stay provably inside [0, 1]."""

    name = "probability-domain"
    description = ("a probability-named parameter default, field default "
                   "or assignment provably outside [0, 1] corrupts every "
                   "downstream draw")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        constants = _module_constants(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node, constants)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_fields(module, node, constants)
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(module, node, constants)

    def _check_defaults(self, module: ModuleContext,
                        node: ast.FunctionDef | ast.AsyncFunctionDef,
                        constants: dict[str, Interval]
                        ) -> Iterator[Finding]:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        defaults: list[ast.expr | None] = [None] * (
            len(positional) - len(args.defaults)) + list(args.defaults)
        pairs = list(zip(positional, defaults)) \
            + list(zip(args.kwonlyargs, args.kw_defaults))
        for param, default in pairs:
            if default is None or not is_probability_name(param.arg):
                continue
            interval = interval_of_expr(default, constants)
            if interval is not None and provably_outside_unit(interval):
                yield self.finding(
                    module, default.lineno,
                    f"`{node.name}` defaults probability parameter "
                    f"`{param.arg}` to {_format(interval)}, outside [0, 1]")

    def _check_fields(self, module: ModuleContext, node: ast.ClassDef,
                      constants: dict[str, Interval]) -> Iterator[Finding]:
        for item in node.body:
            if not (isinstance(item, ast.AnnAssign) and item.value is not None
                    and isinstance(item.target, ast.Name)):
                continue
            if not is_probability_name(item.target.id):
                continue
            interval = interval_of_expr(item.value, constants)
            if interval is not None and provably_outside_unit(interval):
                yield self.finding(
                    module, item.lineno,
                    f"field `{node.name}.{item.target.id}` defaults to "
                    f"{_format(interval)}, outside [0, 1]")

    def _check_assign(self, module: ModuleContext, node: ast.Assign,
                      constants: dict[str, Interval]) -> Iterator[Finding]:
        names = []
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, ast.Attribute):
                names.append(target.attr)
        if not any(is_probability_name(name) for name in names):
            return
        interval = interval_of_expr(node.value, constants)
        if interval is not None and provably_outside_unit(interval):
            name = next(n for n in names if is_probability_name(n))
            yield self.finding(
                module, node.lineno,
                f"probability `{name}` is assigned {_format(interval)}, "
                "outside [0, 1]")


def _module_constants(tree: ast.Module) -> dict[str, Interval]:
    constants: dict[str, Interval] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            interval = interval_of_expr(node.value, constants)
            if interval is not None:
                constants[node.targets[0].id] = interval
    return constants


@register
class ProbabilityCallArguments(Rule):
    """No provably out-of-range value may reach a probability parameter."""

    name = "probability-call"
    description = ("a call argument provably outside [0, 1] flowing into a "
                   "probability-named parameter (e.g. the p_i plumbing) "
                   "silently corrupts the session")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        index = project.index
        if index is None:
            return
        for module, function in index.all_functions():
            for call in function.calls:
                candidates = index.resolve_call(module, function, call)
                if not candidates:
                    continue
                yield from self._check_call(module, call, candidates)

    def _check_call(self, module, call, candidates) -> Iterator[Finding]:
        verdicts = []
        for callee in candidates:
            bad = []
            positional = [p for p in callee.function.params if not p.kwonly]
            pairs = []
            if not call.has_star and not callee.function.has_varargs:
                pairs.extend((param, arg) for param, arg
                             in zip(positional, call.args))
            for name, arg in call.kwargs.items():
                param = callee.function.param(name)
                if param is not None:
                    pairs.append((param, arg))
            for param, arg in pairs:
                if param.probability and arg.interval is not None \
                        and provably_outside_unit(arg.interval):
                    bad.append((param.name, arg.interval))
            if not bad and callee.name_based and len(candidates) > 1:
                return  # some same-named method accepts the value
            verdicts.append(bad)
        agreed = verdicts[0]
        for other in verdicts[1:]:
            agreed = [entry for entry in agreed if entry in other]
        for param_name, interval in agreed:
            yield self.finding(
                module.relpath, call.lineno,
                f"`{call.raw}(...)` passes {_format(interval)} to "
                f"probability parameter `{param_name}` of "
                f"`{candidates[0].function.qualname}`; probabilities must "
                "lie in [0, 1]")
