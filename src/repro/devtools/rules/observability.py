"""R9 -- event-schema conformance for the observability stream.

:mod:`repro.obs.events` validates every emitted event at runtime against
``EVENT_SCHEMA`` -- but only on runs where observability is switched on.
An instrumentation call site with a typo'd event name or a drifted field
set therefore ships silently and only explodes (or worse, records garbage)
on the first ``--metrics-out`` run that exercises it.  This rule moves the
check to lint time:

* every ``*.emit("name", ...)`` call with a constant string name, anywhere
  in the tree outside the schema module itself, must name a key of the
  ``EVENT_SCHEMA`` dict literal;
* when the call passes only plain keyword arguments (no ``**kwargs``),
  their names must be exactly the declared field set of that event.

Calls whose event name is not a string constant (the forwarding shims in
``obs.scope``, the ``EventStream.emit`` definition) are out of scope --
they re-validate at runtime anyway.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.config import LintConfig, path_matches
from repro.devtools.findings import Finding
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register


@register
class EventSchema(Rule):
    """Every constant-name ``emit()`` call must match ``EVENT_SCHEMA``."""

    name = "event-schema"
    description = ("every event name emitted through repro.obs must be "
                   "declared in the EVENT_SCHEMA registry, with keyword "
                   "fields matching the declared spec, so telemetry call "
                   "sites cannot drift from the schema they are validated "
                   "against at runtime")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        schema_module = project.module_at(config.event_schema_module)
        if schema_module is None:
            return
        schema = self._schema_fields(schema_module, config)
        if schema is None:
            yield self.finding(
                schema_module, 1,
                f"`{config.event_schema_registry}` in "
                f"{config.event_schema_module} is not a dict literal with "
                "constant string keys; the event schema must be statically "
                "readable")
            return
        for module in project.modules:
            if path_matches(module.relpath, config.event_schema_module):
                continue  # the schema module validates itself at runtime
            yield from self._check_module(module, schema, config)

    @staticmethod
    def _schema_fields(module: ModuleContext, config: LintConfig
                       ) -> dict[str, set[str] | None] | None:
        """Event name -> declared field names (None: not statically known).

        Accepts both ``EVENT_SCHEMA = {...}`` and the annotated form; values
        built by a ``**kwargs`` helper (``_spec(protocol="str", ...)``)
        contribute their keyword names as the field set.
        """
        for node in module.tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not (isinstance(target, ast.Name)
                    and target.id == config.event_schema_registry):
                continue
            if not isinstance(value, ast.Dict):
                return None
            schema: dict[str, set[str] | None] = {}
            for key, spec in zip(value.keys, value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    return None
                fields: set[str] | None = None
                if isinstance(spec, ast.Call) \
                        and all(kw.arg is not None for kw in spec.keywords):
                    fields = {kw.arg for kw in spec.keywords
                              if kw.arg is not None}
                schema[key.value] = fields
            return schema
        return None

    def _check_module(self, module: ModuleContext,
                      schema: dict[str, set[str] | None],
                      config: LintConfig) -> Iterable[Finding]:
        if ".emit(" not in module.source:
            return  # don't parse modules that cannot have a call site
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            name = node.args[0].value
            if name not in schema:
                yield self.finding(
                    module, node.lineno,
                    f"emit of undeclared event {name!r}; declare it in "
                    f"`{config.event_schema_registry}` "
                    f"({config.event_schema_module}) or fix the name")
                continue
            declared = schema[name]
            if declared is None or len(node.args) > 1 \
                    or any(kw.arg is None for kw in node.keywords):
                continue  # **kwargs or positional fields: runtime's job
            passed = {kw.arg for kw in node.keywords if kw.arg is not None}
            missing = sorted(declared - passed)
            extra = sorted(passed - declared)
            if missing or extra:
                detail = "; ".join(
                    part for part in (
                        f"missing {missing}" if missing else "",
                        f"undeclared {extra}" if extra else "") if part)
                yield self.finding(
                    module, node.lineno,
                    f"event {name!r} emitted with fields that drift from "
                    f"its declared spec: {detail}")
