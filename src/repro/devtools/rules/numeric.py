"""R3 -- numeric hygiene.

Collision-recovery results live and die on slot bookkeeping thresholds
(report probabilities, SNR cutoffs, estimator corrections).  Exact float
equality makes those comparisons platform- and optimisation-dependent, and
mutable default arguments leak state between the independent Monte-Carlo
runs the paper averages over.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.config import LintConfig, path_has_dir
from repro.devtools.findings import Finding
from repro.devtools.rules.base import ModuleContext, Rule
from repro.devtools.rules.registry import register

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


@register
class FloatEquality(Rule):
    """No ``==``/``!=`` against float literals in the numeric directories."""

    name = "float-equality"
    description = ("exact equality against a float literal in phy/, "
                   "analysis/ or core/ is platform-dependent; use an "
                   "inequality or math.isclose")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        if not any(path_has_dir(module.relpath, d)
                   for d in config.float_equality_dirs):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[index], operands[index + 1])
                if any(isinstance(side, ast.Constant)
                       and isinstance(side.value, float) for side in pair):
                    yield self.finding(
                        module, node.lineno,
                        f"float-literal equality `{ast.unparse(node)}`; "
                        "use >=/<= or math.isclose")


@register
class MutableDefault(Rule):
    """No mutable default arguments anywhere in ``src/``."""

    name = "mutable-default"
    description = ("mutable default arguments persist across calls and "
                   "leak state between Monte-Carlo runs; default to None "
                   "or a tuple")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = [*node.args.defaults,
                        *(d for d in node.args.kw_defaults if d is not None)]
            for default in defaults:
                mutable = isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS)
                if mutable:
                    where = (f"`{node.name}`"
                             if not isinstance(node, ast.Lambda)
                             else "lambda")
                    yield self.finding(
                        module, default.lineno,
                        f"{where} has mutable default "
                        f"`{ast.unparse(default)}`; use None (or a tuple) "
                        "and build inside the body")
