"""R1 -- determinism rules.

The paper's headline numbers (Tables I-IV) are Monte-Carlo averages; they are
only reproducible if every draw flows from one seed through explicitly
threaded :class:`numpy.random.Generator` objects.  These rules ban the three
ways hidden global randomness sneaks in (the stdlib ``random`` module, the
legacy ``np.random.*`` global state, and ad-hoc ``default_rng()``
construction) and require ``rng`` parameters to be annotated so the contract
stays visible in every signature.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.config import LintConfig, path_matches
from repro.devtools.findings import Finding
from repro.devtools.rules.base import ModuleContext, Rule
from repro.devtools.rules.registry import register


def dotted_name(node: ast.expr) -> str | None:
    """``np.random.default_rng`` -> that string; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _numpy_random_attr(func: ast.expr) -> str | None:
    """Return ``<fn>`` when ``func`` spells ``np.random.<fn>``/``numpy.random.<fn>``."""
    name = dotted_name(func)
    if name is None:
        return None
    head, _, attr = name.rpartition(".")
    if head in ("np.random", "numpy.random"):
        return attr
    return None


def _walk_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class NoImportRandom(Rule):
    """Ban the stdlib ``random`` module anywhere in ``src/``."""

    name = "no-import-random"
    description = ("stdlib `random` uses hidden global state; draw from an "
                   "explicitly threaded np.random.Generator instead")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random":
                        yield self.finding(
                            module, node.lineno,
                            "import of stdlib `random`; thread an explicit "
                            "`rng: np.random.Generator` instead")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root == "random":
                    yield self.finding(
                        module, node.lineno,
                        "import from stdlib `random`; thread an explicit "
                        "`rng: np.random.Generator` instead")


@register
class NoGlobalNumpyRandom(Rule):
    """Ban the legacy ``np.random.<draw>()`` global-state API."""

    name = "no-global-np-random"
    description = ("legacy np.random draw functions mutate process-global "
                   "state and break seeded reproducibility")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        benign = set(config.rng_benign_attrs)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _numpy_random_attr(node.func)
            if attr is not None and attr not in benign:
                yield self.finding(
                    module, node.lineno,
                    f"call to legacy global-state `np.random.{attr}()`; use "
                    "a method on an explicitly threaded Generator")


@register
class RngConstruction(Rule):
    """Confine ``default_rng``/``SeedSequence`` to the seed entry points."""

    name = "rng-construction"
    description = ("Generators may only be minted in the designated "
                   "seed-spawning entry points; everywhere else randomness "
                   "arrives as a parameter")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        if any(path_matches(module.relpath, entry)
               for entry in config.rng_entry_points):
            return
        factories = set(config.rng_factories)
        # Bare names count only when imported from numpy.random.
        imported: set[str] = set()
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.ImportFrom)
                    and node.module in ("numpy.random", "np.random")):
                for alias in node.names:
                    if alias.name in factories:
                        imported.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _numpy_random_attr(node.func)
            called = attr if attr in factories else None
            if (called is None and isinstance(node.func, ast.Name)
                    and node.func.id in imported):
                called = node.func.id
            if called is not None:
                entries = ", ".join(config.rng_entry_points)
                yield self.finding(
                    module, node.lineno,
                    f"`{called}(...)` outside the seed entry points "
                    f"({entries}); accept an `rng: np.random.Generator` "
                    "parameter or use repro.experiments.rng_from_seed")


@register
class RngParamAnnotated(Rule):
    """Every ``rng`` parameter must be annotated ``np.random.Generator``."""

    name = "rng-annotation"
    description = ("parameters named `rng` must carry the "
                   "np.random.Generator annotation so the determinism "
                   "contract is visible in every signature")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        accepted = set(config.rng_annotations)
        for func in _walk_functions(module.tree):
            args = func.args
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            for param in params:
                if param.arg != "rng":
                    continue
                annotation = (ast.unparse(param.annotation)
                              if param.annotation is not None else None)
                if annotation is not None:
                    # `Generator | None` is fine for optional randomness.
                    annotation = annotation.replace(" | None", "")
                if annotation not in accepted:
                    have = annotation or "no annotation"
                    yield self.finding(
                        module, func.lineno,
                        f"`{func.name}` takes `rng` with {have}; annotate "
                        "it `rng: np.random.Generator`")
