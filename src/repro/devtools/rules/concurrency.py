"""R10/R11 -- RNG order-sensitivity and fork-safety.

Both rules guard the parallel==serial bit-identity contract of the sweep
executor, from two directions.

**R10 (``rng-order``)** is per-module data-flow: values minted by
``default_rng``/``rng_from_seed``/``spawn_run_seeds`` are tracked through
the tag lattice of :mod:`repro.devtools.dataflow`, and a *draw* (any method
call on an RNG-tagged receiver) is flagged when its execution count or
order depends on something unordered -- iteration over a ``set`` or dict
view, or a loop bounded by a float-equality comparison.  A Generator
stored in a module global is flagged outright: its draw position becomes
shared mutable state between call sites.

**R11 (``fork-safety``)** is whole-program: every function reachable from
a worker entry point (``LintConfig.worker_roots``) runs on the far side of
a ``multiprocessing`` fork, where module globals are silently *copied*.  A
worker that writes one mutates its private copy -- the parent never sees
it, and results must instead flow back through ``ChunkOutcome``.  The rule
flags worker-reachable writes to module globals and reads of module-level
OS handles (open files, locks: shared kernel state that must not cross the
fork).  Audited globals are allow-listed in
``LintConfig.fork_safe_globals``.  Call-graph reachability is name-based
and over-approximate, which is the conservative direction here: nothing
that truly runs in a worker escapes the audit.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterable, Iterator

from repro.devtools.config import LintConfig
from repro.devtools.dataflow import (
    TAG_RNG,
    TAG_UNORDERED,
    TagFlow,
    stmt_use_exprs,
    tags_of_expr,
)
from repro.devtools.findings import Finding
from repro.devtools.index import ProjectIndex
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _float_compare(test: ast.expr) -> bool:
    """Does ``test`` hinge on ``==``/``!=`` against a float literal?"""
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(isinstance(operand, ast.Constant)
               and isinstance(operand.value, float)
               for operand in operands):
            return True
    return False


@register
class RngOrderSensitivity(Rule):
    """RNG draws must not depend on unordered iteration or float tests."""

    name = "rng-order"
    description = ("an RNG draw inside iteration over a set/dict view (or "
                   "a float-equality-bounded loop), or a Generator stored "
                   "in a module global, makes the draw sequence depend on "
                   "incidental ordering and breaks parallel==serial "
                   "bit-identity")

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        tree = module.tree
        yield from self._module_globals(module, tree)
        for func in ast.walk(tree):
            if isinstance(func, _FUNCTIONS):
                yield from self._check_function(module, func)

    # -- module-scope Generators -------------------------------------------

    def _module_globals(self, module: ModuleContext,
                        tree: ast.Module) -> Iterator[Finding]:
        env: dict[str, frozenset] = {}
        for node in tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            tags = tags_of_expr(value, env)
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    env[target.id] = tags
                    if TAG_RNG in tags:
                        yield self.finding(
                            module, node.lineno,
                            f"Generator stored in module global "
                            f"`{target.id}`: its draw position becomes "
                            "shared mutable state across call sites; mint "
                            "per run via rng_from_seed and pass it down")

    # -- per-function hazards ----------------------------------------------

    def _check_function(self, module: ModuleContext,
                        func: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> Iterator[Finding]:
        flow = TagFlow(func)
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        yield from self._walk(module, func.body, flow, hazards=[],
                              declared_global=declared_global)

    def _walk(self, module: ModuleContext, body: list[ast.stmt],
              flow: TagFlow, hazards: list[str],
              declared_global: set[str]) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, _FUNCTIONS):
                continue  # nested defs get their own TagFlow pass
            env = flow.at(stmt)
            yield from self._draws_in_stmt(module, stmt, env, hazards)
            yield from self._global_rng_store(module, stmt, env,
                                              declared_global)
            pushed = self._hazard_of(stmt, env)
            if pushed is not None:
                hazards.append(pushed)
            for child_body in self._bodies(stmt):
                yield from self._walk(module, child_body, flow, hazards,
                                      declared_global)
            if pushed is not None:
                hazards.pop()

    @staticmethod
    def _bodies(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(stmt, attr, None)
            if isinstance(body, list) and body \
                    and isinstance(body[0], ast.stmt):
                yield body
        for handler in getattr(stmt, "handlers", []):
            yield handler.body
        for case in getattr(stmt, "cases", []):
            yield case.body

    @staticmethod
    def _hazard_of(stmt: ast.stmt, env: dict) -> str | None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                and TAG_UNORDERED in tags_of_expr(stmt.iter, env):
            return "inside iteration over an unordered set/dict view"
        if isinstance(stmt, (ast.While, ast.If)) \
                and _float_compare(stmt.test):
            return ("under a float-equality comparison, so the draw count "
                    "depends on rounding")
        return None

    def _draws_in_stmt(self, module: ModuleContext, stmt: ast.stmt,
                       env: dict, hazards: list[str]) -> Iterator[Finding]:
        if not hazards:
            return
        for expr in stmt_use_exprs(stmt):
            for node in ast.walk(expr):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)):
                    continue
                receiver_tags = tags_of_expr(node.func.value, env)
                if TAG_RNG in receiver_tags:
                    yield self.finding(
                        module, node.lineno,
                        f"RNG draw `.{node.func.attr}(...)` {hazards[-1]}; "
                        "iterate a sorted/ordered sequence so every run "
                        "consumes draws in the same order")

    def _global_rng_store(self, module: ModuleContext, stmt: ast.stmt,
                          env: dict, declared_global: set[str]
                          ) -> Iterator[Finding]:
        if not declared_global or not isinstance(stmt, ast.Assign):
            return
        tags = tags_of_expr(stmt.value, env)
        if TAG_RNG not in tags:
            return
        for target in stmt.targets:
            if isinstance(target, ast.Name) \
                    and target.id in declared_global:
                yield self.finding(
                    module, stmt.lineno,
                    f"Generator rebound into module global `{target.id}` "
                    "(via a `global` declaration): draw order now depends "
                    "on call history; pass the Generator explicitly")


@register
class ForkSafety(Rule):
    """Worker-reachable code must not rely on module globals or handles."""

    name = "fork-safety"
    description = ("a function reachable from a pool worker entry point "
                   "that writes a module global (the parent never sees the "
                   "write) or reads a module-level OS handle (shared "
                   "kernel state across the fork) silently diverges from "
                   "the serial path; return state via ChunkOutcome or "
                   "allow-list it in LintConfig.fork_safe_globals")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        index = project.index
        if index is None:
            return
        roots = {root for root in config.worker_roots
                 if self._resolves(index, root)}
        if not roots:
            return
        reachable = self._reachable(index, roots)
        audited = set(config.fork_safe_globals)
        for module, function in index.all_functions():
            path = f"{module.dotted}:{function.qualname}"
            if path not in reachable:
                continue
            handles = set(module.handle_globals)
            for name, line, how in function.global_writes:
                if f"{module.dotted}:{name}" in audited:
                    continue
                verb = {"rebind": "rebinds", "mutate": "mutates in place",
                        "store": "stores into"}.get(how, "writes")
                yield self.finding(
                    module.relpath, line,
                    f"worker-reachable `{function.qualname}` {verb} module "
                    f"global `{name}`: after the fork this mutates a "
                    "worker-private copy the parent never observes; return "
                    "the state through ChunkOutcome and merge it in the "
                    "parent, or audit it in LintConfig.fork_safe_globals")
            for name, line in function.global_reads:
                if name not in handles \
                        or f"{module.dotted}:{name}" in audited:
                    continue
                yield self.finding(
                    module.relpath, line,
                    f"worker-reachable `{function.qualname}` uses module-"
                    f"level handle `{name}` (file/lock/queue): handles "
                    "duplicated across a fork share kernel state and "
                    "corrupt on concurrent use; open per worker instead")

    @staticmethod
    def _resolves(index: ProjectIndex, root: str) -> bool:
        dotted, _, qualname = root.partition(":")
        module = index.modules.get(dotted)
        return module is not None and qualname in module.functions

    @staticmethod
    def _reachable(index: ProjectIndex, roots: set[str]) -> set[str]:
        edges = index.call_graph()
        seen = set(roots)
        queue = deque(roots)
        while queue:
            source = queue.popleft()
            for target in edges.get(source, ()):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen
