"""R8 -- experiment-registry completeness.

Every reproduced table/figure lives in its own module under
``experiments/``; the CLI's ``EXPERIMENTS`` dict is how anyone (and CI)
actually runs them, and ``EXPERIMENTS.md`` is where the paper-vs-measured
comparison is recorded.  A ``fig7.py`` that never gets a CLI entry or a
doc section is an experiment that silently stops being reproduced.  This
rule pins the three surfaces to each other:

* every ``experiments/fig*.py`` / ``table*.py`` module must appear as a
  key of the CLI registry dict (matching key or ``<stem>-...`` variants);
* every such module must be mentioned in ``EXPERIMENTS.md`` (skipped for
  fixture trees without a repository root);
* every registry key must resolve to a callable defined or imported in the
  CLI module, so a renamed runner cannot leave a dangling entry.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.config import LintConfig, path_matches
from repro.devtools.findings import Finding
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register


@register
class ExperimentRegistry(Rule):
    """fig*/table* modules must be wired into the CLI and the docs."""

    name = "experiment-registry"
    description = ("every experiments/fig*.py and table*.py must be a key "
                   "of the CLI EXPERIMENTS registry and mentioned in "
                   "EXPERIMENTS.md, so no reproduced result can silently "
                   "drop out of the runnable set")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        experiment_modules = [
            module for module in project.modules
            if self._experiment_stem(module, config) is not None]
        if not experiment_modules:
            return
        cli = next((module for module in project.modules
                    if path_matches(module.relpath, config.experiment_cli)),
                   None)
        keys, registry_line = (None, 1)
        if cli is not None:
            keys, registry_line = self._registry_keys(cli, config)
            if keys is not None:
                yield from self._check_keys_resolve(cli, keys, registry_line,
                                                    config)
        doc_text = None
        if project.repo_root is not None:
            doc_path = project.repo_root / config.experiment_doc
            if doc_path.is_file():
                doc_text = doc_path.read_text(encoding="utf-8")
        for module in experiment_modules:
            stem = self._experiment_stem(module, config)
            assert stem is not None
            if keys is not None and not self._wired(stem, keys):
                yield self.finding(
                    module, 1,
                    f"experiment module `{stem}` has no entry in the "
                    f"`{config.experiment_registry}` registry of "
                    f"{config.experiment_cli}; it cannot be run from the "
                    "CLI")
            if doc_text is not None and stem not in doc_text:
                yield self.finding(
                    module, 1,
                    f"experiment `{stem}` is not mentioned in "
                    f"{config.experiment_doc}; record how its output "
                    "compares to the paper")

    @staticmethod
    def _experiment_stem(module: ModuleContext,
                         config: LintConfig) -> str | None:
        parts = module.relpath.split("/")
        if len(parts) < 2 or parts[-2] != "experiments":
            return None
        stem = parts[-1][: -len(".py")]
        for prefix in config.experiment_stem_prefixes:
            if stem.startswith(prefix) and stem != prefix:
                return stem
        return None

    @staticmethod
    def _wired(stem: str, keys: list[str]) -> bool:
        return any(key == stem or key.startswith(stem + "-")
                   for key in keys)

    @staticmethod
    def _registry_keys(cli: ModuleContext, config: LintConfig
                       ) -> tuple[list[str] | None, int]:
        for node in cli.tree.body:
            if not (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == config.experiment_registry
                            for t in node.targets)):
                continue
            if not isinstance(node.value, ast.Dict):
                return None, node.lineno
            keys = [key.value for key in node.value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)]
            return keys, node.lineno
        return None, 1

    def _check_keys_resolve(self, cli: ModuleContext, keys: list[str],
                            line: int, config: LintConfig
                            ) -> Iterable[Finding]:
        del keys  # values, not keys, are what must resolve
        defined: set[str] = set()
        for node in cli.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                defined.add(node.name)
            elif isinstance(node, ast.ImportFrom):
                defined.update(alias.asname or alias.name
                               for alias in node.names)
            elif isinstance(node, ast.Import):
                defined.update((alias.asname or alias.name).split(".")[0]
                               for alias in node.names)
        for node in cli.tree.body:
            if not (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == config.experiment_registry
                            for t in node.targets)
                    and isinstance(node.value, ast.Dict)):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                if not isinstance(key, ast.Constant):
                    continue
                root = value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and root.id not in defined:
                    yield self.finding(
                        cli, value.lineno,
                        f"registry entry `{key.value}` points at "
                        f"`{ast.unparse(value)}`, which is neither defined "
                        "nor imported in the CLI module")
