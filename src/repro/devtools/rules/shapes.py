"""R12 -- numpy shape/dtype contracts.

The rule is *contract-driven*: a ``# repro: shape(n, m) dtype=complex128``
comment declares what an array-valued name (or parameter, or return value)
must hold, and the inference of :mod:`repro.devtools.shapes` checks every
assignment, augmented assignment, return and -- through the pass-1 index
-- every call site against the declaration.  Without a contract nothing
fires, and unknown inference never conflicts, so the rule has no opinion
about unannotated code; with one, a complex128 residual silently flowing
into a float64 slot in ``phy/anc.py`` is a blocking finding instead of a
wrong decoded bit.

Per-module checks (``check_module``) verify the declaring module itself;
the cross-file check (``check_project``) walks exactly-resolved calls and
compares each argument's inferred :class:`ShapeInfo` against the callee
parameter's contract.  Name-based (ambiguous) call candidates are skipped:
a finding must be provable, not plausible.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register
from repro.devtools.shapes import (
    ShapeInfo,
    dims_conflict,
    dtype_conflict,
    infer_expr,
    parse_shape_contracts,
)

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


@register
class ShapeContract(Rule):
    """`# repro: shape(...)` declarations are enforced, not decorative."""

    name = "shape-contract"
    description = ("an assignment, return or call argument that provably "
                   "violates a `# repro: shape(...)` contract (dtype "
                   "widening, complex/real mixing, rank mismatch) changes "
                   "numerical results silently on the PHY hot paths")

    # -- per-module --------------------------------------------------------

    def check_module(self, module: ModuleContext,
                     config: LintConfig) -> Iterable[Finding]:
        contracts = parse_shape_contracts(module.source)
        if not contracts:
            return
        tree = module.tree
        numpy_names = self._numpy_names(tree)
        yield from self._check_body(module, tree.body, contracts,
                                    numpy_names, env={}, contracted={},
                                    return_contract=None)
        for func in ast.walk(tree):
            if isinstance(func, _FUNCTIONS):
                yield from self._check_function(module, func, contracts,
                                                numpy_names)

    @staticmethod
    def _numpy_names(tree: ast.Module) -> frozenset[str]:
        names = {"np", "numpy"}
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        names.add(alias.asname or "numpy")
        return frozenset(names)

    def _check_function(self, module: ModuleContext,
                        func: ast.FunctionDef | ast.AsyncFunctionDef,
                        contracts: dict[int, ShapeInfo],
                        numpy_names: frozenset[str]) -> Iterator[Finding]:
        env: dict[str, ShapeInfo] = {}
        contracted: dict[str, ShapeInfo] = {}
        for arg in [*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs]:
            if arg.lineno == func.lineno:
                continue  # a def-line contract belongs to the return value
            contract = contracts.get(arg.lineno)
            if contract is not None:
                env[arg.arg] = contract
                contracted[arg.arg] = contract
        yield from self._check_body(
            module, func.body, contracts, numpy_names, env=env,
            contracted=contracted,
            return_contract=contracts.get(func.lineno))

    def _check_body(self, module: ModuleContext, body: list[ast.stmt],
                    contracts: dict[int, ShapeInfo],
                    numpy_names: frozenset[str],
                    env: dict[str, ShapeInfo],
                    contracted: dict[str, ShapeInfo],
                    return_contract: ShapeInfo | None) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, _FUNCTIONS) or isinstance(stmt, ast.ClassDef):
                continue  # separate scope, separate pass
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                inferred = infer_expr(stmt.value, env, numpy_names)
                declared = contracts.get(stmt.lineno)
                if declared is not None:
                    contracted[name] = declared
                yield from self._conflicts(
                    module, stmt.lineno, contracted.get(name), inferred,
                    subject=f"assignment to `{name}`")
                known = contracted.get(name) or inferred
                if known is not None:
                    env[name] = known
                else:
                    env.pop(name, None)
            elif isinstance(stmt, ast.AugAssign) \
                    and isinstance(stmt.target, ast.Name):
                contract = contracted.get(stmt.target.id)
                inferred = infer_expr(stmt.value, env, numpy_names)
                yield from self._conflicts(
                    module, stmt.lineno, contract, inferred,
                    subject=f"augmented assignment to `{stmt.target.id}`",
                    dims=False)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                inferred = infer_expr(stmt.value, env, numpy_names)
                yield from self._conflicts(
                    module, stmt.lineno, return_contract, inferred,
                    subject="return value")
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(stmt, attr, None)
                if isinstance(child, list) and child \
                        and isinstance(child[0], ast.stmt):
                    yield from self._check_body(
                        module, child, contracts, numpy_names, env,
                        contracted, return_contract)
            for handler in getattr(stmt, "handlers", []):
                yield from self._check_body(
                    module, handler.body, contracts, numpy_names, env,
                    contracted, return_contract)

    def _conflicts(self, module: ModuleContext, lineno: int,
                   declared: ShapeInfo | None, inferred: ShapeInfo | None,
                   subject: str, dims: bool = True) -> Iterator[Finding]:
        if declared is None or inferred is None:
            return
        message = dtype_conflict(declared.dtype, inferred.dtype)
        if message is not None:
            yield self.finding(
                module, lineno,
                f"{subject} violates declared {declared.describe()}: "
                f"{message}")
        if dims:
            message = dims_conflict(declared.dims, inferred.dims)
            if message is not None:
                yield self.finding(
                    module, lineno,
                    f"{subject} violates declared {declared.describe()}: "
                    f"{message}")

    # -- cross-file call checking -----------------------------------------

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        index = project.index
        if index is None:
            return
        for module, function in index.all_functions():
            for call in function.calls:
                if call.has_star or call.has_star_kw:
                    continue
                candidates = index.resolve_call(module, function, call)
                if len(candidates) != 1 or candidates[0].name_based:
                    continue
                callee = candidates[0].function
                if callee.has_varargs or callee.has_kwargs:
                    continue
                pairs = list(zip(callee.params, call.args))
                by_name = {param.name: param for param in callee.params}
                pairs.extend(
                    (by_name[keyword], arg)
                    for keyword, arg in call.kwargs.items()
                    if keyword in by_name)
                for param, arg in pairs:
                    if param.shape_contract is None or arg.shape is None:
                        continue
                    yield from self._call_conflicts(
                        module.relpath, call.lineno, callee.name,
                        param, arg.shape)

    def _call_conflicts(self, relpath: str, lineno: int, callee: str,
                        param, shape: ShapeInfo) -> Iterator[Finding]:
        contract = param.shape_contract
        message = dtype_conflict(contract.dtype, shape.dtype) \
            or dims_conflict(contract.dims, shape.dims)
        if message is not None:
            yield self.finding(
                relpath, lineno,
                f"argument `{param.name}` of `{callee}(...)` violates its "
                f"declared {contract.describe()}: {message}")
