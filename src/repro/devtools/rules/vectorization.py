"""R13--R15 -- vectorization readiness.

The ROADMAP's batching item will rewrite the per-slot simulation loops
into array kernels.  These three families keep that rewrite honest before
and after it happens:

* **R13 (vectorization-antipattern, warning)** -- flags *hot* loops (the
  enclosing function is call-graph reachable from a BENCH entry point in
  ``LintConfig.hotspot_entry_points``) inside ``vectorization_dirs`` that
  are serially dependent or exhibit a numpy antipattern
  (:mod:`repro.devtools.dependence`).  Warnings, not errors: a serial
  protocol session is often *correct*, just slow -- the point is that the
  cost is visible and each instance carries an explicit
  ``# repro: allow-vectorization-antipattern`` rationale or gets fixed.
* **R14 (effect-contract, error)** -- checks ``# repro: pure`` /
  ``# repro: effects(...)`` comments against the interprocedural effect
  summaries (:mod:`repro.devtools.effects`).  A declared-pure batching
  candidate that silently grows a side effect fails the gate.
* **R15 (kernel-equivalence, error)** -- every vectorized kernel (name
  matches ``kernel_name_markers``, or the function carries a kernel
  contract) must register its scalar reference and an equivalence test::

      # repro: kernel scalar=repro.phy.anc:decode_residual test=tests/test_kernels.py
      def batched_decode_residual(...):

  The scalar reference must resolve in the project index and differ from
  the kernel itself; the test file must exist and mention the kernel by
  name (file checks are skipped for fixture trees without a repo root,
  mirroring R8).
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.config import LintConfig, path_has_dir
from repro.devtools.dependence import CLASS_SERIAL
from repro.devtools.effects import (
    ALL_EFFECTS,
    EffectAnalysis,
    parse_effect_contracts,
)
from repro.devtools.findings import SEVERITY_WARNING, Finding
from repro.devtools.hotspots import parse_kernel_contracts, reach_counts
from repro.devtools.rules.base import ModuleContext, ProjectContext, Rule
from repro.devtools.rules.registry import register


@register
class VectorizationAntipattern(Rule):
    """Hot loops that resist batching must be visible (and justified)."""

    name = "vectorization-antipattern"
    description = ("hot loops (reachable from a BENCH entry point) in "
                   "sim/core/phy that are serially dependent or hit a "
                   "numpy antipattern are flagged as warnings; each "
                   "instance is either vectorized or carries an explicit "
                   "allow-comment rationale")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        index = project.index
        if index is None:
            return
        reach = reach_counts(index, config)
        for module, info in index.all_functions():
            if not any(path_has_dir(module.relpath, directory)
                       for directory in config.vectorization_dirs):
                continue
            path = f"{module.dotted}:{info.qualname}"
            weight = reach.get(path, 0)
            if weight == 0:
                continue
            for loop in info.loops:
                notes = []
                if loop.classification == CLASS_SERIAL:
                    carried = ", ".join(f"`{name}`" for name in loop.carried)
                    notes.append("is serially dependent"
                                 + (f" (carried: {carried})" if carried
                                    else ""))
                if loop.antipatterns:
                    notes.append("hits numpy antipatterns: "
                                 + ", ".join(loop.antipatterns))
                if not notes:
                    continue
                yield self.finding(
                    module.relpath, loop.lineno,
                    f"hot {loop.kind} loop in `{info.qualname}` (reached "
                    f"from {weight} BENCH entry point"
                    f"{'s' if weight != 1 else ''}) {'; '.join(notes)}; "
                    "vectorize it or justify with an allow-comment",
                    severity=SEVERITY_WARNING)


@register
class EffectContract(Rule):
    """Declared purity/effect contracts must match the inferred summary."""

    name = "effect-contract"
    description = ("`# repro: pure` / `# repro: effects(...)` comments on "
                   "function definitions are checked against the "
                   "interprocedural effect analysis, so a batching "
                   "candidate cannot silently grow a side effect")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        del config
        index = project.index
        if index is None:
            return
        analysis: EffectAnalysis | None = None
        for module in project.modules:
            contracts = parse_effect_contracts(module.source)
            if not contracts:
                continue
            if analysis is None:
                analysis = EffectAnalysis(index)
            module_index = index.modules.get(module.dotted_name)
            by_line = {info.lineno: info
                       for info in module_index.functions.values()} \
                if module_index is not None else {}
            for line, declared in sorted(contracts.items()):
                info = by_line.get(line) or by_line.get(line + 1)
                if info is None:
                    yield self.finding(
                        module, line,
                        "effect contract is not attached to a function "
                        "definition (put it on the `def` line or the line "
                        "directly above)")
                    continue
                unknown = declared - ALL_EFFECTS
                if unknown:
                    yield self.finding(
                        module, line,
                        "effect contract names unknown effect(s) "
                        + ", ".join(f"`{name}`" for name in sorted(unknown))
                        + "; valid effects: "
                        + ", ".join(sorted(ALL_EFFECTS)))
                    continue
                assert module_index is not None
                path = f"{module_index.dotted}:{info.qualname}"
                inferred = analysis.summary(path)
                if declared != inferred:
                    yield self.finding(
                        module, line,
                        f"`{info.qualname}` declares "
                        f"{_describe(declared)} but the effect analysis "
                        f"infers {_describe(inferred)}; update the "
                        "contract or remove the effect")


def _describe(effects: frozenset[str]) -> str:
    if not effects:
        return "`pure`"
    return "effects(" + ", ".join(sorted(effects)) + ")"


@register
class KernelEquivalence(Rule):
    """Vectorized kernels must register a scalar reference and a test."""

    name = "kernel-equivalence"
    description = ("functions named like vectorized kernels (batched_* / "
                   "*_kernel) must carry a `# repro: kernel scalar=... "
                   "test=...` registration whose scalar reference resolves "
                   "in the index and whose equivalence test exists and "
                   "mentions the kernel")

    def check_project(self, project: ProjectContext,
                      config: LintConfig) -> Iterable[Finding]:
        index = project.index
        if index is None:
            return
        for module in project.modules:
            module_index = index.modules.get(module.dotted_name)
            if module_index is None:
                continue
            contracts, malformed = parse_kernel_contracts(module.source)
            for line, rest in malformed:
                yield self.finding(
                    module, line,
                    f"malformed kernel registration `# repro: kernel"
                    f"{rest.rstrip()}`; expected `# repro: kernel "
                    "scalar=<module:qualname> test=<relpath>`")
            by_line = {info.lineno: info
                       for info in module_index.functions.values()}
            claimed: set[int] = set()
            for line, (scalar, test) in sorted(contracts.items()):
                info = by_line.get(line) or by_line.get(line + 1)
                if info is None:
                    yield self.finding(
                        module, line,
                        "kernel registration is not attached to a function "
                        "definition (put it on the `def` line or the line "
                        "directly above)")
                    continue
                claimed.add(info.lineno)
                yield from self._check_registration(
                    project, module, module_index, info, line, scalar, test)
            for info in module_index.functions.values():
                if info.lineno in claimed:
                    continue
                if self._is_kernel_name(info.qualname,
                                        config.kernel_name_markers):
                    yield self.finding(
                        module, info.lineno,
                        f"`{info.qualname}` is named like a vectorized "
                        "kernel but has no scalar-reference registration; "
                        "add `# repro: kernel scalar=<module:qualname> "
                        "test=<relpath>` above its def")

    def _check_registration(self, project: ProjectContext,
                            module: ModuleContext, module_index,
                            info, line: int, scalar: str,
                            test: str) -> Iterable[Finding]:
        kernel_path = f"{module_index.dotted}:{info.qualname}"
        if scalar == kernel_path:
            yield self.finding(
                module, line,
                f"kernel `{info.qualname}` registers *itself* as the "
                "scalar reference; point `scalar=` at the un-batched "
                "implementation it must stay equivalent to")
        elif self._resolve(project.index, scalar) is None:
            yield self.finding(
                module, line,
                f"kernel `{info.qualname}` registers scalar reference "
                f"`{scalar}`, which does not resolve to an indexed "
                "function")
        if project.repo_root is None:
            return  # fixture tree: no files to check, mirroring R8
        test_path = project.repo_root / test
        if not test_path.is_file():
            yield self.finding(
                module, line,
                f"kernel `{info.qualname}` registers equivalence test "
                f"`{test}`, which does not exist")
            return
        simple = info.qualname.rpartition(".")[2]
        if simple not in test_path.read_text(encoding="utf-8"):
            yield self.finding(
                module, line,
                f"equivalence test `{test}` never mentions "
                f"`{simple}`; the registered test must actually "
                "exercise the kernel")

    @staticmethod
    def _resolve(index, scalar: str):
        dotted, _, qualname = scalar.partition(":")
        module = index.modules.get(dotted)
        if module is None:
            return None
        return module.functions.get(qualname)

    @staticmethod
    def _is_kernel_name(qualname: str, markers: tuple[str, ...]) -> bool:
        simple = qualname.rpartition(".")[2]
        for marker in markers:
            if marker.endswith("_") and not marker.startswith("_"):
                if simple.startswith(marker):
                    return True
            elif simple.endswith(marker):
                return True
        return False
