"""On-disk incremental cache for the lint engine.

Pass 1 (parse + suppression scan + per-module rules + module indexing) is
the bulk of a lint run and depends only on one file's bytes, so its outputs
are cached per content hash in a single JSON file (default:
``.repro-lint-cache.json`` next to ``pyproject.toml``; git-ignored).  A
warm run replays cached findings and module indexes without re-parsing
unchanged files; pass 2 (the cross-file rules) always runs live against the
assembled index.

Entries are invalidated by content hash; the whole cache is invalidated by
its *signature* -- a digest of the cache schema, the rule set and the lint
configuration -- so editing a rule or a config knob never replays stale
results.  Corrupt or unreadable cache files are treated as empty: the cache
can only ever make a run faster, never wrong.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.findings import Finding
from repro.devtools.index import ModuleIndex

#: Bump when the entry layout (or anything it captures) changes shape.
#: 3: def-use records, global access summaries and shape contracts joined
#: the per-module index.
#: 4: loop-carried dependence summaries, local effect facts, argument
#: roots and class bases joined the per-module index.
CACHE_SCHEMA = 4

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


def content_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rule_sources_digest(rules: Iterable[object]) -> str:
    """Digest of the source files defining the active rules.

    Cached findings were produced *by* rule code, so the whole-file cache
    signature must capture that code: editing a rule module alone (same
    rule names, same config) invalidates the cache.  Unlocatable sources
    (frozen interpreters) hash as their module name, which degrades to the
    old name-only behaviour instead of failing.
    """
    files: set[str] = set()
    for rule in rules:
        module = sys.modules.get(type(rule).__module__)
        path = getattr(module, "__file__", None)
        files.add(path or type(rule).__module__)
    digest = hashlib.sha256()
    for path in sorted(files):
        digest.update(path.encode("utf-8"))
        try:
            digest.update(Path(path).read_bytes())
        except OSError:
            pass
    return digest.hexdigest()


def cache_signature(config_repr: str, rule_names: tuple[str, ...],
                    rules_digest: str = "") -> str:
    payload = (f"{CACHE_SCHEMA}|{config_repr}|{','.join(rule_names)}"
               f"|{rules_digest}")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """Everything pass 1 produced for one file at one content hash."""

    digest: str
    findings: list[Finding]
    suppressions: dict[int, set[str]]
    index: ModuleIndex

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "findings": [
                {"path": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message, "severity": f.severity}
                for f in self.findings
            ],
            "suppressions": {str(line): sorted(rules)
                             for line, rules in self.suppressions.items()},
            "index": self.index.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheEntry":
        return cls(
            digest=data["digest"],
            findings=[Finding(path=f["path"], line=f["line"], rule=f["rule"],
                              message=f["message"], severity=f["severity"])
                      for f in data["findings"]],
            suppressions={int(line): set(rules)
                          for line, rules in data["suppressions"].items()},
            index=ModuleIndex.from_dict(data["index"]),
        )


class LintCache:
    """Content-hash keyed store of pass-1 results, with hit accounting."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, CacheEntry] = {}
        self._fresh: dict[str, CacheEntry] = {}
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) \
                or payload.get("signature") != self.signature:
            return
        try:
            self._entries = {
                relpath: CacheEntry.from_dict(entry)
                for relpath, entry in payload.get("entries", {}).items()}
        except (KeyError, TypeError, ValueError):
            self._entries = {}

    def lookup(self, relpath: str, digest: str) -> CacheEntry | None:
        entry = self._entries.get(relpath)
        if entry is not None and entry.digest == digest:
            self.hits += 1
            self._fresh[relpath] = entry
            return entry
        self.misses += 1
        return None

    def store(self, relpath: str, entry: CacheEntry) -> None:
        self._fresh[relpath] = entry

    def save(self) -> None:
        """Persist the entries of this run (stale files fall out)."""
        payload = {
            "signature": self.signature,
            "entries": {relpath: entry.to_dict()
                        for relpath, entry in sorted(self._fresh.items())},
        }
        try:
            self.path.write_text(json.dumps(payload), encoding="utf-8")
        except OSError:
            pass  # a read-only checkout just runs cold every time
