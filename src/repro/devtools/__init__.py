"""repro.devtools -- static analysis guarding the simulator's invariants.

The reproduction's claims (Tables I-IV throughput, the Table III resolved
fractions) assume two things review alone cannot keep true at scale: every
Monte-Carlo path is deterministic under its seed, and every protocol speaks
the exact same read-session contract.  This package machine-checks those
invariants with a two-pass whole-program lint engine: pass 1 indexes every
module (symbol tables, call records, function signatures with inferred
quantity kinds) behind a content-hash cache; pass 2 runs the cross-file
rule families -- units/dimension checking, probability-domain interval
analysis, RNG reachability over the call graph, experiment-registry
completeness -- alongside the original per-file hygiene rules.
``repro-lint src`` runs it from the command line and
``tests/test_static_analysis.py`` runs it in tier-1 CI.

See docs/static_analysis.md for the rule catalogue, the baseline workflow
and the suppression syntax.
"""

from repro.devtools.baseline import Baseline
from repro.devtools.cache import CacheEntry, LintCache
from repro.devtools.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.dataflow import (
    DefUse,
    TagFlow,
    build_cfg,
    def_use_records,
    global_access,
)
from repro.devtools.engine import LintEngine, parse_suppressions
from repro.devtools.findings import Finding, LintReport
from repro.devtools.index import (
    FunctionInfo,
    ModuleIndex,
    ProjectIndex,
    build_module_index,
)
from repro.devtools.intervals import interval_of_expr, provably_outside_unit
from repro.devtools.reporters import render_json, render_text
from repro.devtools.shapes import ShapeInfo, infer_expr, parse_shape_contracts
from repro.devtools.rules import (
    ModuleContext,
    ProjectContext,
    Rule,
    create_rules,
    describe_rules,
    register,
    rule_names,
)
from repro.devtools.units import kind_of_name, kind_of_qualified

__all__ = [
    "Baseline",
    "CacheEntry",
    "LintCache",
    "DEFAULT_CONFIG",
    "LintConfig",
    "DefUse",
    "TagFlow",
    "build_cfg",
    "def_use_records",
    "global_access",
    "LintEngine",
    "parse_suppressions",
    "ShapeInfo",
    "infer_expr",
    "parse_shape_contracts",
    "Finding",
    "LintReport",
    "FunctionInfo",
    "ModuleIndex",
    "ProjectIndex",
    "build_module_index",
    "interval_of_expr",
    "provably_outside_unit",
    "render_json",
    "render_text",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "create_rules",
    "describe_rules",
    "register",
    "rule_names",
    "kind_of_name",
    "kind_of_qualified",
]
