"""repro.devtools -- static analysis guarding the simulator's invariants.

The reproduction's claims (Tables I-IV throughput, the Table III resolved
fractions) assume two things review alone cannot keep true at scale: every
Monte-Carlo path is deterministic under its seed, and every protocol speaks
the exact same read-session contract.  This package machine-checks those
invariants (plus numeric hygiene and public-API consistency) with a small
AST lint engine; ``repro-lint src`` runs it from the command line and
``tests/test_static_analysis.py`` runs it in tier-1 CI.

See docs/static_analysis.md for the rule catalogue and suppression syntax.
"""

from repro.devtools.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.engine import LintEngine, parse_suppressions
from repro.devtools.findings import Finding, LintReport
from repro.devtools.reporters import render_json, render_text
from repro.devtools.rules import (
    ModuleContext,
    ProjectContext,
    Rule,
    create_rules,
    describe_rules,
    register,
    rule_names,
)

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "LintEngine",
    "parse_suppressions",
    "Finding",
    "LintReport",
    "render_json",
    "render_text",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "create_rules",
    "describe_rules",
    "register",
    "rule_names",
]
