"""``repro-lint``: run the simulator-invariant checks from the command line.

Examples::

    repro-lint src                    # whole tree, text output
    repro-lint --format json src      # machine-readable
    repro-lint --rules float-equality,mutable-default src/repro/core
    repro-lint --no-baseline src      # strict: baselined findings block
    repro-lint --write-baseline src   # grandfather today's findings
    repro-lint --hotspots src         # rank hot loops for the kernel PR
    repro-lint --list-rules

Exit status: 0 clean, 1 blocking findings, 2 usage error.  ``--warn-only``
always exits 0 (used for advisory sweeps over tests/ and scripts/).

The incremental cache lives at ``.repro-lint-cache.json`` next to
``pyproject.toml`` (git-ignored); ``--no-cache`` forces a cold run.  The
grandfather baseline is ``.repro-lint-baseline.json`` (checked in).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.devtools.cache import DEFAULT_CACHE_NAME
from repro.devtools.engine import LintEngine, find_repo_root
from repro.devtools.reporters import render_json, render_text
from repro.devtools.rules import describe_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Whole-program static analysis of the repro simulator: "
                     "determinism, protocol conformance, numeric hygiene, "
                     "public-API consistency, units/dimension checking, "
                     "probability-domain verification, RNG reachability and "
                     "experiment-registry completeness."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--rules", default="",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "`# repro: allow-<rule>` comments")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallelize pass-1 indexing over N worker "
                             "processes (results merge deterministically; "
                             "default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the incremental cache")
    parser.add_argument("--no-baseline", action="store_true",
                        help="strict mode: grandfathered findings block too")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: "
                             f"{DEFAULT_BASELINE_NAME} next to "
                             "pyproject.toml)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current blocking findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--warn-only", action="store_true",
                        help="report findings but always exit 0")
    parser.add_argument("--hotspots", action="store_true",
                        help="instead of linting, rank hot loops (reachable "
                             "from BENCH entry points) by vectorization "
                             "payoff and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every registered rule and exit")
    return parser


def _resolve_side_files(options: argparse.Namespace
                        ) -> tuple[Path | None, Path | None]:
    """Locate the cache and baseline files relative to the repository."""
    first = Path(options.paths[0]) if options.paths else Path(".")
    start = first if first.is_dir() else first.parent
    repo_root = find_repo_root(start.resolve())
    cache_path = None
    if not options.no_cache and repo_root is not None:
        cache_path = repo_root / DEFAULT_CACHE_NAME
    baseline_path = None
    if options.baseline is not None:
        baseline_path = Path(options.baseline)
    elif repo_root is not None:
        baseline_path = repo_root / DEFAULT_BASELINE_NAME
    return cache_path, baseline_path


def main(argv: Sequence[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    if options.list_rules:
        for name, description in describe_rules().items():
            print(f"{name}\n    {description}")
        return 0
    select = tuple(name.strip() for name in options.rules.split(",")
                   if name.strip())
    missing = [path for path in options.paths if not Path(path).exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    cache_path, baseline_path = _resolve_side_files(options)
    baseline = None
    if baseline_path is not None and not options.no_baseline \
            and not options.write_baseline:
        baseline = Baseline.load(baseline_path)
    try:
        engine = LintEngine(select=select, cache_path=cache_path,
                            baseline=baseline)
    except KeyError as error:
        print(f"repro-lint: {error.args[0]}", file=sys.stderr)
        return 2
    if options.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2
    if options.hotspots:
        import json

        from repro.devtools.hotspots import kernel_scalar_refs, \
            rank_hotspots, render_hotspots_text

        project, _ = engine.build_project(
            [Path(path) for path in options.paths], jobs=options.jobs)
        payload = rank_hotspots(project.index, engine.config,
                                scalar_refs=kernel_scalar_refs(project.modules))
        if options.format == "json":
            print(json.dumps(payload, indent=2))
        else:
            print(render_hotspots_text(payload))
        return 0
    report = engine.lint_paths(options.paths, jobs=options.jobs)
    if options.write_baseline:
        if baseline_path is None:
            print("repro-lint: cannot locate a baseline path (no "
                  "pyproject.toml above the scanned tree); pass --baseline",
                  file=sys.stderr)
            return 2
        Baseline.from_findings(report.blocking).write(baseline_path)
        print(f"wrote {len(report.blocking)} finding(s) to {baseline_path}")
        return 0
    if options.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=options.show_suppressed))
    if options.warn_only:
        return 0
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
