"""``repro-lint``: run the simulator-invariant checks from the command line.

Examples::

    repro-lint src                    # whole tree, text output
    repro-lint --format json src      # machine-readable
    repro-lint --rules float-equality,mutable-default src/repro/core
    repro-lint --list-rules

Exit status: 0 clean, 1 unsuppressed findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.engine import LintEngine
from repro.devtools.reporters import render_json, render_text
from repro.devtools.rules import describe_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("AST-based checks of the repro simulator's invariants: "
                     "determinism, protocol conformance, numeric hygiene "
                     "and public-API consistency."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--rules", default="",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "`# repro: allow-<rule>` comments")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every registered rule and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    if options.list_rules:
        for name, description in describe_rules().items():
            print(f"{name}\n    {description}")
        return 0
    select = tuple(name.strip() for name in options.rules.split(",")
                   if name.strip())
    try:
        engine = LintEngine(select=select)
    except KeyError as error:
        print(f"repro-lint: {error.args[0]}", file=sys.stderr)
        return 2
    missing = [path for path in options.paths if not Path(path).exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = engine.lint_paths(options.paths)
    if options.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=options.show_suppressed))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
