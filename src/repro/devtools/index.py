"""Pass 1 of the whole-program analyzer: the project index.

For every module the engine builds a :class:`ModuleIndex` -- import aliases,
module-level numeric constants, and a :class:`FunctionInfo` per function or
method holding its signature (each parameter classified with a quantity
kind from :mod:`repro.devtools.units` and, where provable, a default value
interval) and every call it makes (callee as written, plus the kind and
interval of each argument).  Module indexes are plain-data and serializable,
so the on-disk cache can persist them per content hash.

:class:`ProjectIndex` assembles the per-module records into whole-program
structure: a global function table, alias-aware call resolution (falling
back to name-based method matching, the classic cheap-call-graph move) and
the call graph the R5--R8 rule families walk.

Nested functions are folded into their enclosing function: their calls
count as the parent's (so closures do not break reachability), and their
parameters are simply unclassified.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.devtools.dataflow import DefUse, def_use_records, global_access
from repro.devtools.dependence import LoopSummary, analyze_loops
from repro.devtools.effects import local_effects
from repro.devtools.intervals import Interval, interval_of_expr
from repro.devtools.shapes import ShapeInfo, infer_expr
from repro.devtools.units import (
    HARD_KINDS,
    KIND_DIMENSIONLESS,
    KIND_SECONDS,
    is_probability_name,
    kind_of_name,
    kind_of_qualified,
)

MODULE_SCOPE = "<module>"


# ---------------------------------------------------------------------------
# expression-kind inference (shared with the R5 rule)

def kind_of_expr(node: ast.expr, param_kinds: dict[str, str | None],
                 mismatches: list[tuple[ast.BinOp, str, str]] | None = None
                 ) -> str | None:
    """Quantity kind of an expression, by naming convention.

    ``param_kinds`` overrides the convention for parameter names (it carries
    the registry's qualified classifications).  When ``mismatches`` is given,
    every ``+``/``-`` whose operands have *different* hard kinds is appended
    to it -- that is exactly what R5 reports.
    """
    if isinstance(node, ast.Name):
        if node.id in param_kinds:
            return param_kinds[node.id]
        return kind_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return kind_of_name(node.attr)
    if isinstance(node, ast.Subscript):
        return kind_of_expr(node.value, param_kinds, mismatches)
    if isinstance(node, ast.UnaryOp):
        return kind_of_expr(node.operand, param_kinds, mismatches)
    if isinstance(node, ast.IfExp):
        body = kind_of_expr(node.body, param_kinds, mismatches)
        orelse = kind_of_expr(node.orelse, param_kinds, mismatches)
        return body if body == orelse else None
    if isinstance(node, ast.Call):
        return _call_kind(node, param_kinds, mismatches)
    if isinstance(node, ast.BinOp):
        left = kind_of_expr(node.left, param_kinds, mismatches)
        right = kind_of_expr(node.right, param_kinds, mismatches)
        return _binop_kind(node, left, right, mismatches)
    return None


def _call_kind(node: ast.Call, param_kinds: dict[str, str | None],
               mismatches: list[tuple[ast.BinOp, str, str]] | None
               ) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("min", "max", "abs",
                                                  "float", "sum", "round"):
        kinds = {kind_of_expr(arg, param_kinds, mismatches)
                 for arg in node.args}
        # Still walk keyword args so mismatches inside them are found.
        for keyword in node.keywords:
            kind_of_expr(keyword.value, param_kinds, mismatches)
        return kinds.pop() if len(kinds) == 1 else None
    # Convention on the called name: `self.transmission_time(...)` is
    # seconds because `transmission_time` is.  Arguments are walked for
    # nested mismatches but do not contribute to the call's kind.
    for arg in node.args:
        kind_of_expr(arg, param_kinds, mismatches)
    for keyword in node.keywords:
        kind_of_expr(keyword.value, param_kinds, mismatches)
    if isinstance(func, ast.Attribute):
        return kind_of_name(func.attr)
    if isinstance(func, ast.Name):
        return kind_of_name(func.id)
    return None


def _binop_kind(node: ast.BinOp, left: str | None, right: str | None,
                mismatches: list[tuple[ast.BinOp, str, str]] | None
                ) -> str | None:
    if isinstance(node.op, (ast.Add, ast.Sub)):
        if left in HARD_KINDS and right in HARD_KINDS and left != right:
            if mismatches is not None:
                mismatches.append((node, left, right))  # type: ignore[arg-type]
            return None
        if left in HARD_KINDS:
            return left
        if right in HARD_KINDS:
            return right
        return left if left == right else None
    if isinstance(node.op, ast.Mult):
        # In this codebase counts scale durations: slots * slot_duration is
        # seconds.  Two different counts multiplied yield nothing nameable.
        if left == KIND_SECONDS or right == KIND_SECONDS:
            other = right if left == KIND_SECONDS else left
            return KIND_SECONDS if other != KIND_SECONDS else None
        if left == KIND_DIMENSIONLESS:
            return right
        if right == KIND_DIMENSIONLESS:
            return left
        return None
    if isinstance(node.op, (ast.Div, ast.FloorDiv)):
        if left is not None and left == right:
            return KIND_DIMENSIONLESS
        if right in (None, KIND_DIMENSIONLESS):
            return left if right == KIND_DIMENSIONLESS else None
        return None
    return None


# ---------------------------------------------------------------------------
# per-module records

@dataclass
class ArgInfo:
    """One call argument: its inferred kind and provable value interval."""

    kind: str | None = None
    interval: Interval | None = None
    #: Shape/dtype when the argument is a provably-typed array expression.
    shape: ShapeInfo | None = None
    #: Leftmost name of the argument expression (``cfg`` for ``cfg.slots``);
    #: the effect analysis uses it to track which objects escape to callees.
    root: str | None = None

    def to_dict(self) -> dict:
        return {"kind": self.kind,
                "interval": list(self.interval) if self.interval else None,
                "shape": self.shape.to_dict() if self.shape else None,
                "root": self.root}

    @classmethod
    def from_dict(cls, data: dict) -> "ArgInfo":
        interval = data.get("interval")
        shape = data.get("shape")
        return cls(kind=data.get("kind"),
                   interval=tuple(interval) if interval else None,
                   shape=ShapeInfo.from_dict(shape) if shape else None,
                   root=data.get("root"))


@dataclass
class CallInfo:
    """One call site inside a function."""

    raw: str  # the callee as written, e.g. ``self.transmission_time``
    lineno: int
    args: list[ArgInfo] = field(default_factory=list)
    kwargs: dict[str, ArgInfo] = field(default_factory=dict)
    has_star: bool = False      # *args at the call site
    has_star_kw: bool = False   # **kwargs at the call site

    def to_dict(self) -> dict:
        return {"raw": self.raw, "lineno": self.lineno,
                "args": [arg.to_dict() for arg in self.args],
                "kwargs": {k: v.to_dict() for k, v in self.kwargs.items()},
                "has_star": self.has_star, "has_star_kw": self.has_star_kw}

    @classmethod
    def from_dict(cls, data: dict) -> "CallInfo":
        return cls(raw=data["raw"], lineno=data["lineno"],
                   args=[ArgInfo.from_dict(a) for a in data["args"]],
                   kwargs={k: ArgInfo.from_dict(v)
                           for k, v in data["kwargs"].items()},
                   has_star=data["has_star"], has_star_kw=data["has_star_kw"])


@dataclass
class ParamInfo:
    """One parameter (``self``/``cls`` are never recorded)."""

    name: str
    kind: str | None = None
    probability: bool = False
    kwonly: bool = False
    annotation: str | None = None
    has_default: bool = False
    default_interval: Interval | None = None
    #: ``# repro: shape(...)`` contract on the parameter's own line.
    shape_contract: ShapeInfo | None = None

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "probability": self.probability, "kwonly": self.kwonly,
                "annotation": self.annotation,
                "has_default": self.has_default,
                "default_interval": (list(self.default_interval)
                                     if self.default_interval else None),
                "shape_contract": (self.shape_contract.to_dict()
                                   if self.shape_contract else None)}

    @classmethod
    def from_dict(cls, data: dict) -> "ParamInfo":
        interval = data.get("default_interval")
        contract = data.get("shape_contract")
        return cls(name=data["name"], kind=data["kind"],
                   probability=data["probability"], kwonly=data["kwonly"],
                   annotation=data.get("annotation"),
                   has_default=data["has_default"],
                   default_interval=tuple(interval) if interval else None,
                   shape_contract=(ShapeInfo.from_dict(contract)
                                   if contract else None))


@dataclass
class FunctionInfo:
    """One function/method (or the synthetic dataclass constructor)."""

    qualname: str  # ``func`` or ``Class.method`` within the module
    lineno: int
    params: list[ParamInfo] = field(default_factory=list)
    calls: list[CallInfo] = field(default_factory=list)
    is_method: bool = False
    has_rng_param: bool = False
    has_varargs: bool = False
    has_kwargs: bool = False
    return_kind: str | None = None
    #: Reaching-definitions def-use chains (cached with the index).
    def_uses: list[DefUse] = field(default_factory=list)
    #: Module-global reads ``(name, line)`` inside this function.
    global_reads: list[tuple[str, int]] = field(default_factory=list)
    #: Module-global writes ``(name, line, how)``; ``how`` is one of
    #: ``rebind``/``mutate``/``store`` (see dataflow.global_access).
    global_writes: list[tuple[str, int, str]] = field(default_factory=list)
    #: ``# repro: shape(...)`` contract on the ``def`` line = return value.
    return_contract: ShapeInfo | None = None
    #: Loop-carried dependence summaries, one per loop (dependence.py).
    loops: list[LoopSummary] = field(default_factory=list)
    #: Locally-evident effects (effects.py); closed over the call graph
    #: by EffectAnalysis in pass 2.
    effects_local: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def class_name(self) -> str | None:
        if "." in self.qualname:
            return self.qualname.split(".", 1)[0]
        return None

    def param(self, name: str) -> ParamInfo | None:
        for info in self.params:
            if info.name == name:
                return info
        return None

    def to_dict(self) -> dict:
        return {"qualname": self.qualname, "lineno": self.lineno,
                "params": [p.to_dict() for p in self.params],
                "calls": [c.to_dict() for c in self.calls],
                "is_method": self.is_method,
                "has_rng_param": self.has_rng_param,
                "has_varargs": self.has_varargs,
                "has_kwargs": self.has_kwargs,
                "return_kind": self.return_kind,
                "def_uses": [record.to_list() for record in self.def_uses],
                "global_reads": [list(read) for read in self.global_reads],
                "global_writes": [list(write)
                                  for write in self.global_writes],
                "return_contract": (self.return_contract.to_dict()
                                    if self.return_contract else None),
                "loops": [loop.to_list() for loop in self.loops],
                "effects_local": list(self.effects_local)}

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionInfo":
        contract = data.get("return_contract")
        return cls(qualname=data["qualname"], lineno=data["lineno"],
                   params=[ParamInfo.from_dict(p) for p in data["params"]],
                   calls=[CallInfo.from_dict(c) for c in data["calls"]],
                   is_method=data["is_method"],
                   has_rng_param=data["has_rng_param"],
                   has_varargs=data["has_varargs"],
                   has_kwargs=data["has_kwargs"],
                   return_kind=data["return_kind"],
                   def_uses=[DefUse.from_list(record)
                             for record in data.get("def_uses", [])],
                   global_reads=[(read[0], read[1])
                                 for read in data.get("global_reads", [])],
                   global_writes=[(w[0], w[1], w[2])
                                  for w in data.get("global_writes", [])],
                   return_contract=(ShapeInfo.from_dict(contract)
                                    if contract else None),
                   loops=[LoopSummary.from_list(loop)
                          for loop in data.get("loops", [])],
                   effects_local=tuple(data.get("effects_local", [])))


@dataclass
class ModuleIndex:
    """Everything pass 2 needs to know about one module."""

    dotted: str
    relpath: str
    #: local name -> imported dotted target (``np`` -> ``numpy``,
    #: ``RecordStore`` -> ``repro.core.collision.RecordStore``).
    aliases: dict[str, str] = field(default_factory=dict)
    #: functions and methods by qualname (plus the ``<module>`` pseudo-scope
    #: holding module-level calls).
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: names of classes defined in this module.
    classes: tuple[str, ...] = ()
    #: class name -> base-class names as written (virtual dispatch input).
    class_bases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: names assigned at module scope (the fork-safety global universe).
    global_names: tuple[str, ...] = ()
    #: module globals bound to OS handles (open files, locks, queues).
    handle_globals: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"dotted": self.dotted, "relpath": self.relpath,
                "aliases": dict(self.aliases),
                "functions": {name: info.to_dict()
                              for name, info in self.functions.items()},
                "classes": list(self.classes),
                "class_bases": {name: list(bases)
                                for name, bases in self.class_bases.items()},
                "global_names": list(self.global_names),
                "handle_globals": list(self.handle_globals)}

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleIndex":
        return cls(dotted=data["dotted"], relpath=data["relpath"],
                   aliases=dict(data["aliases"]),
                   functions={name: FunctionInfo.from_dict(info)
                              for name, info in data["functions"].items()},
                   classes=tuple(data["classes"]),
                   class_bases={name: tuple(bases) for name, bases
                                in data.get("class_bases", {}).items()},
                   global_names=tuple(data.get("global_names", [])),
                   handle_globals=tuple(data.get("handle_globals", [])))


# ---------------------------------------------------------------------------
# building a module index

_DATACLASS_NAMES = ("dataclass",)


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = _dotted(target)
        if name and name.rsplit(".", 1)[-1] in _DATACLASS_NAMES:
            return True
    return False


def _annotation_str(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return None


#: Call tails whose module-level result is an OS handle a forked worker
#: must never inherit silently (files, locks, IPC primitives).
_HANDLE_CTORS = {"open", "Lock", "RLock", "Semaphore", "BoundedSemaphore",
                 "Condition", "Event", "Barrier", "Queue", "Pool",
                 "TemporaryFile", "NamedTemporaryFile", "socket"}


class _ModuleIndexer:
    def __init__(self, dotted: str, relpath: str,
                 contracts: dict[int, ShapeInfo] | None = None) -> None:
        self.index = ModuleIndex(dotted=dotted, relpath=relpath)
        self.constants: dict[str, Interval] = {}
        self.contracts = contracts or {}
        self.module_globals: set[str] = set()
        self.numpy_names: frozenset[str] = frozenset(("np", "numpy"))

    # -- entry -------------------------------------------------------------

    def _prescan_globals(self, tree: ast.Module) -> None:
        """Module-scope assigned names plus the handle-valued subset."""
        handles: list[str] = []
        numpy_locals = {"np", "numpy"}
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_locals.add(alias.asname or "numpy")
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            names = [name for target in targets
                     for sub in ast.walk(target)
                     if isinstance(sub, ast.Name)
                     for name in (sub.id,)]
            self.module_globals.update(names)
            value = getattr(node, "value", None)
            if names and isinstance(value, ast.Call):
                raw = _dotted(value.func)
                if raw and raw.rsplit(".", 1)[-1] in _HANDLE_CTORS:
                    handles.extend(names)
        self.index.global_names = tuple(sorted(self.module_globals))
        self.index.handle_globals = tuple(sorted(set(handles)))
        self.numpy_names = frozenset(numpy_locals)

    def build(self, tree: ast.Module) -> ModuleIndex:
        self._prescan_globals(tree)
        module_scope = FunctionInfo(qualname=MODULE_SCOPE, lineno=1)
        classes: list[str] = []
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.index.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.index.aliases[local] = \
                        f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                classes.append(node.name)
                self._index_class(node)
            else:
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    interval = interval_of_expr(node.value, self.constants)
                    if interval is not None:
                        self.constants[node.targets[0].id] = interval
                self._collect_calls(node, module_scope, {}, self.constants)
        if module_scope.calls:
            self.index.functions[MODULE_SCOPE] = module_scope
        self.index.classes = tuple(classes)
        return self.index

    # -- classes -----------------------------------------------------------

    def _index_class(self, node: ast.ClassDef) -> None:
        bases = tuple(name for name in (_dotted(base)
                                        for base in node.bases)
                      if name is not None)
        if bases:
            self.index.class_bases[node.name] = bases
        fields: list[ParamInfo] = []
        has_init = False
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name == "__init__":
                    has_init = True
                self._index_function(item, class_name=node.name)
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                name = item.target.id
                annotation = _annotation_str(item.annotation)
                if annotation and annotation.startswith("ClassVar"):
                    continue
                qualified = f"{self.index.dotted}.{node.name}.{name}"
                default = (interval_of_expr(item.value, self.constants)
                           if item.value is not None else None)
                fields.append(ParamInfo(
                    name=name, kind=kind_of_qualified(qualified),
                    probability=is_probability_name(name),
                    annotation=annotation,
                    has_default=item.value is not None,
                    default_interval=default))
        if fields and not has_init and _is_dataclass(node):
            # Synthetic constructor so `Class(field=...)` call sites can be
            # checked against the dataclass field kinds.
            self.index.functions[f"{node.name}.__init__"] = FunctionInfo(
                qualname=f"{node.name}.__init__", lineno=node.lineno,
                params=fields, is_method=True,
                has_rng_param=any(f.name == "rng" for f in fields))

    # -- functions ---------------------------------------------------------

    def _index_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                        class_name: str | None) -> None:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        args = node.args
        params: list[ParamInfo] = []
        positional = [*args.posonlyargs, *args.args]
        defaults: list[ast.expr | None] = [None] * (
            len(positional) - len(args.defaults)) + list(args.defaults)
        for param, default in zip(positional, defaults):
            if param.arg in ("self", "cls") and class_name and not params \
                    and param is positional[0]:
                continue
            params.append(self._param_info(qualname, param, default,
                                           kwonly=False,
                                           def_lineno=node.lineno))
        for param, default in zip(args.kwonlyargs, args.kw_defaults):
            params.append(self._param_info(qualname, param, default,
                                           kwonly=True,
                                           def_lineno=node.lineno))
        reads, writes = global_access(node, self.module_globals)
        info = FunctionInfo(
            qualname=qualname, lineno=node.lineno, params=params,
            is_method=class_name is not None,
            has_rng_param=any(p.name == "rng" for p in params),
            has_varargs=args.vararg is not None,
            has_kwargs=args.kwarg is not None,
            return_kind=kind_of_qualified(
                f"{self.index.dotted}.{qualname}"),
            def_uses=def_use_records(node),
            global_reads=reads, global_writes=writes,
            return_contract=self.contracts.get(node.lineno),
            loops=analyze_loops(node, self.numpy_names),
            effects_local=tuple(sorted(
                local_effects(node, self.module_globals))))
        param_kinds = {p.name: p.kind for p in params}
        local_env = self._local_env(node)
        shape_env = self._shape_env(node, params)
        for statement in node.body:
            self._collect_calls(statement, info, param_kinds, local_env,
                                shape_env)
        self.index.functions[qualname] = info

    def _param_info(self, qualname: str, param: ast.arg,
                    default: ast.expr | None, kwonly: bool,
                    def_lineno: int = -1) -> ParamInfo:
        qualified = f"{self.index.dotted}.{qualname}.{param.arg}"
        return ParamInfo(
            name=param.arg, kind=kind_of_qualified(qualified),
            probability=is_probability_name(param.arg),
            kwonly=kwonly,
            annotation=_annotation_str(param.annotation),
            has_default=default is not None,
            default_interval=(interval_of_expr(default, self.constants)
                              if default is not None else None),
            # A contract on the ``def`` line is the *return* contract; a
            # parameter only owns one when signatures span lines.
            shape_contract=(self.contracts.get(param.lineno)
                            if param.lineno != def_lineno else None))

    def _shape_env(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                   params: list[ParamInfo]) -> dict[str, ShapeInfo]:
        """Shapes of contracted params and single-assignment locals."""
        env: dict[str, ShapeInfo] = {
            param.name: param.shape_contract for param in params
            if param.shape_contract is not None}
        counts: dict[str, int] = {}
        for statement in ast.walk(node):
            if isinstance(statement, (ast.Assign, ast.AugAssign,
                                      ast.AnnAssign)):
                targets = statement.targets \
                    if isinstance(statement, ast.Assign) \
                    else [statement.target]
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            counts[name_node.id] = \
                                counts.get(name_node.id, 0) + 1
        for statement in ast.walk(node):
            if isinstance(statement, ast.Assign) \
                    and len(statement.targets) == 1 \
                    and isinstance(statement.targets[0], ast.Name) \
                    and counts.get(statement.targets[0].id) == 1:
                name = statement.targets[0].id
                declared = self.contracts.get(statement.lineno)
                inferred = declared if declared is not None else infer_expr(
                    statement.value, env, self.numpy_names)
                if inferred is not None:
                    env[name] = inferred
        return env

    def _local_env(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                   ) -> dict[str, Interval]:
        """Intervals of single-assignment locals (plus module constants)."""
        counts: dict[str, int] = {}
        for statement in ast.walk(node):
            if isinstance(statement, (ast.Assign, ast.AugAssign,
                                      ast.AnnAssign)):
                targets = statement.targets \
                    if isinstance(statement, ast.Assign) \
                    else [statement.target]
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            counts[name_node.id] = \
                                counts.get(name_node.id, 0) + 1
        env = dict(self.constants)
        for statement in ast.walk(node):
            if isinstance(statement, ast.Assign) \
                    and len(statement.targets) == 1 \
                    and isinstance(statement.targets[0], ast.Name) \
                    and counts.get(statement.targets[0].id) == 1:
                interval = interval_of_expr(statement.value, env)
                if interval is not None:
                    env[statement.targets[0].id] = interval
        return env

    # -- call collection ---------------------------------------------------

    def _collect_calls(self, node: ast.AST, into: FunctionInfo,
                       param_kinds: dict[str, str | None],
                       env: dict[str, Interval],
                       shape_env: dict[str, ShapeInfo] | None = None
                       ) -> None:
        shape_env = shape_env if shape_env is not None else {}
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            raw = _dotted(call.func)
            if raw is None and isinstance(call.func, ast.Attribute) \
                    and isinstance(call.func.value, ast.Call):
                # ``Protocol().read_all(...)``: treat the constructor-call
                # receiver as the class, so the edge stays in the graph.
                receiver = _dotted(call.func.value.func)
                if receiver is not None:
                    raw = f"{receiver}.{call.func.attr}"
            if raw is None:
                continue
            info = CallInfo(raw=raw, lineno=call.lineno)
            for arg in call.args:
                if isinstance(arg, ast.Starred):
                    info.has_star = True
                    continue
                info.args.append(ArgInfo(
                    kind=kind_of_expr(arg, param_kinds),
                    interval=interval_of_expr(arg, env),
                    shape=infer_expr(arg, shape_env, self.numpy_names),
                    root=_arg_root(arg)))
            for keyword in call.keywords:
                if keyword.arg is None:
                    info.has_star_kw = True
                    continue
                info.kwargs[keyword.arg] = ArgInfo(
                    kind=kind_of_expr(keyword.value, param_kinds),
                    interval=interval_of_expr(keyword.value, env),
                    shape=infer_expr(keyword.value, shape_env,
                                     self.numpy_names),
                    root=_arg_root(keyword.value))
            into.calls.append(info)


def _arg_root(node: ast.expr) -> str | None:
    """Leftmost name when the argument passes an object (or part of one)."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def build_module_index(dotted: str, relpath: str, tree: ast.Module,
                       contracts: dict[int, ShapeInfo] | None = None
                       ) -> ModuleIndex:
    """Index one parsed module (pass 1 unit of work; cacheable)."""
    return _ModuleIndexer(dotted, relpath, contracts).build(tree)


# ---------------------------------------------------------------------------
# whole-program assembly

@dataclass
class Callee:
    """One resolved call target."""

    module: ModuleIndex
    function: FunctionInfo
    #: True when the target was matched purely by method name (several
    #: classes may define it); value checks should then require agreement.
    name_based: bool = False

    @property
    def path(self) -> str:
        return f"{self.module.dotted}:{self.function.qualname}"


class ProjectIndex:
    """Global lookup over every module index of one scan."""

    def __init__(self, modules: Sequence[ModuleIndex]) -> None:
        self.modules: dict[str, ModuleIndex] = {
            module.dotted: module for module in modules}
        self._by_method: dict[str, list[Callee]] = {}
        for module in modules:
            for info in module.functions.values():
                if info.qualname == MODULE_SCOPE:
                    continue
                self._by_method.setdefault(info.name, []).append(
                    Callee(module=module, function=info, name_based=True))
        self._subclasses = self._build_subclass_map()

    def _build_subclass_map(self) -> dict[str, set[str]]:
        """Base class dotted path -> transitive subclass dotted paths."""
        direct: dict[str, set[str]] = {}
        for module in self.modules.values():
            for name, bases in module.class_bases.items():
                child = f"{module.dotted}.{name}"
                for base in bases:
                    if base in module.classes:
                        resolved: str | None = f"{module.dotted}.{base}"
                    else:
                        head, *rest = base.split(".")
                        target = module.aliases.get(head)
                        resolved = ".".join([target, *rest]) \
                            if target else None
                    if resolved is not None:
                        direct.setdefault(resolved, set()).add(child)
        closed: dict[str, set[str]] = {}
        for root in direct:
            seen: set[str] = set()
            frontier = list(direct[root])
            while frontier:
                child = frontier.pop()
                if child in seen:
                    continue
                seen.add(child)
                frontier.extend(direct.get(child, ()))
            closed[root] = seen
        return closed

    # -- lookups -----------------------------------------------------------

    def all_functions(self) -> Iterator[tuple[ModuleIndex, FunctionInfo]]:
        for module in self.modules.values():
            for info in module.functions.values():
                yield module, info

    def _function_at(self, dotted_path: str) -> Callee | None:
        """Resolve ``pkg.mod.func`` / ``pkg.mod.Class.meth`` / class ctor."""
        parts = dotted_path.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:split]))
            if module is None:
                continue
            qualname = ".".join(parts[split:])
            info = module.functions.get(qualname)
            if info is not None:
                return Callee(module=module, function=info)
            if qualname in module.classes:
                ctor = module.functions.get(f"{qualname}.__init__")
                if ctor is not None:
                    return Callee(module=module, function=ctor)
            return None
        return None

    def _resolve_alias_chain(self, module: ModuleIndex,
                             raw: str) -> Callee | None:
        parts = raw.split(".")
        target = module.aliases.get(parts[0])
        if target is None:
            return None
        return self._function_at(".".join([target, *parts[1:]]))

    def resolve_call(self, module: ModuleIndex, caller: FunctionInfo,
                     call: CallInfo) -> list[Callee]:
        """Candidate targets of one call site.

        Exactly-resolved targets come back as a single candidate; receiver
        calls that cannot be resolved lexically fall back to matching every
        known method of that name (``name_based=True``).
        """
        parts = call.raw.split(".")
        caller_class = caller.class_name
        if parts[0] in ("self", "cls") and caller_class is not None:
            if len(parts) == 2:
                own = module.functions.get(f"{caller_class}.{parts[1]}")
                if own is not None:
                    return [Callee(module=module, function=own)]
            return self._by_method.get(parts[-1], [])
        if len(parts) == 1:
            name = parts[0]
            info = module.functions.get(name)
            if info is not None:
                return [Callee(module=module, function=info)]
            if name in module.classes:
                ctor = module.functions.get(f"{name}.__init__")
                return [Callee(module=module, function=ctor)] if ctor else []
            target = module.aliases.get(name)
            if target is not None:
                resolved = self._function_at(target)
                return [resolved] if resolved else []
            return []
        resolved = self._resolve_alias_chain(module, call.raw)
        if resolved is not None:
            return [resolved]
        # Receiver annotated with a known class?  `timing.session_seconds()`
        # resolves through the `timing: TimingModel` annotation.
        if len(parts) == 2:
            receiver = caller.param(parts[0])
            if receiver is not None and receiver.annotation:
                class_target = self._annotation_class(
                    module, receiver.annotation)
                if class_target is not None:
                    candidates = []
                    method = self._function_at(
                        f"{class_target}.{parts[1]}")
                    if method is not None:
                        candidates.append(method)
                    # Virtual dispatch: a subclass instance may flow in
                    # through the base-typed parameter, so every override
                    # is a candidate too.  They come back name_based so
                    # single-target value checks keep ignoring them.
                    for sub in sorted(self._subclasses.get(
                            class_target, ())):
                        override = self._function_at(f"{sub}.{parts[1]}")
                        if override is not None:
                            candidates.append(Callee(
                                module=override.module,
                                function=override.function,
                                name_based=True))
                    if candidates:
                        return candidates
        return self._by_method.get(parts[-1], [])

    def _annotation_class(self, module: ModuleIndex,
                          annotation: str) -> str | None:
        """Dotted path of the class an annotation names, if known."""
        name = annotation.replace(" | None", "").strip()
        if not name.replace(".", "").replace("_", "").isalnum():
            return None
        head = name.split(".")[0]
        if name in module.classes:
            return f"{module.dotted}.{name}"
        target = module.aliases.get(head)
        if target is None:
            return None
        return ".".join([target, *name.split(".")[1:]])

    # -- call graph --------------------------------------------------------

    def call_graph(self) -> dict[str, set[str]]:
        """Edges ``caller-path -> {callee-paths}`` over the whole project."""
        edges: dict[str, set[str]] = {}
        for module, info in self.all_functions():
            source = f"{module.dotted}:{info.qualname}"
            targets = edges.setdefault(source, set())
            for call in info.calls:
                for callee in self.resolve_call(module, info, call):
                    targets.add(callee.path)
        return edges
