"""``python -m repro.devtools`` == the ``repro-lint`` console script."""

import sys

from repro.devtools.cli import main

sys.exit(main())
