"""Interprocedural purity/effect summaries over the pass-1 call graph.

The batched-kernel rewrite can only hoist a function out of the per-slot
loop if it is effect-free (or its effects are understood).  This module
infers, for every indexed function, which of four effects it may have:

* ``reads-rng`` -- draws from a ``numpy.random.Generator`` (directly or
  through a callee); batching changes draw order, so these need care.
* ``mutates-args`` -- stores into or calls a mutator method on an object
  reachable from a parameter (``self`` included).
* ``mutates-global`` -- rebinds or mutates a module-level name.
* ``emits-events`` -- emits observability events (``obs.emit`` and
  friends); harmless for correctness but batching changes event counts.

An empty effect set means **pure**.  :func:`local_effects` computes the
per-function facts during pass 1 (serialized into the content-hash
index), and :class:`EffectAnalysis` closes them over the project call
graph with a bottom-up fixpoint: ``reads-rng``/``mutates-global``/
``emits-events`` propagate unconditionally caller-ward, while a callee's
``mutates-args`` only becomes the caller's when the caller passes one of
its *own* parameters (or a module global, which then surfaces as
``mutates-global``).

The R14 rule checks these inferred summaries against ``# repro: pure`` /
``# repro: effects(...)`` contract comments (parsed by
:func:`parse_effect_contracts`), so a refactor that silently makes a
batching candidate impure fails the lint gate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

from repro.devtools.dataflow import _MUTATOR_METHODS

EFFECT_READS_RNG = "reads-rng"
EFFECT_MUTATES_ARGS = "mutates-args"
EFFECT_MUTATES_GLOBAL = "mutates-global"
EFFECT_EMITS_EVENTS = "emits-events"

ALL_EFFECTS = frozenset({EFFECT_READS_RNG, EFFECT_MUTATES_ARGS,
                         EFFECT_MUTATES_GLOBAL, EFFECT_EMITS_EVENTS})

#: Effects that propagate caller-ward unconditionally.
_TRANSITIVE = frozenset({EFFECT_READS_RNG, EFFECT_MUTATES_GLOBAL,
                         EFFECT_EMITS_EVENTS})

#: Receiver names that identify the observability layer (``obs.emit``,
#: ``self.obs.emit``, ``observation.count``, ``_current.events.emit``).
_EVENT_RECEIVERS = {"obs", "observation", "events", "_current"}

#: Generator-typed annotations marking a parameter as RNG state.
_RNG_ANNOTATIONS = ("Generator", "SeedSequence")

#: ``# repro: pure`` or ``# repro: effects(a, b)`` on (or directly above)
#: a ``def`` line.
_CONTRACT = re.compile(
    r"#\s*repro:\s*(?:(?P<pure>pure)|effects\((?P<effects>[^)]*)\))\s*$")


def iter_comments(source: str) -> list[tuple[int, str]]:
    """``(1-based line, comment text)`` for every real comment token.

    Tokenizing (instead of line-scanning) keeps contract markers inside
    string literals and docstrings from parsing as contracts -- the same
    discipline the engine's suppression scanner follows.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [(token.start[0], token.string)
                for token in tokens if token.type == tokenize.COMMENT]
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return []


def parse_effect_contracts(source: str) -> dict[int, frozenset[str]]:
    """``{1-based line: declared effect set}``; ``pure`` is the empty set.

    Unknown effect names are kept verbatim so the rule can report them.
    """
    contracts: dict[int, frozenset[str]] = {}
    for lineno, line in iter_comments(source):
        match = _CONTRACT.search(line)
        if match is None:
            continue
        if match.group("pure"):
            contracts[lineno] = frozenset()
        else:
            contracts[lineno] = frozenset(
                part.strip() for part in match.group("effects").split(",")
                if part.strip())
    return contracts


def local_effects(func: ast.FunctionDef | ast.AsyncFunctionDef,
                  module_globals: set[str]) -> frozenset[str]:
    """Effects evident from this function's own body (callees excluded).

    ``module_globals`` is the module's set of assigned-at-module-scope
    names, matching :func:`repro.devtools.dataflow.global_access`.
    """
    from repro.devtools.dataflow import global_access

    effects: set[str] = set()
    params = _param_names(func)
    rng_params = _rng_params(func)

    _, writes = global_access(func, module_globals)
    if writes:
        effects.add(EFFECT_MUTATES_GLOBAL)

    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            parts = _dotted_parts(node.func)
            if parts:
                if any(part == "rng" or part in rng_params
                       for part in parts[:-1]):
                    effects.add(EFFECT_READS_RNG)
                if _is_event_call(parts):
                    effects.add(EFFECT_EMITS_EVENTS)
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATOR_METHODS:
                root = _root_name(node.func.value)
                if root in params:
                    effects.add(EFFECT_MUTATES_ARGS)
        elif isinstance(node, (ast.Attribute, ast.Subscript)) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            root = _root_name(node)
            if root in params:
                effects.add(EFFECT_MUTATES_ARGS)
    return frozenset(effects)


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = {arg.arg for arg in [*func.args.posonlyargs, *func.args.args,
                                 *func.args.kwonlyargs]}
    for extra in (func.args.vararg, func.args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    return names


def _rng_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    out: set[str] = set()
    for arg in [*func.args.posonlyargs, *func.args.args,
                *func.args.kwonlyargs]:
        annotation = ast.unparse(arg.annotation) \
            if arg.annotation is not None else ""
        if any(marker in annotation for marker in _RNG_ANNOTATIONS):
            out.add(arg.arg)
    return out


def _is_event_call(parts: tuple[str, ...]) -> bool:
    tail = parts[-1]
    receivers = set(parts[:-1])
    if tail in ("emit", "observe_value", "set_gauge"):
        # Bare one-liners (``emit(...)``) or any obs-layer receiver.
        return not receivers or bool(receivers & _EVENT_RECEIVERS)
    if tail == "count":
        # ``obs.count(...)`` only -- str.count/list.count are pure.
        return bool(receivers & _EVENT_RECEIVERS)
    return False


def _dotted_parts(node: ast.expr) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    if isinstance(node, ast.Call):
        inner = _dotted_parts(node.func)
        return inner + tuple(reversed(parts)) if inner else ()
    return ()


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class EffectAnalysis:
    """Bottom-up effect propagation over a :class:`ProjectIndex`.

    ``summaries`` maps every indexed function path
    (``"repro.core.fcat:_FcatSession.run"``) to its closed effect set; an
    empty set means the function is pure.  Coverage is total by
    construction -- there is no "unknown" verdict; unresolvable callees
    (numpy, stdlib) are assumed pure, which is the direction the R14
    contract check needs (a declared-pure function never *hides* an
    effect behind an external call).
    """

    def __init__(self, index) -> None:
        self.index = index
        self.summaries: dict[str, frozenset[str]] = {}
        self._solve()

    def summary(self, path: str) -> frozenset[str]:
        return self.summaries.get(path, frozenset())

    def is_pure(self, path: str) -> bool:
        return not self.summaries.get(path, frozenset())

    def _solve(self) -> None:
        current: dict[str, set[str]] = {}
        for module, info in self.index.all_functions():
            current[f"{module.dotted}:{info.qualname}"] = \
                set(info.effects_local)
        changed = True
        while changed:
            changed = False
            for module, info in self.index.all_functions():
                path = f"{module.dotted}:{info.qualname}"
                effects = current[path]
                params = {p.name for p in info.params}
                if info.is_method:
                    params |= {"self", "cls"}
                for call in info.calls:
                    for callee in self.index.resolve_call(
                            module, info, call):
                        inherited = current.get(callee.path, set()) \
                            & _TRANSITIVE
                        if EFFECT_MUTATES_ARGS in current.get(
                                callee.path, set()):
                            inherited |= self._escalate_mutation(
                                module, call, params)
                        if not inherited <= effects:
                            effects |= inherited
                            changed = True
        self.summaries = {path: frozenset(effects)
                          for path, effects in current.items()}

    def _escalate_mutation(self, module, call, params: set[str]
                           ) -> set[str]:
        """What a callee's ``mutates-args`` means for *this* caller."""
        roots = []
        head, _, _ = call.raw.rpartition(".")
        if head:
            roots.append(head.split(".")[0])
        roots.extend(arg.root for arg in call.args if arg.root)
        roots.extend(arg.root for arg in call.kwargs.values() if arg.root)
        out: set[str] = set()
        for root in roots:
            if root in params:
                out.add(EFFECT_MUTATES_ARGS)
            elif root in module.global_names:
                out.add(EFFECT_MUTATES_GLOBAL)
        return out
