"""Finding and report types shared by the lint engine, rules and reporters.

A :class:`Finding` is one rule violation anchored to a file and line, at one
of two severities: ``error`` (blocks the run) or ``warning`` (reported but
never fails the gate).  The engine marks findings whose line carries a
``# repro: allow-<rule>`` comment as *suppressed* and findings matching the
checked-in baseline file as *baselined*; both are still collected (so
reporters can show them) but do not fail the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line``."""

    #: Path of the offending file.  Module findings are relative to the scan
    #: root (e.g. ``repro/core/scat.py``); repository-level findings (docs,
    #: test manifests) are relative to the repository root.
    path: str
    #: 1-based line number the finding anchors to.
    line: int
    #: Registry name of the rule that fired (e.g. ``float-equality``).
    rule: str
    #: Human-readable explanation of what is wrong and how to fix it.
    message: str
    #: True when a ``# repro: allow-<rule>`` comment covers this line.
    suppressed: bool = False
    #: ``error`` findings gate CI; ``warning`` findings are informational.
    severity: str = SEVERITY_ERROR
    #: True when the checked-in baseline grandfathers this finding.
    baselined: bool = False

    def as_suppressed(self) -> "Finding":
        return replace(self, suppressed=True)

    def as_baselined(self) -> "Finding":
        return replace(self, baselined=True)

    def as_warning(self) -> "Finding":
        return replace(self, severity=SEVERITY_WARNING)

    @property
    def blocking(self) -> bool:
        """True when this finding should fail the run."""
        return (self.severity == SEVERITY_ERROR and not self.suppressed
                and not self.baselined)

    def render(self) -> str:
        marks = ""
        if self.severity != SEVERITY_ERROR:
            marks += f" ({self.severity})"
        if self.suppressed:
            marks += " (suppressed)"
        if self.baselined:
            marks += " (baselined)"
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{marks}"


@dataclass
class LintReport:
    """Everything one engine run produced, split by suppression state."""

    findings: list[Finding] = field(default_factory=list)
    #: Number of Python modules the engine parsed.
    modules_checked: int = 0
    #: Names of the rules that ran.
    rules_run: tuple[str, ...] = ()
    #: Incremental-cache accounting for this run (both zero without a cache).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock seconds pass 1 (discovery + parse + index) took.
    index_seconds: float = 0.0
    #: Tree-wide dependence/effect tallies: ``{"loops": {classification:
    #: count}, "effects": {effect-or-"pure": function count}}``.  Empty
    #: when the report was built without a project index.
    analysis: dict = field(default_factory=dict)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def errors(self) -> list[Finding]:
        return [finding for finding in self.unsuppressed
                if finding.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [finding for finding in self.unsuppressed
                if finding.severity == SEVERITY_WARNING]

    @property
    def blocking(self) -> list[Finding]:
        """Unsuppressed, non-baselined errors: what actually fails the gate."""
        return [finding for finding in self.findings if finding.blocking]

    @property
    def baselined(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        """True when nothing blocking was found (the CI gate)."""
        return not self.blocking
