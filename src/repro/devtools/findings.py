"""Finding and report types shared by the lint engine, rules and reporters.

A :class:`Finding` is one rule violation anchored to a file and line.  The
engine marks findings whose line carries a ``# repro: allow-<rule>`` comment
as *suppressed*; they are still collected (so reporters can show them) but do
not fail the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line``."""

    #: Path of the offending file.  Module findings are relative to the scan
    #: root (e.g. ``repro/core/scat.py``); repository-level findings (docs,
    #: test manifests) are relative to the repository root.
    path: str
    #: 1-based line number the finding anchors to.
    line: int
    #: Registry name of the rule that fired (e.g. ``float-equality``).
    rule: str
    #: Human-readable explanation of what is wrong and how to fix it.
    message: str
    #: True when a ``# repro: allow-<rule>`` comment covers this line.
    suppressed: bool = False

    def as_suppressed(self) -> "Finding":
        return replace(self, suppressed=True)

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"


@dataclass
class LintReport:
    """Everything one engine run produced, split by suppression state."""

    findings: list[Finding] = field(default_factory=list)
    #: Number of Python modules the engine parsed.
    modules_checked: int = 0
    #: Names of the rules that ran.
    rules_run: tuple[str, ...] = ()

    @property
    def unsuppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def ok(self) -> bool:
        """True when nothing unsuppressed was found (the CI gate)."""
        return not self.unsuppressed
