"""Render a LintReport for humans (text) or tooling (JSON)."""

from __future__ import annotations

import json

from repro.devtools.findings import LintReport


def render_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """One finding per line plus a one-line summary, flake8-style."""
    lines = [finding.render() for finding in report.unsuppressed]
    if show_suppressed:
        lines.extend(finding.render() for finding in report.suppressed)
    n_bad = len(report.unsuppressed)
    n_ok = len(report.suppressed)
    summary = (f"{n_bad} finding{'s' if n_bad != 1 else ''}"
               f" ({n_ok} suppressed) in {report.modules_checked} modules")
    if n_bad == 0 and not lines:
        return f"OK: {summary}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable form for CI annotations."""
    payload = {
        "modules_checked": report.modules_checked,
        "rules_run": list(report.rules_run),
        "counts": {
            "unsuppressed": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
        },
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
                "suppressed": finding.suppressed,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
