"""Render a LintReport for humans (text) or tooling (JSON)."""

from __future__ import annotations

import json

from repro.devtools.findings import LintReport


def render_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """One finding per line plus a one-line summary, flake8-style."""
    lines = [finding.render() for finding in report.unsuppressed]
    if show_suppressed:
        lines.extend(finding.render() for finding in report.suppressed)
    n_blocking = len(report.blocking)
    n_warn = len(report.warnings)
    n_base = len(report.baselined)
    n_ok = len(report.suppressed)
    summary = (f"{n_blocking} blocking finding"
               f"{'s' if n_blocking != 1 else ''}"
               f" ({n_warn} warnings, {n_base} baselined, {n_ok} suppressed)"
               f" in {report.modules_checked} modules")
    if report.cache_hits or report.cache_misses:
        summary += (f" [cache: {report.cache_hits} hits,"
                    f" {report.cache_misses} misses]")
    if not lines:
        return f"OK: {summary}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable form for CI annotations.

    The schema is pinned by tests/devtools/test_reporters.py; extend it
    additively and update the golden file in the same change.
    """
    payload = {
        "analysis": report.analysis,
        "modules_checked": report.modules_checked,
        "rules_run": list(report.rules_run),
        "counts": {
            "unsuppressed": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
            "blocking": len(report.blocking),
            "warnings": len(report.warnings),
            "baselined": len(report.baselined),
        },
        "cache": {
            "hits": report.cache_hits,
            "misses": report.cache_misses,
        },
        "timing": {
            "pass1_seconds": round(report.index_seconds, 3),
        },
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
                "severity": finding.severity,
                "suppressed": finding.suppressed,
                "baselined": finding.baselined,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
