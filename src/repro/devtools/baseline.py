"""Checked-in baseline of grandfathered findings.

A baseline lets a new rule land with ``error`` severity while the tree is
still being swept: existing findings are recorded in
``.repro-lint-baseline.json`` and marked ``baselined`` (reported, but not
blocking) until someone fixes them and regenerates the file with
``repro-lint --write-baseline``.  ``--no-baseline`` runs strict.

Entries match on ``(path, rule, message)`` -- deliberately *not* on line
numbers, so unrelated edits above a grandfathered finding do not break the
build.  A finding that changes its message (e.g. because the offending code
changed) stops matching and must be re-fixed or re-baselined, which is the
point.

The committed baseline of this repository is empty: the R5--R8 sweep fixed
everything it found.  The machinery stays because the next rule family will
want it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.findings import Finding

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Set of grandfathered findings keyed by ``(path, rule, message)``."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @staticmethod
    def key(finding: Finding) -> tuple[str, str, str]:
        return (finding.path, finding.rule, finding.message)

    def matches(self, finding: Finding) -> bool:
        return self.key(finding) in self.entries

    def apply(self, findings: Iterable[Finding]) -> list[Finding]:
        """Mark every matching, unsuppressed finding as baselined."""
        return [finding.as_baselined()
                if not finding.suppressed and self.matches(finding)
                else finding
                for finding in findings]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; missing or corrupt files mean "empty"."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls()
        entries = set()
        for entry in payload.get("findings", []):
            try:
                entries.add((entry["path"], entry["rule"], entry["message"]))
            except (KeyError, TypeError):
                continue
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries={cls.key(finding) for finding in findings})

    def write(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {"path": entry[0], "rule": entry[1], "message": entry[2]}
                for entry in sorted(self.entries)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
