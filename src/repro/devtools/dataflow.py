"""Intraprocedural data-flow analysis: CFG, reaching defs, tag lattice.

The R1--R9 families see *occurrences* -- a call here, a parameter there.
The R10--R12 families need to know how values *flow*: which names hold a
Generator when a loop body draws from it, which module globals a
worker-reachable function touches, which shape/dtype an array carries at a
call site.  This module supplies the shared machinery:

* :func:`build_cfg` -- a statement-level control-flow graph per function
  (compound statements contribute their *header* -- test, iterator,
  context expression -- as a CFG statement; their bodies become successor
  blocks, with back edges for loops and conservative edges for ``try``).
* :func:`reaching_definitions` -- the classic forward may-analysis over
  the CFG; yields per-statement reaching-def sets and the def-use chains
  the pass-1 index serializes (:class:`DefUse`).
* :class:`TagFlow` -- a small abstract-value lattice (sets of
  :data:`TAG_RNG` / :data:`TAG_UNORDERED` tags, joined by union at CFG
  merge points) propagated through assignments, containers and calls.
  ``sorted(...)`` launders the unordered tag; ``list(...)``/``tuple(...)``
  keep it (materializing a set does not order it).
* :func:`global_access` -- per-function reads/writes of module-level
  names, the summaries the fork-safety rule (R11) aggregates over the
  call graph.

Everything here is deliberately conservative in the direction each client
rule needs: reaching definitions and tag sets over-approximate (more flow
reported than real), so a *hazard* finding rests on provable flow, while
the absence of a tag never fires anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

TAG_RNG = "rng"
TAG_UNORDERED = "unordered"

#: Call tails that mint RNG-tagged values (Generators, SeedSequences and
#: their spawned children all carry draw-order state).
_RNG_SOURCES = {"default_rng", "rng_from_seed", "spawn_run_seeds",
                "SeedSequence", "spawn"}
#: Call tails that produce unordered containers or views.
_UNORDERED_SOURCES = {"set", "frozenset", "keys", "values", "items"}
#: Call tails that impose an order on their argument (launder the tag).
_ORDERING_CALLS = {"sorted"}
#: Call tails that materialize without ordering (the tag survives).
_TRANSPARENT_CALLS = {"list", "tuple", "iter", "reversed", "enumerate"}

#: Generator-typed annotations that seed the RNG tag on parameters.
_RNG_ANNOTATIONS = ("Generator", "SeedSequence")


# ---------------------------------------------------------------------------
# control-flow graph

@dataclass
class Block:
    """One basic block: CFG-statement ids plus successor block ids."""

    id: int
    stmts: list[int] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    #: Synthetic definitions at block entry (``except E as name:``).
    extra_defs: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """Statement-level CFG of one function body."""

    blocks: list[Block] = field(default_factory=list)
    #: CFG-statement id -> the AST statement it stands for.
    stmts: list[ast.stmt] = field(default_factory=list)

    def new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block

    def preds(self) -> dict[int, set[int]]:
        incoming: dict[int, set[int]] = {b.id: set() for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                incoming[succ].add(block.id)
        return incoming


_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class _CFGBuilder:
    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self.current = self.cfg.new_block()
        #: (loop header block id, loop exit block id) innermost-last.
        self.loops: list[tuple[int, int]] = []

    def _add(self, node: ast.stmt) -> int:
        stmt_id = len(self.cfg.stmts)
        self.cfg.stmts.append(node)
        self.current.stmts.append(stmt_id)
        return stmt_id

    def _edge(self, source: int, target: int) -> None:
        self.cfg.blocks[source].succs.add(target)

    def _start_block(self, *preds: int) -> Block:
        block = self.cfg.new_block()
        for pred in preds:
            self._edge(pred, block.id)
        return block

    def build(self, body: Sequence[ast.stmt]) -> ControlFlowGraph:
        self._body(body)
        return self.cfg

    def _body(self, body: Sequence[ast.stmt]) -> None:
        for node in body:
            self._stmt(node)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._add(node)
            self._body(node.body)
        elif isinstance(node, ast.Try):
            self._try(node)
        elif isinstance(node, ast.Match):
            self._match(node)
        else:
            self._add(node)
            if isinstance(node, _TERMINATORS):
                self._terminate(node)

    def _terminate(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Break) and self.loops:
            self._edge(self.current.id, self.loops[-1][1])
        elif isinstance(node, ast.Continue) and self.loops:
            self._edge(self.current.id, self.loops[-1][0])
        # Whatever lexically follows is unreachable from here; give it a
        # fresh predecessor-less block so defs do not leak across.
        self.current = self.cfg.new_block()

    def _if(self, node: ast.If) -> None:
        self._add(node)
        header = self.current.id
        self.current = self._start_block(header)
        self._body(node.body)
        then_exit = self.current.id
        if node.orelse:
            self.current = self._start_block(header)
            self._body(node.orelse)
            else_exit = self.current.id
            self.current = self._start_block(then_exit, else_exit)
        else:
            self.current = self._start_block(then_exit, header)

    def _loop(self, node: ast.While | ast.For | ast.AsyncFor) -> None:
        entry = self.current.id
        header = self._start_block(entry)
        self.current = header
        self._add(node)
        exit_block = self.cfg.new_block()
        body_entry = self._start_block(header.id)
        if not node.orelse:
            # With an ``else`` clause the *only* normal exit runs through
            # it (header -> else -> exit); ``break`` still edges straight
            # to the exit block, correctly bypassing the else body.
            self._edge(header.id, exit_block.id)
        self.loops.append((header.id, exit_block.id))
        self.current = body_entry
        self._body(node.body)
        self._edge(self.current.id, header.id)  # back edge
        self.loops.pop()
        if node.orelse:
            self.current = self._start_block(header.id)
            self._body(node.orelse)
            self._edge(self.current.id, exit_block.id)
        self.current = exit_block

    def _try(self, node: ast.Try) -> None:
        entry = self.current.id
        self.current = self._start_block(entry)
        self._body(node.body)
        body_exit = self.current.id
        exits = [body_exit]
        for handler in node.handlers:
            # Conservative: an exception may fire before or after any
            # statement of the body, so the handler sees defs from both
            # the entry and the body's end.
            block = self._start_block(entry, body_exit)
            if handler.name:
                block.extra_defs.append((handler.name, handler.lineno))
            self.current = block
            self._body(handler.body)
            exits.append(self.current.id)
        if node.orelse:
            self.current = self._start_block(body_exit)
            self._body(node.orelse)
            exits[0] = self.current.id
        self.current = self._start_block(*exits)
        if node.finalbody:
            self._body(node.finalbody)

    def _match(self, node: ast.Match) -> None:
        self._add(node)
        header = self.current.id
        exits = [header]  # no case may match
        for case in node.cases:
            self.current = self._start_block(header)
            for name in _pattern_names(case.pattern):
                self.current.extra_defs.append((name, case.pattern.lineno))
            self._body(case.body)
            exits.append(self.current.id)
        self.current = self._start_block(*exits)


def _pattern_names(pattern: ast.pattern) -> Iterator[str]:
    for node in ast.walk(pattern):
        if isinstance(node, (ast.MatchAs, ast.MatchStar)) and node.name:
            yield node.name


def build_cfg(body: Sequence[ast.stmt]) -> ControlFlowGraph:
    """Statement-level CFG of a function body (or any statement list)."""
    return _CFGBuilder().build(body)


# ---------------------------------------------------------------------------
# per-statement defs and uses

def _target_names(target: ast.expr) -> Iterator[str]:
    # Only Store-context names are bindings: in ``x[k] = v`` or
    # ``x.attr = v`` the inner ``x`` is *read* (Load), not rebound, so it
    # must count as neither a def nor a locally bound name.
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield node.id


def stmt_defs(node: ast.stmt) -> list[str]:
    """Names this statement (re)binds -- header-only for compound stmts."""
    if isinstance(node, ast.Assign):
        return [name for target in node.targets
                for name in _target_names(target)]
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return list(_target_names(node.target))
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return list(_target_names(node.target))
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return [name for item in node.items if item.optional_vars
                for name in _target_names(item.optional_vars)]
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return [node.name]
    if isinstance(node, (ast.Import, ast.ImportFrom)):
        return [(alias.asname or alias.name.split(".")[0])
                for alias in node.names]
    return []


def _header_exprs(node: ast.stmt) -> list[ast.expr]:
    """The expressions a compound statement evaluates *itself*."""
    if isinstance(node, (ast.If, ast.While)):
        return [node.test]
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in node.items]
    if isinstance(node, ast.Match):
        return [node.subject]
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        exprs: list[ast.expr] = list(node.decorator_list)
        exprs.extend(d for d in node.args.defaults)
        exprs.extend(d for d in node.args.kw_defaults if d is not None)
        return exprs
    if isinstance(node, ast.ClassDef):
        return [*node.decorator_list, *node.bases]
    return []


_COMPOUND = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.With,
             ast.AsyncWith, ast.Try, ast.Match, ast.FunctionDef,
             ast.AsyncFunctionDef, ast.ClassDef)


def stmt_use_exprs(node: ast.stmt) -> list[ast.expr]:
    """Expressions evaluated by this CFG statement (bodies excluded)."""
    if isinstance(node, _COMPOUND):
        return _header_exprs(node)
    return [child for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)]


_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _comp_bound_names(node: ast.expr) -> set[str]:
    """Names bound by a comprehension's own generators."""
    bound: set[str] = set()
    for gen in node.generators:
        bound.update(_target_names(gen.target))
    return bound


def _expr_load_nodes(node: ast.expr, bound: set[str],
                     out: list[ast.Name]) -> None:
    """Collect Load-context Names, honouring comprehension scoping.

    A comprehension's targets are local to the comprehension: only the
    *first* iterable evaluates in the enclosing scope, everything else
    (element, conditions, later iterables) sees the targets.  Names bound
    there are therefore not uses of same-named outer variables.
    """
    if isinstance(node, ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id not in bound:
            out.append(node)
        return
    if isinstance(node, _COMP_NODES):
        inner = bound | _comp_bound_names(node)
        first = node.generators[0]
        _expr_load_nodes(first.iter, bound, out)
        for cond in first.ifs:
            _expr_load_nodes(cond, inner, out)
        for gen in node.generators[1:]:
            _expr_load_nodes(gen.iter, inner, out)
            for cond in gen.ifs:
                _expr_load_nodes(cond, inner, out)
        parts = (node.key, node.value) if isinstance(node, ast.DictComp) \
            else (node.elt,)
        for part in parts:
            _expr_load_nodes(part, inner, out)
        return
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            _expr_load_nodes(child, bound, out)
        elif isinstance(child, ast.keyword):
            _expr_load_nodes(child.value, bound, out)
        elif isinstance(child, ast.arguments):  # lambda defaults
            for default in [*child.defaults,
                            *(d for d in child.kw_defaults if d)]:
                _expr_load_nodes(default, bound, out)


def stmt_uses(node: ast.stmt) -> list[str]:
    """Names this CFG statement reads (header-only for compound stmts)."""
    loads: list[ast.Name] = []
    for expr in stmt_use_exprs(node):
        _expr_load_nodes(expr, set(), loads)
    uses = [load.id for load in loads]
    if isinstance(node, ast.AugAssign):
        uses.extend(_target_names(node.target))
    return uses


# ---------------------------------------------------------------------------
# reaching definitions

@dataclass(frozen=True)
class DefUse:
    """One definition and the lines of the uses it reaches."""

    name: str
    def_line: int
    use_lines: tuple[int, ...] = ()

    def to_list(self) -> list:
        return [self.name, self.def_line, list(self.use_lines)]

    @classmethod
    def from_list(cls, data: Sequence) -> "DefUse":
        return cls(name=data[0], def_line=data[1],
                   use_lines=tuple(data[2]))


class ReachingDefinitions:
    """Worklist reaching-defs over a CFG; defs keyed ``(name, site)``."""

    PARAM_SITE = -1  # synthetic site id for parameter definitions

    def __init__(self, cfg: ControlFlowGraph,
                 params: Sequence[str] = ()) -> None:
        self.cfg = cfg
        self.params = tuple(params)
        #: block id -> {name -> frozenset of def site ids} at block entry.
        self.block_in: dict[int, dict[str, frozenset[int]]] = {}
        self._solve()

    def _solve(self) -> None:
        entry_env = {name: frozenset([self.PARAM_SITE])
                     for name in self.params}
        self.block_in = {block.id: ({} if block.id else dict(entry_env))
                         for block in self.cfg.blocks}
        preds = self.cfg.preds()
        changed = True
        while changed:
            changed = False
            for block in self.cfg.blocks:
                env = dict(self.block_in[block.id]) if block.id == 0 \
                    else _join([self._block_out(p) for p in
                                sorted(preds[block.id])] or [{}])
                if block.id == 0:
                    env = _join([env, entry_env])
                if env != self.block_in[block.id]:
                    self.block_in[block.id] = env
                    changed = True

    def _block_out(self, block_id: int) -> dict[str, frozenset[int]]:
        env = dict(self.block_in[block_id])
        block = self.cfg.blocks[block_id]
        for name, _ in block.extra_defs:
            env[name] = frozenset()
        for stmt_id in block.stmts:
            for name in stmt_defs(self.cfg.stmts[stmt_id]):
                env[name] = frozenset([stmt_id])
        return env

    def defs_reaching(self) -> dict[int, dict[str, frozenset[int]]]:
        """Per CFG-statement id: ``name -> def site ids`` at its entry."""
        reaching: dict[int, dict[str, frozenset[int]]] = {}
        for block in self.cfg.blocks:
            env = {name: sites for name, sites
                   in self.block_in[block.id].items()}
            for name, _ in block.extra_defs:
                env[name] = frozenset()
            for stmt_id in block.stmts:
                reaching[stmt_id] = dict(env)
                for name in stmt_defs(self.cfg.stmts[stmt_id]):
                    env[name] = frozenset([stmt_id])
        return reaching


def _join(envs: Sequence[dict[str, frozenset[int]]]
          ) -> dict[str, frozenset[int]]:
    joined: dict[str, frozenset[int]] = {}
    for env in envs:
        for name, sites in env.items():
            joined[name] = joined.get(name, frozenset()) | sites
    return joined


def comprehension_def_uses(node: ast.stmt) -> list[DefUse]:
    """Def-use records for names bound only inside comprehensions.

    Comprehension targets never escape to the enclosing function scope,
    so the CFG-level analysis cannot see them; each target still gets a
    :class:`DefUse` record whose definition site is the generator target
    and whose uses are the Load occurrences in the parts it scopes over
    (its conditions, later generators, and the element expression).
    """
    records: list[DefUse] = []
    for expr in stmt_use_exprs(node):
        for sub in ast.walk(expr):
            if isinstance(sub, _COMP_NODES):
                records.extend(_comp_records(sub))
    return records


def _comp_records(comp: ast.expr) -> list[DefUse]:
    records: list[DefUse] = []
    for index, gen in enumerate(comp.generators):
        scoped: list[ast.expr] = list(gen.ifs)
        for later in comp.generators[index + 1:]:
            scoped.append(later.iter)
            scoped.extend(later.ifs)
        if isinstance(comp, ast.DictComp):
            scoped.extend((comp.key, comp.value))
        else:
            scoped.append(comp.elt)
        loads: list[ast.Name] = []
        for part in scoped:
            # bound=set(): a nested comprehension re-shadows its own
            # targets inside the collector, so shadowed loads drop out.
            _expr_load_nodes(part, set(), loads)
        for name in sorted(set(_target_names(gen.target))):
            records.append(DefUse(
                name=name, def_line=gen.target.lineno,
                use_lines=tuple(sorted({load.lineno for load in loads
                                        if load.id == name}))))
    return records


def def_use_records(func: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> list[DefUse]:
    """Def-use chains of one function, in (def line, name) order.

    Parameters appear with the ``def`` line as their definition site.
    These records are serialized into the pass-1 module index so warm
    cache runs can replay them without re-running the analysis.
    """
    cfg = build_cfg(func.body)
    params = [arg.arg for arg in [*func.args.posonlyargs, *func.args.args,
                                  *func.args.kwonlyargs]
              + [a for a in (func.args.vararg, func.args.kwarg) if a]]
    analysis = ReachingDefinitions(cfg, params)
    reaching = analysis.defs_reaching()
    uses: dict[tuple[str, int], set[int]] = {}
    for stmt_id, node in enumerate(cfg.stmts):
        env = reaching.get(stmt_id, {})
        for name in stmt_uses(node):
            for site in env.get(name, frozenset()):
                key = (name, func.lineno if site == analysis.PARAM_SITE
                       else cfg.stmts[site].lineno)
                uses.setdefault(key, set()).add(node.lineno)
    records = [DefUse(name=name, def_line=line,
                      use_lines=tuple(sorted(lines)))
               for (name, line), lines in uses.items()]
    for node in cfg.stmts:
        records.extend(comprehension_def_uses(node))
    return sorted(records, key=lambda r: (r.def_line, r.name))


# ---------------------------------------------------------------------------
# tag lattice

Tags = frozenset


def tags_of_expr(node: ast.expr, env: dict[str, Tags]) -> Tags:
    """Abstract tags of an expression under ``env`` (bottom = empty set)."""
    if isinstance(node, ast.Name):
        return env.get(node.id, frozenset())
    if isinstance(node, ast.Call):
        return _call_tags(node, env)
    if isinstance(node, (ast.Set, ast.SetComp)):
        return frozenset([TAG_UNORDERED])
    if isinstance(node, ast.DictComp):
        return frozenset([TAG_UNORDERED]) \
            | tags_of_expr(node.generators[0].iter, env)
    if isinstance(node, ast.GeneratorExp):
        return tags_of_expr(node.generators[0].iter, env)
    if isinstance(node, (ast.Subscript, ast.Starred)):
        return tags_of_expr(node.value, env)
    if isinstance(node, ast.Attribute):
        base = tags_of_expr(node.value, env)
        if node.attr == "rng":  # ``self.rng`` by naming convention
            return base | frozenset([TAG_RNG])
        return base
    if isinstance(node, (ast.Tuple, ast.List)):
        tags: Tags = frozenset()
        for element in node.elts:
            tags |= tags_of_expr(element, env)
        return tags
    if isinstance(node, ast.IfExp):
        return tags_of_expr(node.body, env) \
            | tags_of_expr(node.orelse, env)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        # Set algebra keeps the unordered tag (``a | b``, ``a - b``).
        combined = tags_of_expr(node.left, env) \
            | tags_of_expr(node.right, env)
        return combined & frozenset([TAG_UNORDERED])
    if isinstance(node, ast.NamedExpr):
        return tags_of_expr(node.value, env)
    return frozenset()


def _call_tags(node: ast.Call, env: dict[str, Tags]) -> Tags:
    func = node.func
    tail = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    if tail is None:
        return frozenset()
    if tail in _RNG_SOURCES:
        return frozenset([TAG_RNG])
    if tail in _ORDERING_CALLS:
        return frozenset()
    if tail in _UNORDERED_SOURCES:
        if tail in ("set", "frozenset") or isinstance(func, ast.Attribute):
            return frozenset([TAG_UNORDERED])
        return frozenset()
    if tail in _TRANSPARENT_CALLS:
        if node.args:
            return tags_of_expr(node.args[0], env)
        return frozenset()
    return frozenset()


def seed_param_tags(func: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> dict[str, Tags]:
    """Initial tag environment: parameters that carry RNG state."""
    env: dict[str, Tags] = {}
    for arg in [*func.args.posonlyargs, *func.args.args,
                *func.args.kwonlyargs]:
        annotation = ast.unparse(arg.annotation) \
            if arg.annotation is not None else ""
        if arg.arg == "rng" or any(marker in annotation
                                   for marker in _RNG_ANNOTATIONS):
            env[arg.arg] = frozenset([TAG_RNG])
    return env


class TagFlow:
    """Fixpoint tag propagation over a function's CFG.

    ``at(stmt)`` returns the name -> tags environment holding when the
    given AST statement starts executing (keyed by object identity, so
    callers walk the same tree they analyzed).
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef
                 ) -> None:
        self.cfg = build_cfg(func.body)
        self._entry_env = seed_param_tags(func)
        self._at: dict[int, dict[str, Tags]] = {}
        self._solve()

    def at(self, stmt: ast.stmt) -> dict[str, Tags]:
        return self._at.get(id(stmt), {})

    def _solve(self) -> None:
        block_in: dict[int, dict[str, Tags]] = {
            block.id: {} for block in self.cfg.blocks}
        block_in[0] = dict(self._entry_env)
        preds = self.cfg.preds()
        changed = True
        while changed:
            changed = False
            for block in self.cfg.blocks:
                envs = [self._transfer_block(p, block_in)
                        for p in sorted(preds[block.id])]
                if block.id == 0:
                    envs.append(dict(self._entry_env))
                env = _join_tags(envs or [{}])
                if env != block_in[block.id]:
                    block_in[block.id] = env
                    changed = True
        for block in self.cfg.blocks:
            env = dict(block_in[block.id])
            for stmt_id in block.stmts:
                node = self.cfg.stmts[stmt_id]
                self._at[id(node)] = dict(env)
                self._transfer_stmt(node, env)

    def _transfer_block(self, block_id: int,
                        block_in: dict[int, dict[str, Tags]]
                        ) -> dict[str, Tags]:
        env = dict(block_in[block_id])
        for stmt_id in self.cfg.blocks[block_id].stmts:
            self._transfer_stmt(self.cfg.stmts[stmt_id], env)
        return env

    def _transfer_stmt(self, node: ast.stmt,
                       env: dict[str, Tags]) -> None:
        if isinstance(node, ast.Assign):
            tags = tags_of_expr(node.value, env)
            for target in node.targets:
                for name in _target_names(target):
                    env[name] = tags
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            for name in _target_names(node.target):
                env[name] = tags_of_expr(node.value, env)
        elif isinstance(node, ast.AugAssign):
            extra = tags_of_expr(node.value, env)
            for name in _target_names(node.target):
                env[name] = env.get(name, frozenset()) | extra
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            tags = tags_of_expr(node.iter, env)
            for name in _target_names(node.target):
                env[name] = tags
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is None:
                    continue
                tags = tags_of_expr(item.context_expr, env)
                for name in _target_names(item.optional_vars):
                    env[name] = tags


def _join_tags(envs: Sequence[dict[str, Tags]]) -> dict[str, Tags]:
    joined: dict[str, Tags] = {}
    for env in envs:
        for name, tags in env.items():
            joined[name] = joined.get(name, frozenset()) | tags
    return joined


# ---------------------------------------------------------------------------
# module-global access summaries (for R11)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {"append", "extend", "insert", "remove", "pop", "clear",
                    "add", "discard", "update", "setdefault", "popitem",
                    "sort", "reverse", "write", "writelines", "acquire",
                    "release"}


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef
                 ) -> tuple[set[str], set[str]]:
    """(locally bound names, names declared ``global``) of a function."""
    bound: set[str] = {arg.arg for arg in [
        *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs]}
    for extra in (func.args.vararg, func.args.kwarg):
        if extra is not None:
            bound.add(extra.arg)
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.stmt):
            bound.update(stmt_defs(node))
        elif isinstance(node, ast.comprehension):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.NamedExpr):
            bound.update(_target_names(node.target))
    return bound - declared_global, declared_global


def global_access(func: ast.FunctionDef | ast.AsyncFunctionDef,
                  module_globals: set[str]
                  ) -> tuple[list[tuple[str, int]],
                             list[tuple[str, int, str]]]:
    """``(reads, writes)`` of module-level names inside one function.

    ``module_globals`` is the set of names *assigned* at module scope
    (imports and defs excluded by the caller).  Reads are ``(name, line)``;
    writes are ``(name, line, how)`` with ``how`` one of ``rebind``
    (assignment under a ``global`` declaration), ``mutate`` (an in-place
    mutator method call) or ``store`` (subscript/attribute store).
    Nested functions fold into their parent, matching the index's
    call-record convention.
    """
    locals_, declared_global = _local_names(func)
    reads: list[tuple[str, int]] = []
    writes: list[tuple[str, int, str]] = []

    def is_global(name: str) -> bool:
        return name in module_globals and name not in locals_

    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and is_global(node.id):
            reads.append((node.id, node.lineno))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store) \
                and node.id in declared_global \
                and node.id in module_globals:
            writes.append((node.id, node.lineno, "rebind"))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATOR_METHODS \
                and isinstance(node.func.value, ast.Name) \
                and is_global(node.func.value.id):
            writes.append((node.func.value.id, node.lineno, "mutate"))
        elif isinstance(node, (ast.Subscript, ast.Attribute)) \
                and isinstance(node.ctx, (ast.Store, ast.Del)) \
                and isinstance(node.value, ast.Name) \
                and is_global(node.value.id):
            writes.append((node.value.id, node.lineno, "store"))
    reads.sort(key=lambda entry: (entry[1], entry[0]))
    writes.sort(key=lambda entry: (entry[1], entry[0]))
    return reads, writes
