"""Loop-carried dependence analysis for vectorization readiness.

The ROADMAP's batched-kernel rewrite needs to know, per loop, whether the
iterations are independent (safe to vectorize), fold into an accumulator
(a reduction, vectorizable with ``np.sum``-style primitives), or carry
arbitrary state across iterations (must stay serial or be restructured).
:func:`analyze_loops` classifies every ``for``/``while`` loop of one
function using the dataflow layer's CFG and reaching definitions:

* The loop **body** is analyzed as its own CFG with every name treated as
  a synthetic parameter.  A use that the parameter definition still
  reaches is *upward-exposed*: on iterations after the first it reads the
  value left by the previous iteration -- a loop-carried dependence.
* In-place mutations (``acc.append(...)``, ``self.total += ...``,
  ``buf[i] = ...``) never rebind the name, so they are carried whenever
  the mutated object flows in from outside the iteration.
* Carried names whose every write is *reduction-shaped* (``x += e``,
  ``x = x + e``, ``x = min(x, e)``, accumulating method calls) classify
  the loop as a reduction; any other carried write makes it serial.

Alongside the classification, :func:`analyze_loops` records the perf
antipatterns the kernel PR hunts for (Python-level iteration over ndarray
elements, ``list.append`` feeding ``np.asarray``, scalar ``np.*`` calls,
array allocation and dtype conversion inside the loop body).  Summaries
serialize into the pass-1 index (:class:`LoopSummary`) so warm-cache runs
replay them, and the hotspot report ranks them by call-graph reachability.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.devtools.dataflow import (
    ReachingDefinitions,
    _MUTATOR_METHODS,
    _expr_load_nodes,
    _target_names,
    build_cfg,
    stmt_defs,
    stmt_uses,
)

CLASS_VECTORIZABLE = "vectorizable"
CLASS_REDUCTION = "reduction"
CLASS_SERIAL = "serial"

#: Mutator methods that only accumulate (order-insensitive growth); every
#: other in-place mutation is treated as arbitrary serial state.
_ACCUMULATE_METHODS = {"append", "extend", "add", "update"}

#: Binary ops that shape a reduction (`x = x + e`, `x |= e`, ...).
_REDUCTION_OPS = (ast.Add, ast.Sub, ast.Mult, ast.BitOr, ast.BitAnd,
                  ast.BitXor)

#: numpy call tails that allocate/construct arrays.
_NP_CONSTRUCTORS = {"array", "asarray", "ascontiguousarray", "zeros",
                    "ones", "empty", "full", "zeros_like", "ones_like",
                    "empty_like", "full_like", "arange", "linspace",
                    "eye", "concatenate", "stack", "column_stack",
                    "vstack", "hstack"}

#: numpy call tails that combine a Python-built list into an array (the
#: sink half of the append-then-asarray antipattern).
_NP_GATHERERS = {"array", "asarray", "stack", "concatenate", "column_stack",
                 "vstack", "hstack"}

ANTI_LOOP_OVER_NDARRAY = "loop-over-ndarray"
ANTI_APPEND_INTO_ARRAY = "append-into-array"
ANTI_SCALAR_NP_CALL = "scalar-np-call"
ANTI_ALLOC_IN_LOOP = "alloc-in-loop"
ANTI_ASTYPE_IN_LOOP = "astype-in-loop"


@dataclass(frozen=True)
class LoopSummary:
    """One loop's dependence classification, serialized into the index."""

    lineno: int
    kind: str                      # "for" | "while"
    classification: str            # vectorizable | reduction | serial
    carried: tuple[str, ...]       # names carried across iterations
    antipatterns: tuple[str, ...]  # ANTI_* labels, sorted
    n_calls: int                   # call sites inside the loop (weight)
    end_lineno: int = 0            # last body line (hotspot call matching)

    def to_list(self) -> list:
        return [self.lineno, self.kind, self.classification,
                list(self.carried), list(self.antipatterns), self.n_calls,
                self.end_lineno]

    @classmethod
    def from_list(cls, data: Sequence) -> "LoopSummary":
        return cls(lineno=data[0], kind=data[1], classification=data[2],
                   carried=tuple(data[3]), antipatterns=tuple(data[4]),
                   n_calls=data[5], end_lineno=data[6])


def analyze_loops(func: ast.FunctionDef | ast.AsyncFunctionDef,
                  numpy_names: frozenset[str] = frozenset()
                  ) -> list[LoopSummary]:
    """Classify every loop of ``func`` (nested loops included).

    ``numpy_names`` is the module's set of local names bound to the numpy
    module (import aliases), used by the antipattern detectors.
    """
    ndarray_locals = _ndarray_locals(func, numpy_names)
    gathered = _gathered_names(func, numpy_names)
    summaries = [_summarize(loop, numpy_names, ndarray_locals, gathered)
                 for loop in _loops_of(func)]
    return sorted(summaries, key=lambda s: s.lineno)


def _loops_of(func: ast.AST) -> Iterator[ast.For | ast.While]:
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node


# ---------------------------------------------------------------------------
# carried-name detection

def _body_names(body: Sequence[ast.stmt]) -> set[str]:
    """Every name mentioned anywhere in the loop body."""
    names: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _mutations(body: Sequence[ast.stmt],
               targets: set[str]) -> list[tuple[str, ast.stmt, str]]:
    """(root name, enclosing stmt, how) for in-place mutations in ``body``.

    ``how`` is ``"accumulate"`` for order-insensitive growth (append-like
    calls, ``x.attr += <reduction op>``) and ``"state"`` for everything
    else (pops, arbitrary attribute stores).  A subscript store indexed
    by a loop target (``out[i] = ...``) writes a distinct element each
    iteration -- an independent scatter, not a mutation at all.
    """
    out: list[tuple[str, ast.stmt, str]] = []
    for stmt in body:
        aug_targets: set[int] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATOR_METHODS:
                root = _root_name(node.func.value)
                if root is not None:
                    how = "accumulate" \
                        if node.func.attr in _ACCUMULATE_METHODS else "state"
                    out.append((root, stmt, how))
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.target, (ast.Attribute,
                                                 ast.Subscript)):
                aug_targets.add(id(node.target))
                root = _root_name(node.target)
                if root is not None:
                    how = "accumulate" \
                        if isinstance(node.op, _REDUCTION_OPS) else "state"
                    out.append((root, stmt, how))
            elif isinstance(node, (ast.Attribute, ast.Subscript)) \
                    and isinstance(node.ctx, (ast.Store, ast.Del)) \
                    and id(node) not in aug_targets:
                if isinstance(node, ast.Subscript) \
                        and isinstance(node.ctx, ast.Store) \
                        and _indexed_by(node, targets):
                    continue  # independent scatter store
                root = _root_name(node)
                if root is not None:
                    out.append((root, stmt, "state"))
    return out


def _indexed_by(node: ast.Subscript, targets: set[str]) -> bool:
    for sub in ast.walk(node.slice):
        if isinstance(sub, ast.Name) and sub.id in targets:
            return True
    return False


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _reduction_shaped(stmt: ast.stmt, name: str) -> bool:
    """Does this def of ``name`` fold the old value with a reduction op?"""
    if isinstance(stmt, ast.AugAssign):
        return isinstance(stmt.op, _REDUCTION_OPS)
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        value = stmt.value
        if isinstance(value, ast.BinOp) \
                and isinstance(value.op, _REDUCTION_OPS):
            return any(isinstance(sub, ast.Name) and sub.id == name
                       for sub in ast.walk(value))
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Name) \
                and value.func.id in ("min", "max"):
            return any(isinstance(arg, ast.Name) and arg.id == name
                       for arg in value.args)
    return False


def _summarize(loop: ast.For | ast.While,
               numpy_names: frozenset[str],
               ndarray_locals: set[str],
               gathered: set[str]) -> LoopSummary:
    body = list(loop.body)
    is_for = isinstance(loop, (ast.For, ast.AsyncFor))
    targets = set(_target_names(loop.target)) if is_for else set()

    cfg = build_cfg(body)
    analysis = ReachingDefinitions(cfg, params=sorted(_body_names(body)))
    reaching = analysis.defs_reaching()

    def upward_exposed(name: str, stmt: ast.stmt) -> bool:
        for stmt_id, node in enumerate(cfg.stmts):
            if node is stmt:
                env = reaching.get(stmt_id, {})
                return analysis.PARAM_SITE in env.get(name, frozenset())
        # Sub-statement of a compound body stmt the CFG flattened away:
        # conservatively treat as exposed.
        return True

    # Names rebound somewhere in the body, keyed to their def stmts.
    bound_defs: dict[str, list[ast.stmt]] = {}
    for stmt_id, node in enumerate(cfg.stmts):
        for name in stmt_defs(node):
            bound_defs.setdefault(name, []).append(node)

    # A rebound name is carried when some body use (or, for while loops,
    # the header test) still sees the previous iteration's value.
    exposed_uses = _exposed_use_names(cfg, analysis, reaching)
    header_uses: set[str] = set()
    if not is_for:
        loads: list[ast.Name] = []
        _expr_load_nodes(loop.test, set(), loads)
        header_uses = {load.id for load in loads}

    carried: set[str] = set()
    reduction_ok: dict[str, bool] = {}
    for name, defs in bound_defs.items():
        if name in targets:
            continue
        if name in exposed_uses or name in header_uses:
            carried.add(name)
            reduction_ok[name] = all(_reduction_shaped(d, name)
                                     for d in defs)

    # Mutated objects are carried when they flow in from outside the
    # iteration (the mutation site is upward-exposed for the root name).
    for root, stmt, how in _mutations(body, targets):
        if root in targets:
            continue
        if root in bound_defs and not upward_exposed(root, stmt):
            continue  # fresh object built earlier in the same iteration
        carried.add(root)
        ok = how == "accumulate"
        reduction_ok[root] = reduction_ok.get(root, True) and ok

    if not carried:
        classification = CLASS_VECTORIZABLE
    elif all(reduction_ok[name] for name in carried):
        classification = CLASS_REDUCTION
    else:
        classification = CLASS_SERIAL
    if not is_for and _constant_test(loop.test):
        # ``while True:`` -- the exit is decided inside the body, so the
        # iteration count itself is serially dependent state.
        classification = CLASS_SERIAL

    antipatterns = _antipatterns(loop, targets, numpy_names,
                                 ndarray_locals, gathered)
    n_calls = sum(1 for stmt in body for node in ast.walk(stmt)
                  if isinstance(node, ast.Call))
    return LoopSummary(lineno=loop.lineno,
                       kind="for" if is_for else "while",
                       classification=classification,
                       carried=tuple(sorted(carried)),
                       antipatterns=antipatterns,
                       n_calls=n_calls,
                       end_lineno=loop.end_lineno or loop.lineno)


def _exposed_use_names(cfg, analysis, reaching) -> set[str]:
    """Names with a body use that the synthetic entry def still reaches."""
    exposed: set[str] = set()
    for stmt_id, node in enumerate(cfg.stmts):
        env = reaching.get(stmt_id, {})
        for name in stmt_uses(node):
            if analysis.PARAM_SITE in env.get(name, frozenset()):
                exposed.add(name)
    return exposed


def _constant_test(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


# ---------------------------------------------------------------------------
# perf antipatterns

def _np_call_tail(node: ast.expr,
                  numpy_names: frozenset[str]) -> str | None:
    """``np.<tail>(...)`` call tail, if the root is a numpy alias."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        root = _root_name(node.func.value)
        if root is not None and root in numpy_names:
            return node.func.attr
    return None


def _ndarray_locals(func: ast.AST,
                    numpy_names: frozenset[str]) -> set[str]:
    """Names assigned from an array constructor anywhere in ``func``."""
    out: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_array = _np_call_tail(value, numpy_names) in _NP_CONSTRUCTORS
        if not is_array and isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr == "astype":
            is_array = True
        if is_array:
            for target in node.targets:
                out.update(_target_names(target))
    return out


def _gathered_names(func: ast.AST,
                    numpy_names: frozenset[str]) -> set[str]:
    """Names later passed to ``np.asarray``/``np.stack``/... as data."""
    out: set[str] = set()
    for node in ast.walk(func):
        if _np_call_tail(node, numpy_names) in _NP_GATHERERS:
            for arg in node.args[:1]:
                root = _root_name(arg)
                if root is not None:
                    out.add(root)
    return out


def _antipatterns(loop: ast.For | ast.While,
                  targets: set[str],
                  numpy_names: frozenset[str],
                  ndarray_locals: set[str],
                  gathered: set[str]) -> tuple[str, ...]:
    found: set[str] = set()
    if isinstance(loop, (ast.For, ast.AsyncFor)) \
            and _iterates_ndarray(loop.iter, numpy_names, ndarray_locals):
        found.add(ANTI_LOOP_OVER_NDARRAY)
    scalar_names = targets if ANTI_LOOP_OVER_NDARRAY in found else set()
    for stmt in loop.body:
        for node in ast.walk(stmt):
            tail = _np_call_tail(node, numpy_names)
            if tail in _NP_CONSTRUCTORS:
                found.add(ANTI_ALLOC_IN_LOOP)
            elif tail is not None and node.args \
                    and all(_scalarish(arg, scalar_names)
                            for arg in node.args):
                found.add(ANTI_SCALAR_NP_CALL)
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "astype":
                found.add(ANTI_ASTYPE_IN_LOOP)
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("append", "extend"):
                root = _root_name(node.func.value)
                if root is not None and root in gathered:
                    found.add(ANTI_APPEND_INTO_ARRAY)
    return tuple(sorted(found))


def _iterates_ndarray(iter_expr: ast.expr,
                      numpy_names: frozenset[str],
                      ndarray_locals: set[str]) -> bool:
    for node in ast.walk(iter_expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in ndarray_locals:
            return True
        if _np_call_tail(node, numpy_names) in _NP_CONSTRUCTORS:
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "astype":
            return True
    return False


def _scalarish(node: ast.expr, scalar_names: set[str]) -> bool:
    """Is this argument provably a Python scalar (not an array)?"""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return node.id in scalar_names
    if isinstance(node, ast.UnaryOp):
        return _scalarish(node.operand, scalar_names)
    if isinstance(node, ast.BinOp):
        return _scalarish(node.left, scalar_names) \
            and _scalarish(node.right, scalar_names)
    return False
