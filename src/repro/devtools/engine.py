"""The lint engine: discovery, pass-1 indexing (cached), pass-2 rules.

A run has two passes:

**Pass 1** touches every file independently: parse, scan suppressions, run
the per-module rules, build the module's
:class:`~repro.devtools.index.ModuleIndex`.  All of it depends only on the
file's bytes, so it is served from the on-disk cache
(:mod:`repro.devtools.cache`) when the content hash matches -- cache hits
skip parsing entirely (ASTs stay lazy).

**Pass 2** assembles the module indexes into a
:class:`~repro.devtools.index.ProjectIndex` and runs every rule's
``check_project`` -- the whole-program families (units, probability
domain, rng reachability, experiment registry) plus the older cross-file
checks (protocol conformance, public API).

Afterwards the engine resolves ``# repro: allow-<rule>`` suppressions and
applies the baseline (:mod:`repro.devtools.baseline`).

Typical use::

    from repro.devtools import LintEngine

    report = LintEngine().lint_paths(["src"])
    if not report.ok:
        ...

Suppressions are line-scoped comments of the form::

    risky_line()  # repro: allow-float-equality -- rationale

    # repro: allow-mutable-default -- rationale
    def helper(cache={}): ...

A trailing comment covers its own line; a comment alone on a line covers the
next line as well (so multi-line statements can be annotated above).  Several
rules can be allowed at once: ``# repro: allow-rule-a,rule-b``.
"""

from __future__ import annotations

import ast
import io
import multiprocessing
import re
import time
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.baseline import Baseline
from repro.devtools.cache import (
    CacheEntry,
    LintCache,
    cache_signature,
    content_digest,
    rule_sources_digest,
)
from repro.devtools.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.dependence import CLASS_REDUCTION, CLASS_SERIAL, \
    CLASS_VECTORIZABLE
from repro.devtools.effects import ALL_EFFECTS, EffectAnalysis
from repro.devtools.findings import Finding, LintReport
from repro.devtools.index import ProjectIndex, build_module_index
from repro.devtools.rules import ModuleContext, ProjectContext, Rule, \
    create_rules
from repro.devtools.shapes import parse_shape_contracts

_SUPPRESS = re.compile(r"#\s*repro:\s*allow-([a-z0-9_,\-]+)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule names allowed on that line."""
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(token.start[0], token.start[1], token.string)
                    for token in tokens if token.type == tokenize.COMMENT]
    except tokenize.TokenizeError:
        return allowed
    lines = source.splitlines()
    for line, column, text in comments:
        match = _SUPPRESS.search(text)
        if match is None:
            continue
        rules = {name.strip() for name in match.group(1).split(",")
                 if name.strip()}
        targets = [line]
        prefix = lines[line - 1][:column] if line - 1 < len(lines) else ""
        if not prefix.strip():
            targets.append(line + 1)  # standalone comment covers next line
        for target in targets:
            allowed.setdefault(target, set()).update(rules)
    return allowed


def normalize_suppression_spans(allowed: dict[int, set[str]],
                                tree: ast.Module) -> dict[int, set[str]]:
    """Extend suppressions over each statement's full span.

    Rules anchor findings at a statement's ``lineno`` -- which for a
    decorated ``def``/``class`` is the ``def`` line, *below* the
    decorators.  A suppression comment on (or just above) a decorator line
    used to miss such findings entirely.  Here every suppression landing
    anywhere inside a statement's header span (first decorator line
    through the anchor line) is mirrored onto the anchor line, so "the
    comment covers the statement it annotates" holds regardless of
    decorators or signature wrapping.
    """
    if not allowed:
        return allowed
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        start = min((decorator.lineno for decorator in node.decorator_list),
                    default=node.lineno)
        if start == node.lineno:
            continue
        span_rules = set()
        for line in range(start, node.lineno):
            span_rules.update(allowed.get(line, ()))
        if span_rules:
            allowed.setdefault(node.lineno, set()).update(span_rules)
    return allowed


def find_repo_root(start: Path) -> Path | None:
    """Nearest ancestor (inclusive) holding a pyproject.toml."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def package_base(path: Path) -> Path:
    """Scan base of a single file: above its outermost package.

    ``src/repro/core/fcat.py`` lints as ``repro/core/fcat.py`` (walking up
    while ``__init__.py`` marks a package), so directory-scoped rules see
    the same paths whether a whole tree or one changed file is linted.
    """
    base = path.parent
    while (base / "__init__.py").is_file() and base.parent != base:
        base = base.parent
    return base


class LintEngine:
    """Run a set of rules over a tree of Python files."""

    def __init__(self, config: LintConfig | None = None,
                 select: Iterable[str] = (),
                 cache_path: Path | None = None,
                 baseline: Baseline | None = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self.rules: list[Rule] = create_rules(select)
        self.baseline = baseline
        self.cache: LintCache | None = None
        #: Wall-clock seconds pass 1 took in the last lint_paths run.
        self.last_index_seconds = 0.0
        self._select = tuple(select)
        if cache_path is not None:
            signature = cache_signature(
                repr(self.config),
                tuple(rule.name for rule in self.rules),
                rule_sources_digest(self.rules))
            self.cache = LintCache(cache_path, signature)

    # -- pass 1 ------------------------------------------------------------

    def _discover(self, paths: Sequence[str | Path]
                  ) -> tuple[Path, list[tuple[Path, str]]]:
        files: list[tuple[Path, str]] = []
        roots = [Path(path) for path in paths]
        scan_root = roots[0] if roots else Path(".")
        for root in roots:
            if root.is_file():
                base = package_base(root)
                files.append((root, root.relative_to(base).as_posix()))
            else:
                for path in sorted(p for p in root.rglob("*.py")
                                   if "__pycache__" not in p.parts):
                    files.append((path, path.relative_to(root).as_posix()))
        return scan_root, files

    def _load_one(self, path: Path, relpath: str) -> tuple[
            ModuleContext | None, CacheEntry | None, Finding | None]:
        """Pass-1 work for one file: cached replay or a fresh build."""
        source = path.read_text(encoding="utf-8")
        digest = content_digest(source)
        if self.cache is not None:
            cached = self.cache.lookup(relpath, digest)
            if cached is not None:
                module = ModuleContext(path=path, relpath=relpath,
                                       source=source,
                                       suppressions=cached.suppressions)
                return module, cached, None
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return None, None, Finding(
                path=relpath, line=error.lineno or 1, rule="parse-error",
                message=f"cannot parse: {error.msg}")
        suppressions = normalize_suppression_spans(
            parse_suppressions(source), tree)
        module = ModuleContext(path=path, relpath=relpath, source=source,
                               tree=tree, suppressions=suppressions)
        module_findings = [
            finding
            for rule in self.rules
            for finding in rule.check_module(module, self.config)]
        entry = CacheEntry(
            digest=digest, findings=module_findings,
            suppressions=module.suppressions,
            index=build_module_index(module.dotted_name, relpath, tree,
                                     parse_shape_contracts(source)))
        if self.cache is not None:
            self.cache.store(relpath, entry)
        return module, entry, None

    def build_project(self, paths: Sequence[str | Path],
                      jobs: int = 1) -> tuple[
            ProjectContext, list[Finding]]:
        """Pass 1 over every .py file under ``paths``.

        Returns the assembled project (modules + whole-program index) and
        the findings produced so far (parse errors and per-module rules).
        With ``jobs > 1`` cache misses are indexed in a process pool;
        results merge in discovery order, so the report is byte-identical
        to a serial run.
        """
        started = time.perf_counter()
        scan_root, files = self._discover(paths)
        findings: list[Finding] = []
        modules: list[ModuleContext] = []
        records = []
        loaded = self._load_serial(files) if jobs <= 1 \
            else self._load_parallel(files, jobs)
        for module, entry, error in loaded:
            if error is not None:
                findings.append(error)
                continue
            assert module is not None and entry is not None
            modules.append(module)
            findings.extend(entry.findings)
            records.append(entry.index)
        self.last_index_seconds = time.perf_counter() - started
        repo_root = find_repo_root(scan_root.resolve())
        project = ProjectContext(root=scan_root, modules=modules,
                                 repo_root=repo_root,
                                 index=ProjectIndex(records))
        return project, findings

    def _load_serial(self, files: list[tuple[Path, str]]) -> list[tuple[
            ModuleContext | None, CacheEntry | None, Finding | None]]:
        return [self._load_one(path, relpath) for path, relpath in files]

    def _load_parallel(self, files: list[tuple[Path, str]],
                       jobs: int) -> list[tuple[
            ModuleContext | None, CacheEntry | None, Finding | None]]:
        """Pass 1 with a process pool over the cache misses.

        The parent does discovery, file reads and cache lookups (cheap,
        I/O-bound); only the per-file analysis (parse + per-module rules +
        indexing) ships to the workers.  Results come back via ``map``, so
        the merge order is the discovery order -- deterministic regardless
        of worker scheduling.
        """
        results: list[tuple[ModuleContext | None, CacheEntry | None,
                            Finding | None]] = []
        pending: list[tuple[int, Path, str, str, str]] = []
        for position, (path, relpath) in enumerate(files):
            source = path.read_text(encoding="utf-8")
            digest = content_digest(source)
            if self.cache is not None:
                cached = self.cache.lookup(relpath, digest)
                if cached is not None:
                    module = ModuleContext(
                        path=path, relpath=relpath, source=source,
                        suppressions=cached.suppressions)
                    results.append((module, cached, None))
                    continue
            results.append((None, None, None))  # placeholder
            pending.append((position, path, source, digest, relpath))
        if pending:
            items = [(str(path), relpath, source, digest,
                      self._select, self.config)
                     for _, path, source, digest, relpath in pending]
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            with context.Pool(processes=min(jobs, len(items))) as pool:
                produced = pool.map(_pass1_work, items)
            for (position, path, source, _, relpath), (entry, error) \
                    in zip(pending, produced):
                if error is not None:
                    results[position] = (None, None, error)
                    continue
                module = ModuleContext(path=path, relpath=relpath,
                                       source=source,
                                       suppressions=entry.suppressions)
                if self.cache is not None:
                    self.cache.store(relpath, entry)
                results[position] = (module, entry, None)
        return results

    # -- pass 2 and assembly -----------------------------------------------

    def lint_paths(self, paths: Sequence[str | Path],
                   jobs: int = 1) -> LintReport:
        project, findings = self.build_project(paths, jobs=jobs)
        for rule in self.rules:
            findings.extend(rule.check_project(project, self.config))
        report = self._resolve(project, findings)
        report.index_seconds = self.last_index_seconds
        if self.cache is not None:
            report.cache_hits = self.cache.hits
            report.cache_misses = self.cache.misses
            self.cache.save()
        return report

    def lint_project(self, project: ProjectContext) -> LintReport:
        """Run the rules over an already-built project (no cache I/O)."""
        findings: list[Finding] = []
        for rule in self.rules:
            for module in project.modules:
                findings.extend(rule.check_module(module, self.config))
            findings.extend(rule.check_project(project, self.config))
        return self._resolve(project, findings)

    def _resolve(self, project: ProjectContext,
                 findings: list[Finding]) -> LintReport:
        suppressions = {module.relpath: module.suppressions
                        for module in project.modules}
        resolved = []
        for finding in findings:
            allowed = suppressions.get(finding.path, {}).get(finding.line, ())
            resolved.append(finding.as_suppressed()
                            if finding.rule in allowed else finding)
        if self.baseline is not None:
            resolved = self.baseline.apply(resolved)
        return LintReport(findings=sorted(resolved),
                          modules_checked=len(project.modules),
                          rules_run=tuple(rule.name for rule in self.rules),
                          analysis=_analysis_summary(project))


def _analysis_summary(project: ProjectContext) -> dict:
    """Tree-wide dependence/effect tallies for the JSON report.

    ``loops`` counts every indexed loop by classification; ``effects``
    counts functions by closed interprocedural effect (a function with two
    effects counts under both; ``pure`` means the empty effect set).
    """
    if project.index is None:
        return {}
    loops = {CLASS_VECTORIZABLE: 0, CLASS_REDUCTION: 0, CLASS_SERIAL: 0}
    for _, info in project.index.all_functions():
        for loop in info.loops:
            loops[loop.classification] += 1
    effects = {"pure": 0, **{name: 0 for name in sorted(ALL_EFFECTS)}}
    analysis = EffectAnalysis(project.index)
    for summary in analysis.summaries.values():
        if not summary:
            effects["pure"] += 1
        for name in summary:
            effects[name] += 1
    return {"loops": loops, "effects": effects}


def _pass1_work(item: tuple[str, str, str, str, tuple[str, ...],
                            LintConfig]
                ) -> tuple[CacheEntry | None, Finding | None]:
    """One file's pass-1 analysis, in a pool worker (must be picklable)."""
    path, relpath, source, digest, select, config = item
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return None, Finding(
            path=relpath, line=error.lineno or 1, rule="parse-error",
            message=f"cannot parse: {error.msg}")
    suppressions = normalize_suppression_spans(
        parse_suppressions(source), tree)
    module = ModuleContext(path=Path(path), relpath=relpath, source=source,
                           tree=tree, suppressions=suppressions)
    rules = create_rules(select)
    module_findings = [
        finding
        for rule in rules
        for finding in rule.check_module(module, config)]
    entry = CacheEntry(
        digest=digest, findings=module_findings,
        suppressions=suppressions,
        index=build_module_index(module.dotted_name, relpath, tree,
                                 parse_shape_contracts(source)))
    return entry, None
