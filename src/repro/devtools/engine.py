"""The lint engine: file discovery, parsing, suppression, rule dispatch.

Typical use::

    from repro.devtools import LintEngine

    report = LintEngine().lint_paths(["src"])
    if not report.ok:
        ...

Suppressions are line-scoped comments of the form::

    risky_line()  # repro: allow-float-equality -- rationale

    # repro: allow-mutable-default -- rationale
    def helper(cache={}): ...

A trailing comment covers its own line; a comment alone on a line covers the
next line as well (so multi-line statements can be annotated above).  Several
rules can be allowed at once: ``# repro: allow-rule-a,rule-b``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.findings import Finding, LintReport
from repro.devtools.rules import ModuleContext, ProjectContext, Rule, create_rules

_SUPPRESS = re.compile(r"#\s*repro:\s*allow-([a-z0-9_,\-]+)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule names allowed on that line."""
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(token.start[0], token.start[1], token.string)
                    for token in tokens if token.type == tokenize.COMMENT]
    except tokenize.TokenizeError:
        return allowed
    lines = source.splitlines()
    for line, column, text in comments:
        match = _SUPPRESS.search(text)
        if match is None:
            continue
        rules = {name.strip() for name in match.group(1).split(",")
                 if name.strip()}
        targets = [line]
        prefix = lines[line - 1][:column] if line - 1 < len(lines) else ""
        if not prefix.strip():
            targets.append(line + 1)  # standalone comment covers next line
        for target in targets:
            allowed.setdefault(target, set()).update(rules)
    return allowed


def load_module(path: Path, relpath: str) -> ModuleContext | Finding:
    """Parse one file, returning a context or a parse-error finding."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Finding(path=relpath, line=error.lineno or 1,
                       rule="parse-error",
                       message=f"cannot parse: {error.msg}")
    return ModuleContext(path=path, relpath=relpath, source=source,
                         tree=tree, suppressions=parse_suppressions(source))


def find_repo_root(start: Path) -> Path | None:
    """Nearest ancestor (inclusive) holding a pyproject.toml."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


class LintEngine:
    """Run a set of rules over a tree of Python files."""

    def __init__(self, config: LintConfig | None = None,
                 select: Iterable[str] = ()) -> None:
        self.config = config or DEFAULT_CONFIG
        self.rules: list[Rule] = create_rules(select)

    def build_project(self, paths: Sequence[str | Path]) -> tuple[
            ProjectContext, list[Finding]]:
        """Collect and parse every .py file under ``paths``."""
        errors: list[Finding] = []
        modules: list[ModuleContext] = []
        roots = [Path(path) for path in paths]
        scan_root = roots[0] if roots else Path(".")
        for root in roots:
            if root.is_file():
                files = [root]
                base = root.parent
            else:
                files = sorted(p for p in root.rglob("*.py")
                               if "__pycache__" not in p.parts)
                base = root
            for path in files:
                relpath = path.relative_to(base).as_posix()
                loaded = load_module(path, relpath)
                if isinstance(loaded, Finding):
                    errors.append(loaded)
                else:
                    modules.append(loaded)
        repo_root = find_repo_root(scan_root.resolve())
        project = ProjectContext(root=scan_root, modules=modules,
                                 repo_root=repo_root)
        return project, errors

    def lint_paths(self, paths: Sequence[str | Path]) -> LintReport:
        project, errors = self.build_project(paths)
        report = self.lint_project(project)
        report.findings = sorted([*errors, *report.findings])
        return report

    def lint_project(self, project: ProjectContext) -> LintReport:
        suppressions = {module.relpath: module.suppressions
                        for module in project.modules}
        findings: list[Finding] = []
        for rule in self.rules:
            for module in project.modules:
                findings.extend(rule.check_module(module, self.config))
            findings.extend(rule.check_project(project, self.config))
        resolved = []
        for finding in findings:
            allowed = suppressions.get(finding.path, {}).get(finding.line, ())
            resolved.append(finding.as_suppressed()
                            if finding.rule in allowed else finding)
        return LintReport(findings=sorted(resolved),
                          modules_checked=len(project.modules),
                          rules_run=tuple(rule.name for rule in self.rules))
