"""CRC-16/CCITT-FALSE over byte strings and bit arrays.

Every tag ID in the paper carries a 16-bit CRC so the reader can (a) tell a
singleton slot from a collision slot and (b) validate the residual signal after
subtracting known signals from a recorded collision (paper sections III-A/B).

The polynomial is the CCITT one (x^16 + x^12 + x^5 + 1, ``0x1021``) with initial
value ``0xFFFF``, the variant used by ISO 18000-6 readers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

CRC_POLY = 0x1021
CRC_INIT = 0xFFFF
CRC_BITS = 16


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        reg = byte << 8
        for _ in range(8):
            if reg & 0x8000:
                reg = ((reg << 1) ^ CRC_POLY) & 0xFFFF
            else:
                reg = (reg << 1) & 0xFFFF
        table.append(reg)
    return table


_CRC_TABLE = _build_table()


def crc16(data: bytes | bytearray, init: int = CRC_INIT) -> int:
    """Return the CRC-16/CCITT-FALSE of ``data`` as an integer in ``[0, 2^16)``."""
    reg = init
    for byte in data:
        reg = ((reg << 8) ^ _CRC_TABLE[((reg >> 8) ^ byte) & 0xFF]) & 0xFFFF
    return reg


def crc16_bytes_many(data: np.ndarray, init: int = CRC_INIT) -> np.ndarray:
    """Vectorized :func:`crc16` over many equal-length byte strings.

    ``data`` is an ``(n, width)`` uint8 array; returns ``n`` CRC values as
    uint16.  Used to mint large tag populations quickly (a 20 000-tag
    population is CRC-stamped in a few numpy passes instead of 2M Python
    loop iterations).
    """
    data = np.asarray(data, dtype=np.uint8)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D (n, width) byte array")
    table = np.asarray(_CRC_TABLE, dtype=np.uint16)
    registers = np.full(data.shape[0], init, dtype=np.uint16)
    for column in range(data.shape[1]):
        index = ((registers >> 8) ^ data[:, column]).astype(np.uint16) & 0xFF
        registers = ((registers << 8) ^ table[index]).astype(np.uint16)
    return registers


def crc16_bits(bits: Sequence[int] | np.ndarray, init: int = CRC_INIT) -> int:
    """Return the CRC-16 of a bit sequence (MSB-first), bit by bit.

    Unlike :func:`crc16` this accepts bit strings whose length is not a multiple
    of eight, which is what the modem layer works with.
    """
    reg = init
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r}")
        high = (reg >> 15) & 1
        reg = (reg << 1) & 0xFFFF
        if high ^ int(bit):
            reg ^= CRC_POLY
    return reg


def append_crc_bits(payload_bits: Iterable[int]) -> np.ndarray:
    """Return ``payload_bits`` with its 16 CRC bits appended (MSB-first)."""
    payload = np.asarray(list(payload_bits), dtype=np.uint8)
    crc = crc16_bits(payload)
    crc_bits = np.array([(crc >> (CRC_BITS - 1 - i)) & 1 for i in range(CRC_BITS)],
                        dtype=np.uint8)
    return np.concatenate([payload, crc_bits])


def verify_crc_bits(frame_bits: Sequence[int] | np.ndarray) -> bool:
    """Check a frame produced by :func:`append_crc_bits`.

    Running the CRC register over payload *and* appended CRC yields zero for an
    intact frame, the classic systematic-code check.
    """
    frame = np.asarray(frame_bits, dtype=np.uint8)
    if frame.size <= CRC_BITS:
        return False
    return crc16_bits(frame) == 0
