"""EPC-like 96-bit tag identifiers.

The paper uses GEN2-style 96-bit IDs that *include* a 16-bit CRC (section VI:
"We set the ID length to be 96 bits (including the 16 bits CRC code)").  An ID
here is therefore an 80-bit payload followed by its CRC-16, carried around as a
plain Python ``int`` for speed, with codecs to/from MSB-first bit arrays for the
signal-level code.
"""

from __future__ import annotations

import numpy as np

from repro.air.crc import (
    CRC_BITS,
    append_crc_bits,
    crc16_bits,
    crc16_bytes_many,
    verify_crc_bits,
)

#: Total ID length on the air, CRC included (GEN2-style).
ID_BITS = 96
#: Number of freely-chosen payload bits.
PAYLOAD_BITS = ID_BITS - CRC_BITS


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Encode ``value`` as a MSB-first ``uint8`` bit array of length ``width``.

    Vectorized via ``int.to_bytes`` + :func:`numpy.unpackbits`: population
    minting runs once per simulation run, so this codec sits on the sweep
    executor's hot path at small N.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    if width == 0:
        return np.zeros(0, dtype=np.uint8)
    n_bytes = (width + 7) // 8
    raw = np.frombuffer(value.to_bytes(n_bytes, "big"), dtype=np.uint8)
    return np.unpackbits(raw)[8 * n_bytes - width:]


def bits_to_int(bits: np.ndarray) -> int:
    """Decode a MSB-first bit array into an integer (any nonzero bit is 1)."""
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size == 0:
        return 0
    pad = (-arr.size) % 8
    if pad:
        arr = np.concatenate([np.zeros(pad, dtype=np.uint8), arr])
    return int.from_bytes(np.packbits(arr).tobytes(), "big")


def make_tag_id(payload: int) -> int:
    """Build a full 96-bit tag ID from an 80-bit payload by appending its CRC."""
    frame = append_crc_bits(int_to_bits(payload, PAYLOAD_BITS))
    return bits_to_int(frame)


def id_to_bits(tag_id: int) -> np.ndarray:
    """Return the 96 MSB-first bits of a tag ID (payload followed by CRC)."""
    return int_to_bits(tag_id, ID_BITS)


def verify_tag_id(tag_id: int) -> bool:
    """True iff the low 16 bits of ``tag_id`` are the CRC of its 80-bit payload."""
    if tag_id < 0 or tag_id >> ID_BITS:
        return False
    return verify_crc_bits(id_to_bits(tag_id))


def generate_tag_ids(count: int, rng: np.random.Generator) -> list[int]:
    """Generate ``count`` distinct valid 96-bit tag IDs.

    Payloads are drawn uniformly at random (the query-tree baselines rely on
    uniformly distributed IDs, as in the paper's related-work discussion).
    CRC stamping is vectorized (:func:`repro.air.crc.crc16_bytes_many`) so a
    fresh 20 000-tag population costs milliseconds, which keeps 100-run
    evaluation sweeps affordable.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    payload_bytes = PAYLOAD_BITS // 8
    rows = np.zeros((0, payload_bytes), dtype=np.uint8)
    while rows.shape[0] < count:
        need = count - rows.shape[0]
        fresh = rng.integers(0, 256, size=(need, payload_bytes), dtype=np.uint8)
        rows = np.unique(np.concatenate([rows, fresh]), axis=0)
    crcs = crc16_bytes_many(rows)
    frames = np.concatenate(
        [rows, (crcs >> 8).astype(np.uint8)[:, None],
         (crcs & 0xFF).astype(np.uint8)[:, None]], axis=1)
    return [int.from_bytes(row.tobytes(), "big") for row in frames]


def crc_of_payload(payload: int) -> int:
    """Return the 16-bit CRC of an 80-bit payload (helper for tests)."""
    return crc16_bits(int_to_bits(payload, PAYLOAD_BITS))
