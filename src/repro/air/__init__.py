"""Air-interface substrate: CRC codes, tag IDs, the slot hash and slot timing.

These are the pieces of the RFID air interface that the paper's protocols
(`repro.core`) and the baselines (`repro.baselines`) are built on:

* :mod:`repro.air.crc` -- CRC-16/CCITT used to validate IDs (paper section III-A).
* :mod:`repro.air.ids` -- EPC-like 96-bit tag IDs (80 payload bits + 16 CRC bits).
* :mod:`repro.air.hashing` -- the report-decision hash ``H(ID|i)`` (section IV-A).
* :mod:`repro.air.timing` -- the Philips I-Code slot timing model (section VI).
"""

from repro.air.crc import crc16, crc16_bits, append_crc_bits, verify_crc_bits
from repro.air.hashing import slot_hash, report_threshold, tag_transmits
from repro.air.ids import (
    ID_BITS,
    PAYLOAD_BITS,
    bits_to_int,
    generate_tag_ids,
    id_to_bits,
    int_to_bits,
    make_tag_id,
    verify_tag_id,
)
from repro.air.timing import ICODE_TIMING, TimingModel

__all__ = [
    "crc16",
    "crc16_bits",
    "append_crc_bits",
    "verify_crc_bits",
    "slot_hash",
    "report_threshold",
    "tag_transmits",
    "ID_BITS",
    "PAYLOAD_BITS",
    "bits_to_int",
    "generate_tag_ids",
    "id_to_bits",
    "int_to_bits",
    "make_tag_id",
    "verify_tag_id",
    "ICODE_TIMING",
    "TimingModel",
]
