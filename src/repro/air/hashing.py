"""The report-decision hash ``H(ID | i)`` of paper section IV-A.

In SCAT/FCAT the reader advertises a report probability ``p_i`` as the ``l``-bit
integer ``floor(p_i * 2^l)``.  A tag transmits in slot ``i`` iff
``H(ID|i) <= floor(p_i * 2^l)`` where ``H`` maps the (ID, slot) pair uniformly
into ``[0, 2^l)``.  Because the decision is a deterministic function of the ID
and the slot index, the reader can later test -- for an ID it has just learned --
whether that tag participated in any recorded collision slot.  That test is what
drives the collision-resolution cascade.

The hash is a SplitMix64-style integer mix: stable across processes (unlike
Python's ``hash``), uniform, and cheap.
"""

from __future__ import annotations

#: Width of the advertised probability integer (section IV-A uses an l-bit int).
DEFAULT_HASH_BITS = 32

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One round of the SplitMix64 finalizer; full 64-bit avalanche."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def slot_hash(tag_id: int, slot_index: int, bits: int = DEFAULT_HASH_BITS) -> int:
    """Return ``H(tag_id | slot_index)`` in ``[0, 2^bits)``."""
    if not 1 <= bits <= 64:
        raise ValueError("bits must be in [1, 64]")
    mixed = _splitmix64((tag_id & _MASK64) ^ _splitmix64(tag_id >> 64))
    mixed = _splitmix64(mixed ^ _splitmix64(slot_index & _MASK64))
    return mixed >> (64 - bits)


def report_threshold(probability: float, bits: int = DEFAULT_HASH_BITS) -> int:
    """Quantize a report probability to the advertised ``l``-bit threshold.

    A tag transmits iff ``slot_hash(...) < threshold``, so ``threshold = 0``
    means never and ``threshold = 2^bits`` means always.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    return round(probability * (1 << bits))


def tag_transmits(tag_id: int, slot_index: int, threshold: int,
                  bits: int = DEFAULT_HASH_BITS) -> bool:
    """The tag-side report decision for one slot."""
    return slot_hash(tag_id, slot_index, bits) < threshold
