"""Slot timing model based on the Philips I-Code specification.

Paper section VI fixes the physical constants the evaluation uses:

* channel rate 53 kbit/s, i.e. 18.88 us per bit;
* a 96-bit ID takes 1812 us to transmit;
* the reader's 20-bit acknowledgement takes 378 us;
* a 302 us guard time precedes both the report segment and the ack segment;

so a basic slot lasts ``302 + 1812 + 302 + 378 = 2794 us`` ("about 2.8 ms").

On top of the per-slot cost, FCAT pays a pre-frame advertisement (frame index +
quantized report probability) and, for every collision record it resolves, a
23-bit slot index appended to an acknowledgement (section V-A/B).  SCAT instead
advertises in *every* slot and announces resolved tags by their full 96-bit IDs
(section IV-A).  :class:`TimingModel` accounts for all of these so reported
throughputs are comparable with the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TimingModel:
    """Time accounting for a slotted RFID reading session.

    All durations are in seconds.  The defaults reproduce the Philips I-Code
    numbers quoted in the paper.
    """

    bit_rate: float = 53_000.0
    id_bits: int = 96
    ack_bits: int = 20
    guard_time: float = 302e-6
    #: Bits in a slot/frame index advertisement (section V-A: 23-bit indices).
    index_bits: int = 23
    #: Bits used to advertise the quantized report probability.
    probability_bits: int = 16

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        if self.id_bits <= 0 or self.ack_bits <= 0:
            raise ValueError("id_bits and ack_bits must be positive")
        if self.guard_time < 0:
            raise ValueError("guard_time must be non-negative")
        if self.index_bits <= 0 or self.probability_bits <= 0:
            raise ValueError(
                "index_bits and probability_bits must be positive")

    @property
    def bit_time(self) -> float:
        """Seconds to transmit one bit (18.88 us at 53 kbit/s)."""
        return 1.0 / self.bit_rate

    def transmission_time(self, bits: int) -> float:
        """Seconds to transmit ``bits`` bits, without guard time."""
        return bits * self.bit_time

    @property
    def report_duration(self) -> float:
        """Guard time plus one full ID transmission (~302 + 1812 us)."""
        return self.guard_time + self.transmission_time(self.id_bits)

    @property
    def ack_duration(self) -> float:
        """Guard time plus the reader's basic acknowledgement (~302 + 378 us)."""
        return self.guard_time + self.transmission_time(self.ack_bits)

    @property
    def slot_duration(self) -> float:
        """Duration of one basic slot (report + ack segments), ~2794 us."""
        return self.report_duration + self.ack_duration

    @property
    def advertisement_duration(self) -> float:
        """Duration of a (frame or slot) advertisement broadcast by the reader."""
        return self.guard_time + self.transmission_time(
            self.index_bits + self.probability_bits)

    def announcement_duration(self, count: int, bits_each: int) -> float:
        """Extra ack-segment airtime to announce ``count`` items of ``bits_each``.

        FCAT announces resolved collision records by 23-bit slot index; SCAT by
        96-bit ID.  Announcements ride on an existing ack segment, so no extra
        guard time is charged.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return count * self.transmission_time(bits_each)

    def session_seconds(self, slots: int, advertisements: int = 0,
                        index_announcements: int = 0,
                        id_announcements: int = 0) -> float:
        """Total session time for a slot/advertisement/announcement budget."""
        if slots < 0 or advertisements < 0:
            raise ValueError("slots and advertisements must be non-negative")
        return (slots * self.slot_duration
                + advertisements * self.advertisement_duration
                + self.announcement_duration(index_announcements, self.index_bits)
                + self.announcement_duration(id_announcements, self.id_bits))

    def with_(self, **changes: object) -> "TimingModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: The paper's timing instance (Philips I-Code).
ICODE_TIMING = TimingModel()
