"""Benchmark A4: the capture effect and estimator robustness.

Capture converts some collision slots into apparent singletons.  Everyone's
throughput rises, but the paper's collision-count estimator is silently
biased (it sees fewer collisions and runs the channel hot); the empty-count
estimator variant stays calibrated and keeps FCAT ahead of DFSA throughout.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    AblationCaptureConfig,
    run_ablation_capture,
)

BENCH_CONFIG = AblationCaptureConfig(n_tags=3000, runs=2)


def test_ablation_capture(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_capture, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("ablation_capture", result.table.render())
    empty_curve = result.curves["FCAT-2 (empty est.)"]
    collision_curve = result.curves["FCAT-2 (collision est.)"]
    dfsa_curve = result.curves["DFSA"]
    benchmark.extra_info["empty_at_0.4"] = round(empty_curve[2], 1)
    benchmark.extra_info["collision_at_0.4"] = round(collision_curve[2], 1)
    # Capture helps everyone relative to no capture.
    assert dfsa_curve[-1] > dfsa_curve[0]
    assert empty_curve[-1] > empty_curve[0]
    # The empty-count estimator dominates the biased collision-count one at
    # moderate capture, and keeps FCAT above DFSA everywhere.
    assert empty_curve[2] > collision_curve[2]
    for empty, dfsa in zip(empty_curve, dfsa_curve):
        assert empty > dfsa
