"""Benchmark A3: FCAT-2 vs CRDSA vs DFSA.

CRDSA (the satellite SIC protocol cited in section III-C) also mines
collision slots, via replica cancellation inside a frame; FCAT's cross-frame
ANC records reach at least as far on the paper's workload.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    CrdsaComparisonConfig,
    run_crdsa_comparison,
)

BENCH_CONFIG = CrdsaComparisonConfig(n_values=(1000, 5000, 10000), runs=2)


def test_ablation_crdsa(benchmark, save_report):
    result = benchmark.pedantic(run_crdsa_comparison, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("ablation_crdsa", result.table.render())
    for n in BENCH_CONFIG.n_values:
        fcat = result.cells[("FCAT-2", n)].throughput_mean
        crdsa = result.cells[("CRDSA", n)].throughput_mean
        dfsa = result.cells[("DFSA", n)].throughput_mean
        # Both cancellation protocols clear the ALOHA baseline decisively.
        assert crdsa > 1.25 * dfsa
        assert fcat > 1.25 * dfsa
        benchmark.extra_info[f"n{n}"] = {"FCAT-2": round(fcat, 1),
                                         "CRDSA": round(crdsa, 1),
                                         "DFSA": round(dfsa, 1)}
