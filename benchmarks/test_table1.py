"""Benchmark T1: regenerate Table I (reading throughput vs N).

Paper: FCAT-2 ~ 200, FCAT-3 ~ 241, FCAT-4 ~ 265 tags/s against DFSA ~ 131,
EDFSA ~ 127, ABS ~ 124, AQS ~ 121; FCAT-2 gains 51-71% over the baselines.
"""

from __future__ import annotations

from repro.experiments.table1 import Table1Config, run_table1

BENCH_CONFIG = Table1Config(n_values=[1000, 5000, 10000], runs=3)


def test_table1_throughput(benchmark, save_report):
    result = benchmark.pedantic(run_table1, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("table1", result.table.render())
    gains = result.gain_over("DFSA")
    benchmark.extra_info["fcat2_gain_over_dfsa_min"] = round(min(gains), 3)
    benchmark.extra_info["fcat2_gain_over_dfsa_max"] = round(max(gains), 3)
    # Paper shape: FCAT-2 beats every baseline by a wide margin at every N,
    # and the lambda ordering holds with diminishing increments.
    for n in BENCH_CONFIG.n_values:
        fcat2 = result.throughput("FCAT-2", n)
        fcat3 = result.throughput("FCAT-3", n)
        fcat4 = result.throughput("FCAT-4", n)
        assert fcat2 < fcat3 < fcat4
        for baseline in ("DFSA", "EDFSA", "ABS", "AQS"):
            assert fcat2 > 1.35 * result.throughput(baseline, n)
    assert 0.35 < min(gains) and max(gains) < 0.85
