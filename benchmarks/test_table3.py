"""Benchmark T3: regenerate Table III (IDs resolved from collision slots).

Paper at N = 10000: FCAT-2 4139, FCAT-3 5945, FCAT-4 7065.
"""

from __future__ import annotations

from repro.experiments.table3 import Table3Config, run_table3

BENCH_CONFIG = Table3Config(n_values=[1000, 5000, 10000], runs=3)

PAPER_AT_10K = {2: 4139, 3: 5945, 4: 7065}


def test_table3_resolved_ids(benchmark, save_report):
    result = benchmark.pedantic(run_table3, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("table3", result.table.render())
    for lam, paper_value in PAPER_AT_10K.items():
        measured = result.resolved(lam, 10000)
        benchmark.extra_info[f"fcat{lam}_resolved_at_10k"] = round(measured)
        assert abs(measured - paper_value) / paper_value < 0.10
    # The resolved fraction is roughly constant in N for each lambda.
    for lam in (2, 3, 4):
        fractions = [result.resolved_fraction(lam, n)
                     for n in BENCH_CONFIG.n_values]
        assert max(fractions) - min(fractions) < 0.08
