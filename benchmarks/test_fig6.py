"""Benchmark F6: regenerate Fig. 6 (FCAT throughput vs frame size).

Paper: throughput stabilizes for f >= 10 and stays flat to f = 200.
"""

from __future__ import annotations

from repro.experiments.fig6 import Fig6Config, run_fig6

BENCH_CONFIG = Fig6Config(
    lams=(2, 3, 4),
    frame_sizes=[2, 5, 10, 30, 60, 120, 200],
    n_tags=10000,
    runs=1,
)


def test_fig6_throughput_vs_frame_size(benchmark, save_report, save_chart):
    result = benchmark.pedantic(run_fig6, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    lines = [result.chart.render(), ""]
    for lam in BENCH_CONFIG.lams:
        spread = result.plateau_spread(lam)
        lines.append(f"FCAT-{lam}: plateau spread for f >= 10: {spread:.1%}")
    save_report("fig6", "\n".join(lines))
    save_chart("fig6", result.chart)
    for lam in BENCH_CONFIG.lams:
        spread = result.plateau_spread(lam)
        benchmark.extra_info[f"lam{lam}_plateau_spread"] = round(spread, 4)
        assert spread < 0.06  # flat beyond f = 10, as in the paper
        # Tiny frames pay for their advertisements.
        curve = result.curves[lam]
        assert curve[0] < max(curve)
