"""Benchmark A6: continuous monitoring of a churning population.

Section IV-E assumes tags are static during a reading round.  This bench
traces what actually happens when they are not: a monitoring FCAT reader
detects essentially every tag while dwell times dwarf the per-tag latency,
and starts missing departures as dwell approaches it.
"""

from __future__ import annotations

import math

from repro.experiments.ablations import AblationChurnConfig, run_ablation_churn

BENCH_CONFIG = AblationChurnConfig()


def test_ablation_churn(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_churn, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("ablation_churn", result.table.render())
    detection = result.detection_fractions
    benchmark.extra_info["detection_slowest_churn"] = round(detection[0], 3)
    benchmark.extra_info["detection_fastest_churn"] = round(detection[-1], 3)
    # Slow churn: essentially perfect detection.  Fast churn: visibly lossy.
    assert detection[0] > 0.97
    assert detection[-1] < detection[0]
    # Detection degrades (weakly) monotonically as dwell shrinks.
    for slower, faster in zip(detection, detection[1:]):
        assert faster <= slower + 0.03
    # Latencies are finite and small relative to the budget.
    assert all(not math.isnan(latency) and latency < 5.0
               for latency in result.mean_latencies)
    # Stale reads (IDs recovered after departure) appear under fast churn.
    assert result.stale_reads[-1] > 0
