"""Benchmark F5: regenerate Fig. 5 (FCAT throughput vs omega at N = 10000).

Paper: each FCAT-lambda curve is unimodal with the peak at the computed
optimal load; FCAT-2 tops ~200 tags/s, FCAT-3 ~240, FCAT-4 ~265.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimal import optimal_omega
from repro.experiments.fig5 import Fig5Config, run_fig5

BENCH_CONFIG = Fig5Config(
    lams=(2, 3, 4),
    omega_grid=[round(w, 2) for w in np.arange(0.5, 3.01, 0.25)],
    n_tags=10000,
    runs=1,
)


def test_fig5_throughput_vs_omega(benchmark, save_report, save_chart):
    result = benchmark.pedantic(run_fig5, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    lines = [result.chart.render(), ""]
    for lam in BENCH_CONFIG.lams:
        lines.append(f"FCAT-{lam}: peak at omega ~ {result.peak_omega(lam)} "
                     f"(computed {optimal_omega(lam):.3f})")
    save_report("fig5", "\n".join(lines))
    save_chart("fig5", result.chart)
    for lam in BENCH_CONFIG.lams:
        curve = result.curves[lam]
        peak_index = int(np.argmax(curve))
        benchmark.extra_info[f"lam{lam}_peak_omega"] = result.peak_omega(lam)
        # Interior, near-computed peak; endpoints clearly worse.
        assert 0 < peak_index < len(curve) - 1
        assert abs(result.peak_omega(lam) - optimal_omega(lam)) <= 0.55
        assert curve[peak_index] > 1.10 * curve[0]
        assert curve[peak_index] > 1.02 * curve[-1]
