"""Benchmark A5: the cost of SCAT's cardinality pre-step.

Section V-A's first inefficiency: SCAT needs the tag count from a pre-step
(Kodialam-Nandagopal probe frames, ref [24]).  The tighter the demanded
accuracy, the more air time the probes burn; FCAT's embedded estimator
removes the cost entirely and still wins through framing.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    AblationPrestepConfig,
    run_ablation_prestep,
)

BENCH_CONFIG = AblationPrestepConfig(n_tags=5000, runs=2)


def test_ablation_prestep(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_prestep, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("ablation_prestep", result.table.render())
    benchmark.extra_info["scat_oracle"] = round(result.scat_oracle, 1)
    benchmark.extra_info["fcat"] = round(result.fcat, 1)
    # Pre-stepped SCAT never beats oracle SCAT, and the tightest accuracy
    # costs the most.
    for throughput in result.scat_prestep.values():
        assert throughput <= result.scat_oracle * 1.02
    tightest = result.scat_prestep[min(result.scat_prestep)]
    loosest = result.scat_prestep[max(result.scat_prestep)]
    assert tightest <= loosest * 1.02
    # FCAT dominates every SCAT variant (the point of section V).
    assert result.fcat > result.scat_oracle
