"""Benchmark F2: the Alice-Bob ANC exchange of Fig. 2.

Two messages cross an amplify-and-forward relay in two slots instead of
four; each endpoint recovers the peer's bits after subtracting its own
(amplitude- and phase-estimated) contribution.
"""

from __future__ import annotations

import numpy as np

from repro.phy.anc import alice_bob_exchange


def _run_exchanges(trials: int, snr_db: float, seed: int) -> float:
    rng = np.random.default_rng(seed)
    ok = 0
    for _ in range(trials):
        alice = rng.integers(0, 2, 64).astype(np.uint8)
        bob = rng.integers(0, 2, 64).astype(np.uint8)
        result = alice_bob_exchange(alice, bob, rng, snr_db=snr_db)
        ok += int(result.alice_ok and result.bob_ok)
    return ok / trials


def test_fig2_alice_bob(benchmark, save_report):
    success = benchmark.pedantic(_run_exchanges, args=(12, 30.0, 99),
                                 iterations=1, rounds=1)
    report = (f"### Fig. 2 -- Alice-Bob ANC exchange\n\n"
              f"success rate over 12 exchanges at 30 dB SNR: {success:.2f}\n"
              f"(two slots per message pair instead of four)")
    save_report("fig2_anc", report)
    benchmark.extra_info["success_rate"] = success
    assert success >= 0.9
