"""Benchmark A1: signal-level resolvability vs SNR and collision order k.

The evidence behind the protocol layer's ``k <= lambda`` rule: cancellation
with re-estimated gains succeeds reliably above ~10 dB and degrades with k
in the transition region.
"""

from __future__ import annotations

from repro.experiments.ablations import AblationSnrConfig, run_ablation_snr

BENCH_CONFIG = AblationSnrConfig(trials=25)


def test_ablation_snr(benchmark, save_report, save_chart):
    result = benchmark.pedantic(run_ablation_snr, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("ablation_snr", result.chart.render())
    save_chart("ablation_snr", result.chart)
    for k, curve in result.curves.items():
        benchmark.extra_info[f"k{k}_at_20db"] = curve[
            BENCH_CONFIG.snr_db_values.index(20.0)]
        # Reliable at high SNR, hopeless at 0 dB.
        assert curve[-1] >= 0.9
        assert curve[0] <= 0.3
