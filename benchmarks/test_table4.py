"""Benchmark T4: regenerate Table IV (computed vs searched optimal omega).

Paper: search finds 1.42 / 1.90 / 2.12 against computed 1.41 / 1.82 / 2.21,
with throughput at the computed value within ~1% of the searched optimum.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimal import optimal_omega
from repro.experiments.table4 import Table4Config, run_table4

BENCH_CONFIG = Table4Config(
    lams=(2, 3, 4),
    omega_grid=[round(w, 2) for w in np.arange(1.0, 2.81, 0.2)],
    n_tags=10000,
    runs=2,
)


def test_table4_omega_search(benchmark, save_report):
    result = benchmark.pedantic(run_table4, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("table4", result.table.render())
    for lam, search in result.searches.items():
        benchmark.extra_info[f"lam{lam}_best_omega"] = search.best_omega
        # The searched optimum lands within one grid step of the closed form.
        assert abs(search.best_omega - optimal_omega(lam)) <= 0.25
        # Using the computed omega forfeits almost nothing.
        assert search.computed_throughput > 0.97 * search.best_throughput
