"""Benchmark F4: regenerate Fig. 4 (expected slot counts vs N).

Paper: at p = 1.414/10^4 and f = 30, E(n1) peaks near N = 7000 and falls
(non-invertible) while E(nc) grows monotonically (the estimator's input).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig4 import Fig4Config, run_fig4

BENCH_CONFIG = Fig4Config(simulate=True, simulate_frames=3000)


def test_fig4_slot_expectations(benchmark, save_report, save_chart):
    result = benchmark.pedantic(run_fig4, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    lines = [result.chart.render(), "",
             f"singleton peak at N ~ {result.singleton_peak_n:.0f}"]
    if result.empirical is not None:
        lines.append("Monte-Carlo check at N=%d: %s" % (
            BENCH_CONFIG.n_max,
            "/".join(f"{v:.2f}" for v in result.empirical)))
    save_report("fig4", "\n".join(lines))
    save_chart("fig4", result.chart)
    benchmark.extra_info["singleton_peak_n"] = round(result.singleton_peak_n)
    # Shape assertions: collision curve monotone, singleton curve unimodal.
    collisions = result.expectations.collision
    assert np.all(np.diff(collisions) > 0)
    singles = result.expectations.singleton
    peak = int(np.argmax(singles))
    assert 0 < peak < singles.size - 1
    assert result.singleton_peak_n == pytest.approx(
        10000 / 1.414, rel=0.02)
    # The Monte-Carlo overlay validates the closed forms.
    assert result.empirical[2] == pytest.approx(float(collisions[-1]),
                                                rel=0.05)
