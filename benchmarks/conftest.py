"""Shared benchmark plumbing.

Each benchmark regenerates one paper table/figure at a bench-friendly scale
(documented in EXPERIMENTS.md; the CLI reproduces the full-scale versions),
prints the reproduced artefact, asserts the paper's qualitative shape, and
writes the rendered markdown into ``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Persist a rendered table/chart under results/<name>.md."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.md").write_text(text + "\n")
        print(text)

    return _save


@pytest.fixture
def save_chart(results_dir):
    """Persist an AsciiChart additionally as results/<name>.svg."""

    def _save(name: str, chart) -> None:
        from repro.report.svg_chart import svg_from_ascii_chart
        (results_dir / f"{name}.svg").write_text(
            svg_from_ascii_chart(chart).render() + "\n")

    return _save
