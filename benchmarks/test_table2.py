"""Benchmark T2: regenerate Table II (slot usage at N = 10000).

Paper: FCAT-2 4189/5861/7016, DFSA 10076/10000/7208, ABS 4410/10000/14409,
AQS 4737/10000/14735.
"""

from __future__ import annotations

from repro.experiments.table2 import Table2Config, run_table2

BENCH_CONFIG = Table2Config(n_tags=10000, runs=3)


def test_table2_slot_usage(benchmark, save_report):
    result = benchmark.pedantic(run_table2, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("table2", result.table.render())
    n = BENCH_CONFIG.n_tags
    fcat_empty, fcat_single, fcat_collision = result.slots("FCAT-2")
    benchmark.extra_info["fcat2_slots"] = (round(fcat_empty), round(fcat_single),
                                           round(fcat_collision))
    # Paper fingerprints (tolerances cover run-to-run noise):
    assert abs(fcat_empty - 4189) / 4189 < 0.20
    assert abs(fcat_single - 5861) / 5861 < 0.10
    assert abs(fcat_collision - 7016) / 7016 < 0.10
    dfsa_empty, dfsa_single, dfsa_collision = result.slots("DFSA")
    assert dfsa_single == n
    assert abs(dfsa_empty - 10076) / 10076 < 0.10
    abs_empty, abs_single, abs_collision = result.slots("ABS")
    assert abs_single == n
    assert abs(abs_collision - 14409) / 14409 < 0.07
    aqs_total = sum(result.slots("AQS"))
    assert abs(aqs_total - 29472) / 29472 < 0.07
