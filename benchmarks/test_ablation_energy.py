"""Benchmark A7: tag battery cost per protocol.

The paper's tags are battery-powered actives; every ID broadcast drains
them.  Closed forms (repro.analysis.energy): FCAT expects omega/P_useful
~2.4 broadcasts per tag, DFSA e ~2.72, tree protocols ~log2(N).  So
collision-aware reading wins the energy column as well as throughput.
"""

from __future__ import annotations

import math

from repro.analysis.energy import (
    expected_transmissions_dfsa,
    expected_transmissions_fcat,
    expected_transmissions_tree,
)
from repro.experiments.ablations import AblationEnergyConfig, run_ablation_energy

BENCH_CONFIG = AblationEnergyConfig(n_tags=3000, runs=2)


def test_ablation_energy(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_energy, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("ablation_energy", result.table.render())
    rows = result.rows
    benchmark.extra_info["fcat2_broadcasts"] = round(rows["FCAT-2"][0], 2)
    benchmark.extra_info["dfsa_broadcasts"] = round(rows["DFSA"][0], 2)
    # Measured broadcasts track the closed forms.
    assert rows["FCAT-2"][0] == math.inf or \
        abs(rows["FCAT-2"][0] - expected_transmissions_fcat(2)) < 0.3
    assert abs(rows["DFSA"][0] - expected_transmissions_dfsa()) < 0.3
    assert abs(rows["ABS"][0]
               - expected_transmissions_tree(BENCH_CONFIG.n_tags)) < 2.0
    # The ordering: FCAT gentlest, trees by far the hungriest.
    assert rows["FCAT-2"][0] < rows["DFSA"][0] < rows["Gen2-Q"][0]
    assert rows["ABS"][0] > 3 * rows["DFSA"][0]
