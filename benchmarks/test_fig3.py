"""Benchmark F3: regenerate Fig. 3 (estimator bias vs N).

Paper: |Bias(N_hat/N)| ~ 0.0082 / 0.011 / 0.014 for omega = 1.414 / 1.817 /
2.213, flat in N.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig3 import Fig3Config, run_fig3

BENCH_CONFIG = Fig3Config(simulate=True, simulate_frames=4000)

PAPER_BIAS = {2: 0.0082, 3: 0.011, 4: 0.014}


def test_fig3_estimator_bias(benchmark, save_report, save_chart):
    result = benchmark.pedantic(run_fig3, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    lines = [result.chart.render(), ""]
    for lam, bias in result.empirical.items():
        lines.append(f"empirical bias (lambda={lam}): {bias:+.4f} "
                     f"(analytic ~ {PAPER_BIAS[lam]:+.4f})")
    save_report("fig3", "\n".join(lines))
    save_chart("fig3", result.chart)
    for lam, paper_value in PAPER_BIAS.items():
        analytic = float(np.mean(result.analytic[lam]))
        benchmark.extra_info[f"lam{lam}_bias"] = round(analytic, 4)
        assert analytic == pytest.approx(paper_value, abs=0.002)
        assert result.empirical[lam] == pytest.approx(paper_value, abs=0.005)
