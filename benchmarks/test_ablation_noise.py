"""Benchmark A2: FCAT under unresolvable collision records.

Section IV-E: the protocol degrades gracefully as records become useless;
at total loss it underperforms DFSA because its load overshoots the ALOHA
optimum -- the regime where the paper says to switch protocols.
"""

from __future__ import annotations

from repro.experiments.ablations import AblationNoiseConfig, run_ablation_noise

BENCH_CONFIG = AblationNoiseConfig(n_tags=5000, runs=2)


def test_ablation_noise(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_noise, args=(BENCH_CONFIG,),
                                iterations=1, rounds=1)
    save_report("ablation_noise", result.table.render())
    throughputs = result.throughputs
    benchmark.extra_info["clean"] = round(throughputs[0], 1)
    benchmark.extra_info["all_lost"] = round(throughputs[-1], 1)
    # Monotone degradation (allowing small run-to-run noise).
    for before, after in zip(throughputs, throughputs[1:]):
        assert after < before * 1.03
    assert throughputs[0] > 1.35 * result.dfsa_throughput
    assert throughputs[-1] < result.dfsa_throughput
