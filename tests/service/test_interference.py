"""The load -> channel mapping: composition, clamping, identity."""

from __future__ import annotations

import pytest

from repro.service.interference import DEFAULT_INTERFERENCE, InterferenceModel
from repro.sim.channel import ChannelModel


def test_zero_load_returns_base_object():
    base = ChannelModel(singleton_corrupt_prob=0.1)
    assert DEFAULT_INTERFERENCE.channel_for_load(0.0, base) is base


def test_load_scales_each_knob_by_its_coefficient():
    model = InterferenceModel(singleton_corrupt_coeff=0.5,
                              collision_unusable_coeff=0.8,
                              ack_loss_coeff=0.2, cap=0.9)
    channel = model.channel_for_load(0.5)
    assert channel.singleton_corrupt_prob == pytest.approx(0.25)
    assert channel.collision_unusable_prob == pytest.approx(0.4)
    assert channel.ack_loss_prob == pytest.approx(0.1)
    assert channel.capture_prob == 0.0


def test_composes_with_base_as_independent_error_sources():
    base = ChannelModel(singleton_corrupt_prob=0.2)
    model = InterferenceModel(singleton_corrupt_coeff=0.5, cap=0.9)
    channel = model.channel_for_load(1.0, base)
    # 1 - (1 - 0.2)(1 - 0.5)
    assert channel.singleton_corrupt_prob == pytest.approx(0.6)


def test_cap_clamps_fully_loaded_zone():
    channel = DEFAULT_INTERFERENCE.channel_for_load(1.0)
    cap = DEFAULT_INTERFERENCE.cap
    assert channel.singleton_corrupt_prob <= cap
    assert channel.collision_unusable_prob <= cap
    assert channel.ack_loss_prob <= cap


def test_same_load_same_channel():
    assert DEFAULT_INTERFERENCE.channel_for_load(0.3) \
        == DEFAULT_INTERFERENCE.channel_for_load(0.3)


def test_load_outside_unit_interval_rejected():
    with pytest.raises(ValueError, match="load"):
        DEFAULT_INTERFERENCE.channel_for_load(-0.1)
    with pytest.raises(ValueError, match="load"):
        DEFAULT_INTERFERENCE.channel_for_load(1.5)


def test_negative_coefficient_rejected():
    with pytest.raises(ValueError, match="ack_loss_coeff"):
        InterferenceModel(ack_loss_coeff=-0.5)


def test_cap_must_leave_room_to_terminate():
    with pytest.raises(ValueError, match="cap"):
        InterferenceModel(cap=1.0)
