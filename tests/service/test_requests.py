"""Request schema, content addressing and the canonical response bytes."""

from __future__ import annotations

import json

import pytest

from repro.service.requests import (
    InventoryRequest,
    encode_response,
    request_from_dict,
)
from repro.sim.channel import ChannelModel


def test_key_is_stable_and_content_addressed():
    a = InventoryRequest(n_tags=1000, zones=8, seed=1)
    b = InventoryRequest(n_tags=1000, zones=8, seed=1)
    assert a.key() == b.key()
    assert len(a.key()) == 64  # sha256 hex


@pytest.mark.parametrize("change", [
    {"n_tags": 1001}, {"zones": 9}, {"seed": 2}, {"runs": 3},
    {"lam": 4}, {"overlap": 0.2}, {"max_phases": 1},
    {"engine": "scalar"}, {"precision": 0.05},
    {"channel": ChannelModel(ack_loss_prob=0.1)},
])
def test_any_field_change_changes_the_key(change):
    base = InventoryRequest(n_tags=1000, zones=8, seed=1)
    varied = InventoryRequest(**{**base.to_dict(), **change,
                                 "channel": change.get("channel",
                                                       base.channel)})
    assert varied.key() != base.key()


def test_dict_round_trip():
    request = InventoryRequest(n_tags=500, zones=4, seed=9, runs=2, lam=3,
                               overlap=0.1, engine="scalar",
                               channel=ChannelModel(ack_loss_prob=0.05))
    assert request_from_dict(request.to_dict()) == request


def test_minimal_request_uses_defaults():
    request = request_from_dict({"n_tags": 100, "zones": 2, "seed": 0})
    assert request.runs == 1
    assert request.lam == 2
    assert request.engine == "kernel"
    assert request.channel == ChannelModel()


@pytest.mark.parametrize("payload, match", [
    ([1, 2], "JSON object"),
    ({"n_tags": 10, "zones": 1}, "missing.*seed"),
    ({"n_tags": 10, "zones": 1, "seed": 0, "frobnicate": 1}, "unknown"),
    ({"n_tags": 10, "zones": 1, "seed": 0, "channel": 3}, "channel"),
    ({"n_tags": 10, "zones": 1, "seed": 0,
      "channel": {"bogus_prob": 0.1}}, "channel knobs"),
    ({"n_tags": "ten", "zones": 1, "seed": 0}, "integer"),
    ({"n_tags": 0, "zones": 1, "seed": 0}, "n_tags"),
    ({"n_tags": 10, "zones": 1, "seed": 0, "lam": 1}, "lam"),
    ({"n_tags": 10, "zones": 1, "seed": 0, "engine": "quantum"}, "engine"),
])
def test_junk_requests_rejected(payload, match):
    with pytest.raises(ValueError, match=match):
        request_from_dict(payload)


def test_encode_response_is_canonical():
    payload = {"b": 1, "a": {"z": 0.5, "y": [1, 2]}}
    first = encode_response(payload)
    second = encode_response({"a": {"y": [1, 2], "z": 0.5}, "b": 1})
    assert first == second
    assert first.endswith(b"\n")
    assert json.loads(first) == payload
