"""MPR frame sizing and the facility shard scheduler."""

from __future__ import annotations

import math

import pytest

from repro.service.interference import InterferenceModel
from repro.service.sharding import (
    mpr_optimal_frame_size,
    mpr_reads_per_slot,
    plan_shards,
)
from repro.sim.channel import ChannelModel


# -- mpr_reads_per_slot ----------------------------------------------------

def test_single_reception_matches_binomial_singleton_mean():
    # m = 1: E[reads/slot] = P[occupancy = 1] = n/L (1 - 1/L)^(n-1).
    n, L = 40, 64
    expected = (n / L) * (1 - 1 / L) ** (n - 1)
    assert mpr_reads_per_slot(n, L, 1) == pytest.approx(expected, rel=1e-12)


def test_higher_capability_never_reads_fewer():
    for L in (8, 32, 128):
        assert mpr_reads_per_slot(50, L, 2) > mpr_reads_per_slot(50, L, 1)
        assert mpr_reads_per_slot(50, L, 4) > mpr_reads_per_slot(50, L, 2)


def test_degenerate_frame_and_population():
    assert mpr_reads_per_slot(0, 10, 2) == 0.0
    # One slot: every tag lands there; readable iff n <= m.
    assert mpr_reads_per_slot(2, 1, 2) == 2.0
    assert mpr_reads_per_slot(3, 1, 2) == 0.0


def test_reads_per_slot_stable_at_facility_scale():
    # The forward recurrence must not overflow where factorials would.
    value = mpr_reads_per_slot(1_000_000, 500_000, 4)
    assert 0.0 < value < 4.0
    assert math.isfinite(value)


# -- mpr_optimal_frame_size ------------------------------------------------

def test_classical_fsa_optimum_is_near_population_size():
    # m = 1 recovers L* ~ n (slot efficiency 1/e).
    n = 200
    best = mpr_optimal_frame_size(n, 1)
    assert 0.9 * n <= best <= 1.1 * n
    efficiency = mpr_reads_per_slot(n, best, 1)
    assert efficiency == pytest.approx(1 / math.e, rel=0.05)


def test_mpr_shifts_optimum_to_shorter_frames():
    n = 500
    frames = [mpr_optimal_frame_size(n, m) for m in (1, 2, 4)]
    assert frames[0] > frames[1] > frames[2]


def test_mpr_capability_raises_slot_efficiency():
    n = 500
    eff = [mpr_reads_per_slot(n, mpr_optimal_frame_size(n, m), m)
           for m in (1, 2, 4)]
    assert eff[0] < eff[1] < eff[2]


def test_optimal_frame_validates_inputs():
    with pytest.raises(ValueError):
        mpr_optimal_frame_size(0, 2)
    with pytest.raises(ValueError):
        mpr_optimal_frame_size(100, 0)


# -- plan_shards -----------------------------------------------------------

def test_exclusive_split_conserves_population():
    plan = plan_shards(10_007, 16, overlap=0.2)
    assert sum(zone.exclusive_tags for zone in plan.zones) == 10_007
    assert plan.facility_tags == 10_007


def test_ring_overlap_pairs_close_the_ring():
    plan = plan_shards(16_000, 16, overlap=0.2)
    assert len(plan.overlap_pairs) == 16
    assert (15, 0, plan.overlap_pairs[-1][2]) == plan.overlap_pairs[-1]
    for left, right, count in plan.overlap_pairs:
        assert right == (left + 1) % 16
        assert count > 0


def test_even_ring_two_phases_no_interference():
    plan = plan_shards(8_000, 16, overlap=0.2)
    assert plan.n_phases == 2
    assert plan.interfered_zones == 0
    # Neighbouring zones never share a phase on an even ring.
    phases = [zone.phase for zone in plan.zones]
    for index in range(16):
        assert phases[index] != phases[(index + 1) % 16]


def test_odd_ring_needs_a_third_phase():
    plan = plan_shards(8_500, 17, overlap=0.2)
    assert plan.n_phases == 3
    assert plan.interfered_zones == 0


def test_capped_phases_fold_into_interference():
    free = plan_shards(8_000, 16, overlap=0.2)
    capped = plan_shards(8_000, 16, overlap=0.2, max_phases=1)
    assert capped.n_phases == 1
    assert capped.interfered_zones == 16
    base = ChannelModel()
    for zone in capped.zones:
        assert zone.interference_load > 0.0
        assert zone.channel != base
        assert zone.channel.singleton_corrupt_prob > 0.0
    for zone in free.zones:
        assert zone.channel == base


def test_zero_overlap_is_one_phase_and_clean_channels():
    plan = plan_shards(5_000, 16, overlap=0.0)
    assert plan.n_phases == 1
    assert plan.overlap_pairs == ()
    assert all(zone.n_tags == zone.exclusive_tags for zone in plan.zones)


def test_frame_sizes_follow_mpr_analysis():
    plan = plan_shards(10_000, 16, capability=4, overlap=0.1)
    for zone in plan.zones:
        assert zone.frame_size \
            == mpr_optimal_frame_size(zone.n_tags, 4)


def test_plan_is_deterministic():
    a = plan_shards(9_999, 17, capability=3, overlap=0.13, max_phases=2)
    b = plan_shards(9_999, 17, capability=3, overlap=0.13, max_phases=2)
    assert a == b


def test_interference_model_threads_through():
    strong = InterferenceModel(singleton_corrupt_coeff=2.0, cap=0.9)
    plan = plan_shards(8_000, 16, overlap=0.2, max_phases=1,
                       interference=strong)
    weak = plan_shards(8_000, 16, overlap=0.2, max_phases=1)
    for loud, quiet in zip(plan.zones, weak.zones):
        assert loud.channel.singleton_corrupt_prob \
            > quiet.channel.singleton_corrupt_prob


def test_plan_validates_inputs():
    with pytest.raises(ValueError, match="n_tags"):
        plan_shards(0, 4)
    with pytest.raises(ValueError, match="zones"):
        plan_shards(100, 0)
    with pytest.raises(ValueError, match="overlap"):
        plan_shards(100, 4, overlap=1.0)
    with pytest.raises(ValueError, match="zones need"):
        plan_shards(3, 4)
    with pytest.raises(ValueError, match="max_phases"):
        plan_shards(100, 4, max_phases=0)


def test_phase_members_partition_the_zones():
    plan = plan_shards(9_000, 17, overlap=0.2)
    members = plan.phase_members()
    assert len(members) == plan.n_phases
    flattened = [zone for phase in members for zone in phase]
    assert sorted(zone.index for zone in flattened) == list(range(17))
    assert "17 zones" in plan.summary()
