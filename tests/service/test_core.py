"""The service core: byte-identity, warm paths, dedup, observability."""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments.result_cache import ResultCache
from repro.obs.report import cross_check_manifest
from repro.service.core import InventoryService, ServiceConfig
from repro.service.requests import InventoryRequest

REQUEST = InventoryRequest(n_tags=600, zones=6, seed=11, runs=2)


def test_identical_request_returns_identical_bytes():
    service = InventoryService()
    assert service.handle(REQUEST) == service.handle(REQUEST)


def test_bytes_identical_across_instances_and_jobs():
    serial = InventoryService(ServiceConfig(jobs=1))
    parallel = InventoryService(ServiceConfig(jobs=4))
    assert serial.handle(REQUEST) == parallel.handle(REQUEST)


def test_bytes_identical_under_concurrency():
    service = InventoryService(ServiceConfig(jobs=2))
    responses: list[bytes] = []
    lock = threading.Lock()

    def worker() -> None:
        response = service.handle(REQUEST)
        with lock:
            responses.append(response)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(set(responses)) == 1
    assert responses[0] == InventoryService().handle(REQUEST)


def test_warm_request_skips_the_executor():
    service = InventoryService()
    service.handle(REQUEST)
    cells_after_cold = len(service.obs.cells)
    service.handle(REQUEST)
    assert len(service.obs.cells) == cells_after_cold  # no new simulation
    done = [event for event in service.obs.events.events
            if event.name == "request_done"]
    assert [event.fields["cached"] for event in done] == [False, True]


def test_result_cache_warms_across_service_instances(tmp_path):
    cache_path = tmp_path / "cache.json"
    cold = InventoryService(ServiceConfig(cache=ResultCache(cache_path)))
    response = cold.handle(REQUEST)
    cold.config.cache.save()

    warm = InventoryService(ServiceConfig(cache=ResultCache(cache_path)))
    assert warm.handle(REQUEST) == response
    cell_done = [event for event in warm.obs.events.events
                 if event.name == "cell_done"]
    assert cell_done and all(event.fields["cached"] for event in cell_done)
    hits = [event for event in warm.obs.events.events
            if event.name == "cache_hit"]
    assert hits


def test_exchangeable_zones_share_cells():
    service = InventoryService()
    payload = json.loads(service.handle(
        InventoryRequest(n_tags=1600, zones=16, seed=5)))
    # A 16-zone even ring has far fewer distinct (n, frame, channel)
    # configurations than zones.
    assert payload["plan"]["distinct_cells"] < 16
    assert payload["plan"]["zones"] == 16
    assert len(service.obs.cells) == payload["plan"]["distinct_cells"]


def test_payload_shape_and_rollups():
    service = InventoryService()
    payload = json.loads(service.handle(REQUEST))
    assert payload["schema"] == "repro-inventory/1"
    assert payload["request_key"] == REQUEST.key()
    assert payload["facility"]["unique_tags"] == 600
    assert sum(zone["exclusive_tags"] for zone in payload["zones"]) == 600
    assert len(payload["facility"]["phase_durations_s"]) \
        == payload["plan"]["phases"]
    assert payload["facility"]["read_time_s"] == pytest.approx(
        sum(payload["facility"]["phase_durations_s"]))
    assert payload["facility"]["throughput"] > 0
    for zone in payload["zones"]:
        assert zone["runs"] == REQUEST.runs
        assert zone["throughput_mean"] > 0


def test_capped_phases_produce_interfered_zones():
    service = InventoryService()
    payload = json.loads(service.handle(
        InventoryRequest(n_tags=800, zones=8, seed=2, max_phases=1)))
    assert payload["plan"]["phases"] == 1
    assert payload["plan"]["interfered_zones"] == 8
    assert all(zone["interference_load"] > 0 for zone in payload["zones"])


def test_manifest_cross_checks_against_metrics_dump():
    service = InventoryService()
    service.handle(REQUEST)
    service.handle(InventoryRequest(n_tags=300, zones=3, seed=1))
    events = service.metrics_events()
    manifest = service.manifest()
    assert cross_check_manifest(events, manifest) == []
    assert manifest.cells


def test_stats_accounting():
    service = InventoryService()
    service.handle(REQUEST)
    service.handle(REQUEST)
    stats = service.stats()
    assert stats["requests_served"] == 2
    assert stats["responses_cached"] == 1
    assert stats["distinct_requests"] == 1
    assert stats["events"]["request_start"] == 2
    assert stats["events"]["shard_plan"] == 1
    assert "request.latency_s" in stats["metrics"]["histograms"]
    quantiles = service.latency_quantiles()
    assert quantiles["count"] == 2.0
    assert quantiles["p99_s"] >= quantiles["p50_s"] >= 0.0


def test_scalar_and_kernel_engines_both_serve():
    service = InventoryService()
    kernel = json.loads(service.handle(
        InventoryRequest(n_tags=200, zones=2, seed=3, engine="kernel")))
    scalar = json.loads(service.handle(
        InventoryRequest(n_tags=200, zones=2, seed=3, engine="scalar")))
    # Different engines are different cells: both succeed, keys differ.
    assert kernel["request_key"] != scalar["request_key"]
    assert kernel["facility"]["throughput"] > 0
    assert scalar["facility"]["throughput"] > 0


def test_adaptive_precision_request():
    service = InventoryService()
    payload = json.loads(service.handle(
        InventoryRequest(n_tags=400, zones=4, seed=8, runs=12,
                         precision=0.2)))
    assert payload["facility"]["throughput"] > 0
    stops = [event for event in service.obs.events.events
             if event.name == "planner_stop"]
    assert stops


def test_config_validates_jobs():
    with pytest.raises(ValueError, match="jobs"):
        ServiceConfig(jobs=0)
