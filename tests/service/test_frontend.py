"""The asyncio HTTP front end, exercised through the real socket layer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.events import read_jsonl
from repro.obs.manifest import RunManifest
from repro.obs.report import cross_check_manifest
from repro.service.client import http_get, post_inventory
from repro.service.core import InventoryService, ServiceConfig
from repro.service.frontend import MAX_BODY_BYTES, ServiceFrontend
from repro.service.requests import request_from_dict

REQUEST = {"n_tags": 400, "zones": 4, "seed": 13}


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_frontend(test):
    frontend = ServiceFrontend(InventoryService(ServiceConfig(jobs=1)),
                               port=0, workers=2)
    await frontend.start()
    try:
        return await test(frontend)
    finally:
        await frontend.close()


def test_post_inventory_round_trip():
    async def scenario(frontend):
        status, body = await post_inventory(frontend.host, frontend.port,
                                            REQUEST)
        assert status == 200
        payload = json.loads(body)
        assert payload["facility"]["unique_tags"] == 400
        # The wire bytes are exactly the service's canonical encoding.
        assert body == frontend.service.handle(request_from_dict(REQUEST))
    run(_with_frontend(scenario))


def test_concurrent_identical_requests_get_identical_bytes():
    async def scenario(frontend):
        responses = await asyncio.gather(*[
            post_inventory(frontend.host, frontend.port, REQUEST)
            for _ in range(5)])
        assert all(status == 200 for status, _ in responses)
        assert len({body for _, body in responses}) == 1
    run(_with_frontend(scenario))


def test_malformed_requests_get_400():
    async def scenario(frontend):
        host, port = frontend.host, frontend.port
        status, body = await post_inventory(host, port,
                                            {**REQUEST, "bogus": 1})
        assert status == 400
        assert "unknown" in json.loads(body)["error"]
        status, body = await post_inventory(host, port,
                                            {"n_tags": 10, "zones": 1})
        assert status == 400
        assert "seed" in json.loads(body)["error"]
    run(_with_frontend(scenario))


def test_routing_errors():
    async def scenario(frontend):
        host, port = frontend.host, frontend.port
        status, _ = await http_get(host, port, "/nowhere")
        assert status == 404
        status, _ = await http_get(host, port, "/inventory")
        assert status == 405
        # Oversized bodies are rejected before parsing.
        reader, writer = await asyncio.open_connection(host, port)
        head = (f"POST /inventory HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("ascii"))
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        assert " 413 " in status_line
        writer.close()
    run(_with_frontend(scenario))


def test_health_stats_and_metrics_endpoints_cohere(tmp_path):
    async def scenario(frontend):
        host, port = frontend.host, frontend.port
        for seed in (1, 2, 1):
            status, _ = await post_inventory(host, port,
                                             {**REQUEST, "seed": seed})
            assert status == 200

        status, stats_body = await http_get(host, port, "/stats")
        assert status == 200
        stats = json.loads(stats_body)
        assert stats["requests_served"] == 3
        assert stats["responses_cached"] == 1
        assert stats["events"]["request_done"] == 3

        # metrics first, then health: the dump's terminal snapshot must be
        # counted by the manifest for the cross-check to balance.
        status, metrics_body = await http_get(host, port, "/metrics.jsonl")
        assert status == 200
        sink = tmp_path / "metrics.jsonl"
        sink.write_bytes(metrics_body)
        events = read_jsonl(sink)  # re-validates every line's schema
        assert events[-1].name == "metrics_snapshot"

        status, health_body = await http_get(host, port, "/healthz")
        assert status == 200
        health = json.loads(health_body)
        assert health["status"] == "ok"
        manifest = RunManifest.from_dict(health["manifest"])
        assert cross_check_manifest(events, manifest) == []
    run(_with_frontend(scenario))


def test_frontend_validates_workers():
    with pytest.raises(ValueError, match="workers"):
        ServiceFrontend(InventoryService(), workers=0)
