"""R9: emit call sites must match the EVENT_SCHEMA registry."""

from __future__ import annotations

SCHEMA = '''
    EVENT_SCHEMA = {
        "session": _spec(protocol="str", n_read="int"),
        "cache_hit": _spec(key="str"),
    }
'''


def _write_schema(tree, body: str = SCHEMA) -> None:
    tree.write("repro/obs/events.py", '''
    def _spec(**fields):
        return tuple(fields.items())

''' + body)


def test_declared_event_with_matching_fields_passes(tree):
    _write_schema(tree)
    tree.write("repro/core/proto.py", '''
    def run(obs):
        obs.emit("session", protocol="FCAT-2", n_read=3)
        obs.emit("cache_hit", key="abc")
''')
    assert tree.rule_findings("event-schema") == []


def test_undeclared_event_name_is_flagged(tree):
    _write_schema(tree)
    tree.write("repro/core/proto.py", '''
    def run(obs):
        obs.emit("sesion", protocol="FCAT-2", n_read=3)
''')
    findings = tree.rule_findings("event-schema")
    assert findings == ["repro/core/proto.py:3 event-schema"]


def test_field_drift_is_flagged_both_directions(tree):
    _write_schema(tree)
    tree.write("repro/core/proto.py", '''
    def run(obs):
        obs.emit("session", protocol="FCAT-2", reads=3)
''')
    report = tree.lint("event-schema")
    (finding,) = report.unsuppressed
    assert "missing ['n_read']" in finding.message
    assert "undeclared ['reads']" in finding.message


def test_non_constant_names_and_kwargs_splat_are_skipped(tree):
    _write_schema(tree)
    tree.write("repro/obs/scope.py", '''
    def emit(stream, name, **fields):
        stream.emit(name, **fields)
''')
    tree.write("repro/core/proto.py", '''
    def run(obs, fields):
        obs.emit("session", **fields)
''')
    assert tree.rule_findings("event-schema") == []


def test_schema_module_itself_is_exempt(tree):
    _write_schema(tree, SCHEMA + '''
    def selftest(stream):
        stream.emit("cache_hit", key="k")
        stream.emit("not-declared-anywhere")
''')
    assert tree.rule_findings("event-schema") == []


def test_unreadable_schema_is_one_finding_at_the_registry(tree):
    tree.write("repro/obs/events.py", '''
    EVENT_SCHEMA = build_schema()
''')
    findings = tree.rule_findings("event-schema")
    assert findings == ["repro/obs/events.py:1 event-schema"]


def test_without_schema_module_the_rule_stays_silent(tree):
    tree.write("repro/core/proto.py", '''
    def run(obs):
        obs.emit("anything-at-all")
''')
    assert tree.rule_findings("event-schema") == []
