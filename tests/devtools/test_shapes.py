"""Unit tests for the shape/dtype abstract domain (devtools.shapes)."""

from __future__ import annotations

import ast

from repro.devtools.shapes import (
    ShapeInfo,
    dims_conflict,
    dtype_conflict,
    infer_expr,
    is_complex_dtype,
    normalize_dtype,
    parse_shape_contracts,
)


def _infer(source: str, env=None) -> ShapeInfo | None:
    return infer_expr(ast.parse(source, mode="eval").body, env or {})


# ---------------------------------------------------------------------------
# contract comment parsing

def test_parse_contract_with_dims_and_dtype():
    contracts = parse_shape_contracts(
        "x = make()  # repro: shape(n, m) dtype=complex128\n")
    assert contracts == {1: ShapeInfo(dims=("n", "m"), dtype="complex128")}


def test_parse_shape_any_leaves_dims_unknown():
    contracts = parse_shape_contracts(
        "x = make()  # repro: shape(any) dtype=float64\n")
    assert contracts[1] == ShapeInfo(dims=None, dtype="float64")


def test_parse_contract_without_dtype():
    contracts = parse_shape_contracts("x = make()  # repro: shape(w)\n")
    assert contracts[1] == ShapeInfo(dims=("w",), dtype=None)


def test_parse_keys_by_physical_line():
    source = "a = 1\nb = make()  # repro: shape(k) dtype=float32\nc = 2\n"
    assert set(parse_shape_contracts(source)) == {2}


def test_np_prefixed_dtype_is_normalized():
    contracts = parse_shape_contracts(
        "x = make()  # repro: shape(any) dtype=np.float64\n")
    assert contracts[1].dtype == "float64"


def test_unknown_dtype_name_is_dropped():
    contracts = parse_shape_contracts(
        "x = make()  # repro: shape(any) dtype=quaternion\n")
    assert contracts[1].dtype is None


# ---------------------------------------------------------------------------
# dtype helpers

def test_normalize_dtype():
    assert normalize_dtype("np.complex128") == "complex128"
    assert normalize_dtype("float64") == "float64"
    assert normalize_dtype("'float32'") == "float32"
    assert normalize_dtype("not_a_dtype") is None
    assert normalize_dtype(None) is None


def test_is_complex_dtype():
    assert is_complex_dtype("complex128")
    assert is_complex_dtype("complex64")
    assert not is_complex_dtype("float64")
    assert not is_complex_dtype(None)


def test_dtype_conflict_directions():
    # Widening is a conflict; narrowing and equality are not.
    assert dtype_conflict("float64", "complex128") is not None
    assert dtype_conflict("float64", "float32") is None
    assert dtype_conflict("float64", "float64") is None
    # Unknowns never conflict.
    assert dtype_conflict(None, "complex128") is None
    assert dtype_conflict("float64", None) is None


def test_complex_into_real_gets_the_special_message():
    message = dtype_conflict("float64", "complex128")
    assert "complex" in message and "real/complex mixing" in message
    widening = dtype_conflict("float32", "float64")
    assert "widens" in widening


def test_dims_conflict():
    assert dims_conflict(("n",), ("n", "m")) is not None  # rank mismatch
    assert dims_conflict(("4",), ("8",)) is not None      # literal mismatch
    assert dims_conflict(("n",), ("m",)) is None          # symbols may agree
    assert dims_conflict(None, ("n",)) is None
    assert dims_conflict(("n",), None) is None


# ---------------------------------------------------------------------------
# inference

def test_zeros_defaults_to_float64():
    assert _infer("np.zeros(n)") == ShapeInfo(dims=("n",), dtype="float64")


def test_zeros_with_dtype_kwarg():
    info = _infer("np.zeros((n, 2), dtype=np.complex128)")
    assert info == ShapeInfo(dims=("n", "2"), dtype="complex128")


def test_asarray_cast_pins_the_dtype():
    info = _infer("np.asarray(x, dtype=np.complex128)")
    assert info is not None and info.dtype == "complex128"


def test_abs_of_complex_is_its_real_twin():
    env = {"z": ShapeInfo(dims=("w",), dtype="complex128")}
    assert _infer("np.abs(z)", env) == ShapeInfo(dims=("w",),
                                                 dtype="float64")


def test_real_attribute_narrows():
    env = {"z": ShapeInfo(dims=("w",), dtype="complex64")}
    assert _infer("z.real", env) == ShapeInfo(dims=("w",), dtype="float32")


def test_astype_overrides_the_dtype():
    env = {"x": ShapeInfo(dims=("n",), dtype="float64")}
    info = _infer("x.astype(np.complex128)", env)
    assert info == ShapeInfo(dims=("n",), dtype="complex128")


def test_binop_takes_the_wider_dtype():
    env = {"a": ShapeInfo(dims=("w",), dtype="float64"),
           "z": ShapeInfo(dims=("w",), dtype="complex128")}
    assert _infer("a * z", env) == ShapeInfo(dims=("w",),
                                             dtype="complex128")


def test_scalar_literal_does_not_change_the_array_info():
    env = {"a": ShapeInfo(dims=("w",), dtype="float64")}
    assert _infer("a * 2.0", env) == ShapeInfo(dims=("w",), dtype="float64")


def test_matmul_drops_dims_but_keeps_dtype():
    env = {"a": ShapeInfo(dims=("n", "k"), dtype="complex128"),
           "b": ShapeInfo(dims=("k",), dtype="complex128")}
    info = _infer("a @ b", env)
    assert info is not None
    assert info.dims is None and info.dtype == "complex128"


def test_unknown_operand_makes_the_result_unknown():
    env = {"a": ShapeInfo(dims=("w",), dtype="float64")}
    assert _infer("a + mystery", env) is None


def test_subscript_keeps_dtype_drops_dims():
    env = {"a": ShapeInfo(dims=("n", "m"), dtype="float32")}
    info = _infer("a[0]", env)
    assert info is not None
    assert info.dims is None and info.dtype == "float32"


def test_roundtrip_serialization():
    for info in (ShapeInfo(dims=("n", "2"), dtype="complex128"),
                 ShapeInfo(dims=None, dtype=None),
                 ShapeInfo(dims=(), dtype="float64")):
        assert ShapeInfo.from_dict(info.to_dict()) == info


# ---------------------------------------------------------------------------
# dtype-join widening order (S3: the edges of the rank lattice)

def test_join_widens_bool_through_int_to_float():
    env = {"flags": ShapeInfo(dims=("n",), dtype="bool"),
           "counts": ShapeInfo(dims=("n",), dtype="int64"),
           "weights": ShapeInfo(dims=("n",), dtype="float64")}
    assert _infer("flags + counts", env).dtype == "int64"
    assert _infer("counts + weights", env).dtype == "float64"
    assert _infer("flags + weights", env).dtype == "float64"


def test_join_prefers_complex_over_any_real():
    env = {"iq": ShapeInfo(dims=("w",), dtype="complex128"),
           "gain": ShapeInfo(dims=("w",), dtype="float32"),
           "bits": ShapeInfo(dims=("w",), dtype="int64")}
    assert _infer("iq * gain", env).dtype == "complex128"
    assert _infer("bits * iq", env).dtype == "complex128"


def test_true_division_promotes_integer_join_to_float64():
    env = {"hits": ShapeInfo(dims=("n",), dtype="int64"),
           "trials": ShapeInfo(dims=("n",), dtype="int64"),
           "mask": ShapeInfo(dims=("n",), dtype="bool")}
    assert _infer("hits / trials", env).dtype == "float64"
    assert _infer("mask / trials", env).dtype == "float64"


def test_float_division_does_not_promote_further():
    env = {"a": ShapeInfo(dims=("n",), dtype="float32"),
           "b": ShapeInfo(dims=("n",), dtype="float32")}
    assert _infer("a / b", env).dtype == "float32"


def test_join_with_unknown_dtype_is_unknown_but_keeps_dims():
    env = {"a": ShapeInfo(dims=("n",), dtype=None),
           "b": ShapeInfo(dims=("n",), dtype="float64")}
    info = _infer("a + b", env)
    assert info is not None
    assert info.dtype is None
    assert info.dims == ("n",)


def test_dtype_conflict_is_rank_based_not_name_based():
    # Same rank, different spelling: not a widening.
    assert dtype_conflict("int64", "uint64") is None
    assert dtype_conflict("float64", "float") is None


def test_dtype_conflict_ignores_names_outside_the_lattice():
    assert dtype_conflict("quaternion", "float64") is None
    assert dtype_conflict("float64", "quaternion") is None
