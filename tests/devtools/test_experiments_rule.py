"""R8: experiment-registry completeness."""

from __future__ import annotations

CLI_WITH = """\
    from repro.experiments.fig9 import run_fig9

    EXPERIMENTS = {"fig9": run_fig9}
    """

CLI_WITHOUT = """\
    EXPERIMENTS = {}
    """


class TestExperimentRegistry:
    def test_unwired_experiment_module_is_flagged(self, tree):
        tree.write("repro/experiments/fig9.py", "def run_fig9():\n    pass\n")
        tree.write("repro/experiments/cli.py", CLI_WITHOUT)
        assert tree.rule_findings("experiment-registry") == [
            "repro/experiments/fig9.py:1 experiment-registry"]

    def test_wired_experiment_is_fine(self, tree):
        tree.write("repro/experiments/fig9.py", "def run_fig9():\n    pass\n")
        tree.write("repro/experiments/cli.py", CLI_WITH)
        assert tree.rule_findings("experiment-registry") == []

    def test_variant_keys_count_as_wired(self, tree):
        tree.write("repro/experiments/table9.py", "def go():\n    pass\n")
        tree.write("repro/experiments/cli.py", """\
            from repro.experiments.table9 import go

            EXPERIMENTS = {"table9-small": go, "table9-paper": go}
            """)
        assert tree.rule_findings("experiment-registry") == []

    def test_dangling_registry_value_is_flagged(self, tree):
        tree.write("repro/experiments/fig9.py", "def run_fig9():\n    pass\n")
        tree.write("repro/experiments/cli.py", """\
            from repro.experiments.fig9 import run_fig9

            EXPERIMENTS = {"fig9": run_fig9, "fig10": run_fig10}
            """)
        assert tree.rule_findings("experiment-registry") == [
            "repro/experiments/cli.py:3 experiment-registry"]

    def test_non_experiment_modules_are_ignored(self, tree):
        tree.write("repro/experiments/helpers.py", "def util():\n    pass\n")
        tree.write("repro/experiments/cli.py", CLI_WITHOUT)
        assert tree.rule_findings("experiment-registry") == []

    def test_suppression_comment_is_honoured(self, tree):
        tree.write("repro/experiments/fig9.py", """\
            # repro: allow-experiment-registry -- test sentinel
            def run_fig9():
                pass
            """)
        tree.write("repro/experiments/cli.py", CLI_WITHOUT)
        report = tree.lint("experiment-registry")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["experiment-registry"]
