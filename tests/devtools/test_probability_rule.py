"""R6: probability-domain interval analysis."""

from __future__ import annotations


class TestProbabilityDomain:
    def test_default_above_one_is_flagged(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(n, p=1.5):
                return n * p
            """)
        assert tree.rule_findings("probability-domain") == [
            "repro/core/sampler.py:1 probability-domain"]

    def test_negative_dataclass_field_default_is_flagged(self, tree):
        tree.write("repro/core/config.py", """\
            from dataclasses import dataclass

            @dataclass
            class Config:
                p_i: float = -0.25
            """)
        assert tree.rule_findings("probability-domain") == [
            "repro/core/config.py:5 probability-domain"]

    def test_provably_bad_assignment_is_flagged(self, tree):
        tree.write("repro/core/flow.py", """\
            SCALE = 3.0

            def adjust(state):
                state.collision_probability = 0.5 * SCALE
                return state
            """)
        assert tree.rule_findings("probability-domain") == [
            "repro/core/flow.py:4 probability-domain"]

    def test_in_range_and_unknown_values_are_fine(self, tree):
        tree.write("repro/core/fine.py", """\
            def bernoulli(n, p=0.5):
                p_i = min(p * 2.0, 1.0)
                q_probability = n  # unknown interval: never flagged
                return p_i, q_probability
            """)
        assert tree.rule_findings("probability-domain") == []

    def test_non_probability_names_are_ignored(self, tree):
        tree.write("repro/core/fine.py", """\
            def scale(n, gain=3.5):
                factor = 2.5
                return n * gain * factor
            """)
        assert tree.rule_findings("probability-domain") == []

    def test_suppression_comment_is_honoured(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(n, p=1.5):  # repro: allow-probability-domain -- test sentinel
                return n * p
            """)
        report = tree.lint("probability-domain")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["probability-domain"]


class TestProbabilityCall:
    def test_literal_out_of_range_argument_is_flagged(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(n, p):
                return n * p

            def go(n):
                return bernoulli(n, 1.5)
            """)
        assert tree.rule_findings("probability-call") == [
            "repro/core/sampler.py:5 probability-call"]

    def test_cross_module_keyword_argument_is_flagged(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(n, p=0.5):
                return n * p
            """)
        tree.write("repro/sim/driver.py", """\
            from repro.core.sampler import bernoulli

            OVERDRIVE = 2.0

            def run(n):
                return bernoulli(n, p=OVERDRIVE)
            """)
        assert tree.rule_findings("probability-call") == [
            "repro/sim/driver.py:6 probability-call"]

    def test_in_range_and_unknown_arguments_are_fine(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(n, p):
                return n * p

            def go(n, load):
                bernoulli(n, 0.75)
                bernoulli(n, min(load, 1.0))
                return bernoulli(n, load)
            """)
        assert tree.rule_findings("probability-call") == []

    def test_suppression_comment_is_honoured(self, tree):
        tree.write("repro/core/sampler.py", """\
            def bernoulli(n, p):
                return n * p

            def go(n):
                return bernoulli(n, 1.5)  # repro: allow-probability-call -- test sentinel
            """)
        report = tree.lint("probability-call")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["probability-call"]
